"""Benchmark + artifact for Table 4: function argument repetition.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'vortex' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table4.txt``.
"""

from repro.core import FunctionAnalyzer

from _bench_utils import render_artifact, simulate_with



def test_table4_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [FunctionAnalyzer()], "vortex")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("table4", suite_results)
    assert "go" in artifact
