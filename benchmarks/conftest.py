"""Shared benchmark fixtures.

Each benchmark file regenerates one of the paper's tables/figures:

* the timed section exercises the analysis component that produces the
  artifact, on a bounded slice of a representative workload;
* the artifact itself is rendered from a session-cached full suite run
  and written to ``benchmarks/results/<exp_id>.txt`` (and echoed to the
  terminal), so ``pytest benchmarks/ --benchmark-only`` reproduces every
  table and figure in one go.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import SuiteConfig, run_suite


@pytest.fixture(scope="session")
def suite_results():
    """Full suite at the paper configuration (shared by all benches)."""
    return run_suite(SuiteConfig(scale=1))
