"""Benchmark + artifact for Table 1: dynamic/static repetition percentages.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'm88ksim' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table1.txt``.
"""

from repro.core import RepetitionTracker

from _bench_utils import render_artifact, simulate_with



def test_table1_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [RepetitionTracker()], "m88ksim")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("table1", suite_results)
    assert "go" in artifact
