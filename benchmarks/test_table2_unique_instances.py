"""Benchmark + artifact for Table 2: unique repeatable instances and average repeats.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'perl' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table2.txt``.
"""

from repro.core import RepetitionTracker

from _bench_utils import render_artifact, simulate_with



def test_table2_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [RepetitionTracker()], "perl")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("table2", suite_results)
    assert "go" in artifact
