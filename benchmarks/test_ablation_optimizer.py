"""Ablation: does compiler optimization eliminate the repetition?

Section 6 of the paper observes that most repetition falls on slices a
compiler can see statically, and then argues optimization would *not*
remove it (dynamic paths, conservative dependences, ISA constraints...).
This bench compiles every workload at -O0 and -O1 (constant folding,
algebraic simplification, strength reduction, dead code, peephole) and
measures dynamic instruction counts and repetition both ways.

Expected shape (and asserted): optimization shaves instructions, but the
repetition *rate* stays essentially as high — repetition is not mere
compile-time redundancy.  Output: benchmarks/results/ablation_optimizer.txt
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator
from repro.workloads import WORKLOAD_ORDER, get_workload

from _bench_utils import RESULTS_DIR

_rows = {}

#: Run to completion so -O1's instruction-count savings are visible.
_LIMIT = None


def _measure(name: str, optimize: bool):
    workload = get_workload(name)
    program = (
        compile_source(workload.source(), optimize=True)
        if optimize
        else workload.program()
    )
    tracker = RepetitionTracker()
    simulator = Simulator(
        program, input_data=workload.primary_input(1), analyzers=[tracker]
    )
    run = simulator.run(limit=_LIMIT)
    return run.analyzed_instructions, tracker.report().dynamic_repeated_pct


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_optimizer_ablation(benchmark, name):
    def run_pair():
        return _measure(name, False), _measure(name, True)

    (plain_count, plain_pct), (opt_count, opt_pct) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    _rows[name] = (plain_count, plain_pct, opt_count, opt_pct)
    # Optimization never inflates the instruction count...
    assert opt_count <= plain_count
    # ...and repetition survives it (the paper's Section 6 argument).
    assert opt_pct > plain_pct - 12.0


def test_optimizer_ablation_artifact(benchmark):
    rows = [
        (name, plain_count, plain_pct, opt_count, opt_pct)
        for name, (plain_count, plain_pct, opt_count, opt_pct) in _rows.items()
    ]
    table = benchmark(
        format_table,
        ("Benchmark", "-O0 insns", "-O0 rep %", "-O1 insns", "-O1 rep %"),
        rows,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_optimizer.txt").write_text(
        "== Ablation: compiler optimization vs repetition ==\n" + table + "\n"
    )
    print("\n" + table)
    # Suite-wide: repetition rate is essentially unchanged by -O1.
    average_delta = sum(
        plain_pct - opt_pct for _, plain_pct, _, opt_pct in _rows.values()
    ) / len(_rows)
    assert abs(average_delta) < 8.0
