"""Benchmark + artifact for Figure 3: repetition by unique-repeatable-instance bucket.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'ijpeg' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/fig3.txt``.
"""

from repro.core import RepetitionTracker

from _bench_utils import render_artifact, simulate_with



def test_fig3_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [RepetitionTracker()], "ijpeg")
        return analyzers[0].report().bucket_shares()

    benchmark(run_analysis)
    artifact = render_artifact("fig3", suite_results)
    assert "go" in artifact
