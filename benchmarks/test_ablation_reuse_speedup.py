"""Ablation: cycle-level speedup from dynamic instruction reuse.

Section 7 motivates reuse buffers by performance; the functional
experiments (Table 10) only show *capture*.  Composing the reuse buffer
with the trace-driven timing model turns capture into cycles: reused
instructions bypass functional-unit latency, data-cache access, and
branch misprediction.  Output: benchmarks/results/ablation_reuse_speedup.txt
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import ReuseBuffer
from repro.sim import Simulator, TimingModel
from repro.workloads import WORKLOAD_ORDER, get_workload

from _bench_utils import RESULTS_DIR

_rows = {}
_LIMIT = 60_000


def _measure(name: str):
    workload = get_workload(name)
    data = workload.primary_input(1)

    baseline_model = TimingModel()
    Simulator(workload.program(), input_data=data, analyzers=[baseline_model]).run(
        limit=_LIMIT
    )
    baseline = baseline_model.report()

    buffer = ReuseBuffer()
    reuse_model = TimingModel(reuse_provider=buffer.was_reused)
    Simulator(
        workload.program(), input_data=data, analyzers=[buffer, reuse_model]
    ).run(limit=_LIMIT)
    with_reuse = reuse_model.report()
    return baseline, with_reuse


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_reuse_speedup(benchmark, name):
    baseline, with_reuse = benchmark.pedantic(_measure, args=(name,), rounds=1, iterations=1)
    speedup = with_reuse.speedup_over(baseline)
    reused_pct = 100.0 * with_reuse.reused_instructions / with_reuse.instructions
    _rows[name] = (baseline.cpi, with_reuse.cpi, reused_pct, speedup)
    # Reuse never slows the machine down in this model...
    assert speedup >= 0.99
    # ...and the stream is identical.
    assert baseline.instructions == with_reuse.instructions


def test_reuse_speedup_artifact(benchmark):
    rows = [
        (name, base_cpi, reuse_cpi, reused_pct, speedup)
        for name, (base_cpi, reuse_cpi, reused_pct, speedup) in _rows.items()
    ]
    table = benchmark(
        format_table,
        ("Benchmark", "base CPI", "reuse CPI", "% reused", "speedup"),
        [(n, f"{a:.3f}", f"{b:.3f}", r, f"{s:.3f}") for n, a, b, r, s in rows],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_reuse_speedup.txt").write_text(
        "== Ablation: cycle-level speedup from instruction reuse ==\n" + table + "\n"
    )
    print("\n" + table)
    # At least some workloads see a visible gain.
    assert any(speedup > 1.01 for *_, speedup in rows)
