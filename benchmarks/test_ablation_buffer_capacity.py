"""Ablation: repetition-tracker buffer capacity (the paper fixes 2000).

Section 3 buffers up to 2000 unique instances per static instruction;
this sweep shows how much measured repetition a smaller instance buffer
forfeits — the knob behind Figure 3's observation that instructions with
hundreds of unique instances still contribute repetition.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import RepetitionTracker

from _bench_utils import RESULTS_DIR, simulate_with

CAPACITIES = [1, 4, 32, 256, 2000]

_measured = {}


def _run(capacity: int):
    tracker = RepetitionTracker(capacity)
    simulate_with(lambda: [tracker], "ijpeg", limit=25_000)
    return tracker


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_buffer_capacity(benchmark, capacity):
    tracker = benchmark(_run, capacity)
    report = tracker.report()
    _measured[capacity] = report.dynamic_repeated_pct
    assert 0.0 <= report.dynamic_repeated_pct <= 100.0


def test_buffer_capacity_artifact(benchmark):
    """More buffered instances can only expose more repetition."""
    series = [_measured[c] for c in CAPACITIES]
    assert series == sorted(series)
    table = benchmark(
        format_table,
        ("Buffer capacity", "Dyn repeat %"),
        [(c, _measured[c]) for c in CAPACITIES],
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_buffer_capacity.txt").write_text(
        "== Ablation: instance-buffer capacity (ijpeg workload) ==\n" + table + "\n"
    )
    print("\n" + table)
