"""Benchmark + artifact for Table 3: global source-slice analysis (overall/repeated/propensity).

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'gcc' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table3.txt``.
"""

from repro.core import GlobalSourceAnalyzer, RepetitionTracker

from _bench_utils import render_artifact, simulate_with

def _global_stack():
    tracker = RepetitionTracker()
    return [tracker, GlobalSourceAnalyzer(tracker)]


def test_table3_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(_global_stack, "gcc")
        return analyzers[1].report()

    benchmark(run_analysis)
    artifact = render_artifact("table3", suite_results)
    assert "go" in artifact
