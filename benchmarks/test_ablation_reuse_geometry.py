"""Ablation: reuse-buffer geometry sweep (extends Table 10).

The paper fixes an 8K-entry, 4-way buffer and notes "there is still room
for improvement".  This bench sweeps capacity and associativity to show
where the captured repetition saturates.  Results land in
``benchmarks/results/ablation_reuse_geometry.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import RepetitionTracker, ReuseBuffer

from _bench_utils import RESULTS_DIR, simulate_with

GEOMETRIES = [
    (256, 1),
    (256, 4),
    (1024, 4),
    (8192, 4),  # the paper's configuration
    (8192, 8),
    (32768, 4),
]

_rows = {}


def _run(entries: int, associativity: int):
    tracker = RepetitionTracker()
    buffer = ReuseBuffer(entries, associativity)
    simulate_with(lambda: [tracker, buffer], "gcc", limit=25_000)
    return tracker, buffer


@pytest.mark.parametrize("entries,associativity", GEOMETRIES)
def test_reuse_geometry(benchmark, entries, associativity):
    tracker, buffer = benchmark(_run, entries, associativity)
    report = buffer.report()
    captured = report.repeated_share_pct(tracker.dynamic_repeated)
    _rows[(entries, associativity)] = (report.hit_pct, captured)
    assert 0.0 <= captured <= 100.0


def test_reuse_geometry_artifact(benchmark):
    """Bigger buffers capture at least as much repetition; write table."""
    rows = [
        (f"{entries}x{assoc}", hit, captured)
        for (entries, assoc), (hit, captured) in sorted(_rows.items())
    ]
    table = benchmark(format_table, ("Geometry", "% of all insns", "% of repeated"), rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_reuse_geometry.txt").write_text(
        "== Ablation: reuse buffer geometry (gcc workload) ==\n" + table + "\n"
    )
    print("\n" + table)
    # Same associativity, growing capacity: capture is non-decreasing.
    series = [
        captured
        for (entries, assoc), (_, captured) in sorted(_rows.items())
        if assoc == 4
    ]
    assert series == sorted(series)
