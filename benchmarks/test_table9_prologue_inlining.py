"""Benchmark + artifact for Table 9: top-5 prologue/epilogue contributor functions.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'vortex' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table9.txt``.
"""

from repro.core import LocalAnalyzer, RepetitionTracker

from _bench_utils import render_artifact, simulate_with

def _local_stack():
    tracker = RepetitionTracker()
    return [tracker, LocalAnalyzer(tracker)]


def test_table9_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(_local_stack, "vortex")
        return analyzers[1].report().top_prologue_contributors()

    benchmark(run_analysis)
    artifact = render_artifact("table9", suite_results)
    assert "coverage=" in artifact
