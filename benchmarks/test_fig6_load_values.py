"""Benchmark + artifact for Figure 6: global-load repetition covered by top-1..5 values.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'compress' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/fig6.txt``.
"""

from repro.core import GlobalLoadValueProfiler

from _bench_utils import render_artifact, simulate_with



def test_fig6_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [GlobalLoadValueProfiler()], "compress")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("fig6", suite_results)
    assert "go" in artifact
