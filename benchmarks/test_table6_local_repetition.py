"""Benchmark + artifact for Table 6: local analysis, share of repeated instructions.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'go' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table6.txt``.
"""

from repro.core import LocalAnalyzer, RepetitionTracker

from _bench_utils import render_artifact, simulate_with

def _local_stack():
    tracker = RepetitionTracker()
    return [tracker, LocalAnalyzer(tracker)]


def test_table6_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(_local_stack, "go")
        return analyzers[1].report()

    benchmark(run_analysis)
    artifact = render_artifact("table6", suite_results)
    assert "go" in artifact
