"""Benchmark + artifact for Figure 1: static-instruction coverage of dynamic repetition.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'go' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/fig1.txt``.
"""

from repro.core import RepetitionTracker

from _bench_utils import render_artifact, simulate_with



def test_fig1_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [RepetitionTracker()], "go")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("fig1", suite_results)
    assert "go" in artifact
