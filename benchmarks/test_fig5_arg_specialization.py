"""Benchmark + artifact for Figure 5: all-argument repetition covered by top-5 argument sets.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'm88ksim' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/fig5.txt``.
"""

from repro.core import FunctionAnalyzer

from _bench_utils import render_artifact, simulate_with



def test_fig5_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [FunctionAnalyzer()], "m88ksim")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("fig5", suite_results)
    assert "go" in artifact
