"""Convert a pytest-benchmark JSON into ``BENCH_trace_reuse.json``.

Usage::

    python benchmarks/export_trace_reuse.py bench.json BENCH_trace_reuse.json

Emits instructions/second for the trace-memoization benchmarks (each
round retires 25,000 m88ksim instructions, matching
``test_trace_reuse_throughput.py``) and derives
``trace_fastpath_overhead_pct`` — the analyzer-off cost of running with
the fast path armed versus without it — which CI gates at 5%.

The overhead is computed from each benchmark's *minimum* round, not its
mean: on shared CI runners the mean is dominated by scheduler noise
(run-to-run spread exceeds the whole budget), while the minimum is the
classic noise-floor estimator and converges to the actual cost.
"""

from __future__ import annotations

import json
import sys

#: Dynamic instructions per round in test_trace_reuse_throughput.py.
INSTRUCTIONS_PER_ROUND = 25_000

_THROUGHPUT_BENCHMARKS = (
    "test_trace_baseline_throughput",
    "test_trace_fastpath_throughput",
    "test_trace_fastpath_interpreter_throughput",
    "test_trace_analyzer_throughput",
)

#: (metered, baseline) pair that trace_fastpath_overhead_pct comes from.
_OVERHEAD_PAIR = (
    "test_trace_fastpath_throughput",
    "test_trace_baseline_throughput",
)


def export(source_path: str, dest_path: str) -> dict:
    with open(source_path) as handle:
        data = json.load(handle)

    out = {"instructions_per_round": INSTRUCTIONS_PER_ROUND, "benchmarks": {}}
    for bench in data.get("benchmarks", ()):
        name = bench["name"]
        base_name = name.split("[")[0]
        stats = bench["stats"]
        entry = {"mean_seconds": stats["mean"], "min_seconds": stats["min"]}
        if base_name in _THROUGHPUT_BENCHMARKS:
            entry["instructions_per_second"] = round(
                INSTRUCTIONS_PER_ROUND / stats["min"]
            )
        out["benchmarks"][name] = entry

    metered, baseline = (out["benchmarks"].get(name) for name in _OVERHEAD_PAIR)
    if metered and baseline and baseline["min_seconds"] > 0:
        overhead = metered["min_seconds"] / baseline["min_seconds"] - 1.0
        out["trace_fastpath_overhead_pct"] = round(100.0 * overhead, 2)

    with open(dest_path, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    out = export(argv[1], argv[2])
    for name, entry in sorted(out["benchmarks"].items()):
        ips = entry.get("instructions_per_second")
        suffix = f"  {ips:,} insns/s" if ips else ""
        print(f"{name}: {entry['mean_seconds']*1e3:.2f} ms{suffix}")
    if "trace_fastpath_overhead_pct" in out:
        print(f"trace_fastpath_overhead_pct: {out['trace_fastpath_overhead_pct']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
