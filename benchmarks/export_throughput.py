"""Convert a pytest-benchmark JSON into ``BENCH_simulator.json``.

Usage::

    python benchmarks/export_throughput.py bench.json BENCH_simulator.json

Emits instructions/second for each simulator-throughput benchmark (the
simulation benchmarks all retire 25,000 m88ksim instructions per round,
matching ``test_simulator_throughput.py``), so CI runs leave a perf
trajectory future PRs can compare against.
"""

from __future__ import annotations

import json
import sys

#: Dynamic instructions per round in test_simulator_throughput.py.
INSTRUCTIONS_PER_ROUND = 25_000

_SIMULATOR_BENCHMARKS = (
    "test_bare_simulator_throughput",
    "test_bare_simulator_throughput_metrics_enabled",
    "test_repetition_tracker_throughput",
    "test_full_analysis_stack_throughput",
)

#: (metered, baseline) pair that telemetry_overhead_pct is derived from.
_OVERHEAD_PAIR = (
    "test_bare_simulator_throughput_metrics_enabled",
    "test_bare_simulator_throughput",
)


def export(source_path: str, dest_path: str) -> dict:
    with open(source_path) as handle:
        data = json.load(handle)

    out = {"instructions_per_round": INSTRUCTIONS_PER_ROUND, "benchmarks": {}}
    for bench in data.get("benchmarks", ()):
        name = bench["name"]
        mean = bench["stats"]["mean"]
        entry = {"mean_seconds": mean}
        if name in _SIMULATOR_BENCHMARKS:
            entry["instructions_per_second"] = round(INSTRUCTIONS_PER_ROUND / mean)
        out["benchmarks"][name] = entry

    metered, baseline = (out["benchmarks"].get(name) for name in _OVERHEAD_PAIR)
    if metered and baseline and baseline["mean_seconds"] > 0:
        overhead = metered["mean_seconds"] / baseline["mean_seconds"] - 1.0
        out["telemetry_overhead_pct"] = round(100.0 * overhead, 2)

    with open(dest_path, "w") as handle:
        json.dump(out, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    out = export(argv[1], argv[2])
    for name, entry in sorted(out["benchmarks"].items()):
        ips = entry.get("instructions_per_second")
        suffix = f"  {ips:,} insns/s" if ips else ""
        print(f"{name}: {entry['mean_seconds']*1e3:.2f} ms{suffix}")
    if "telemetry_overhead_pct" in out:
        print(f"telemetry_overhead_pct: {out['telemetry_overhead_pct']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
