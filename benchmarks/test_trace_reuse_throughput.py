"""Trace memoization benchmarks: fast-path overhead and geometry ablation.

Two jobs here:

* The baseline/fast-path pair keeps the execution fast path honest on an
  analyzer-off run — wrappers, probes, and record-building must stay
  within the CI overhead budget (``trace_fastpath_overhead_pct`` in
  ``BENCH_trace_reuse.json``, gated at 5%).  The fast-path round uses a
  pre-warmed shared :class:`TraceReuseState`, so it measures steady-state
  replay (plus banned-anchor unwrapping), not cold-table training.
* The geometry sweep extends Table 10T the way
  ``test_ablation_reuse_geometry.py`` extends Table 10; results land in
  ``benchmarks/results/ablation_trace_geometry.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.sim import Simulator
from repro.traces import TraceReuseAnalyzer, TraceReuseConfig, TraceReuseState
from repro.workloads import get_workload

from _bench_utils import RESULTS_DIR, simulate_with

#: Same round size as test_simulator_throughput.py, for comparability.
BENCH_LIMIT = 25_000


def _simulate(trace_reuse=None, engine="predecoded", limit=BENCH_LIMIT):
    workload = get_workload("m88ksim")
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(4),
        engine=engine,
        trace_reuse=trace_reuse,
    )
    simulator.run(limit=limit)
    return simulator


def _warm_state() -> TraceReuseState:
    """A shared state trained by one full round (tables warm, bans settled)."""
    state = TraceReuseState(TraceReuseConfig())
    _simulate(trace_reuse=state)
    return state


def test_trace_baseline_throughput(benchmark):
    """Analyzer-off run without the trace fast path (the overhead denominator)."""
    benchmark(_simulate)


def test_trace_fastpath_throughput(benchmark):
    """Analyzer-off run replaying from a pre-warmed shared trace table."""
    state = _warm_state()
    simulator = benchmark(_simulate, state)
    assert simulator._trace_engine.hits > 0


def test_trace_fastpath_interpreter_throughput(benchmark):
    state = TraceReuseState(TraceReuseConfig())
    _simulate(trace_reuse=state, engine="interpreter")
    benchmark(_simulate, state, "interpreter")


def test_trace_analyzer_throughput(benchmark):
    """The Table 10T measurement pass (shadow state + table maintenance)."""
    benchmark(simulate_with, lambda: [TraceReuseAnalyzer()], "m88ksim", BENCH_LIMIT)


# ---------------------------------------------------------------------------
# Geometry ablation (extends Table 10T)
# ---------------------------------------------------------------------------

TRACE_GEOMETRIES = [
    (256, 4, 16),
    (1024, 4, 8),
    (1024, 4, 16),  # the Table 10T default
    (1024, 8, 16),
    (4096, 4, 16),
]

_rows = {}


def _run_geometry(capacity: int, ways: int, max_len: int):
    (analyzer,) = simulate_with(
        lambda: [TraceReuseAnalyzer(capacity, ways, max_len)], "gcc", limit=BENCH_LIMIT
    )
    return analyzer.report()


@pytest.mark.parametrize("capacity,ways,max_len", TRACE_GEOMETRIES)
def test_trace_geometry(benchmark, capacity, ways, max_len):
    report = benchmark(_run_geometry, capacity, ways, max_len)
    _rows[(capacity, ways, max_len)] = (
        report.coverage_pct,
        report.hit_rate_pct,
        report.mean_hit_length,
    )
    assert 0.0 <= report.coverage_pct <= 100.0


def test_trace_geometry_artifact(benchmark):
    rows = [
        (f"{capacity}x{ways}/L{max_len}", coverage, hit_rate, mean_len)
        for (capacity, ways, max_len), (coverage, hit_rate, mean_len) in sorted(
            _rows.items()
        )
    ]
    table = benchmark(
        format_table, ("Geometry", "Coverage %", "Hit rate %", "Mean len"), rows
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_trace_geometry.txt").write_text(
        "== Ablation: trace reuse table geometry (gcc workload) ==\n" + table + "\n"
    )
    print("\n" + table)
    # Growing capacity at fixed ways/length never reduces coverage.
    series = [
        coverage
        for (capacity, ways, max_len), (coverage, _, _) in sorted(_rows.items())
        if ways == 4 and max_len == 16
    ]
    assert series == sorted(series)
