"""Ablation: value prediction vs. instruction reuse (Section 7).

The paper names value prediction as the other hardware consumer of
instruction repetition and predicts its characterization will "improve
the performance and efficiency" of both mechanisms.  This bench runs the
four predictor families side by side with the reuse buffer on the same
instruction stream and reports how much of the repeated work each
captures.  Output: ``benchmarks/results/ablation_value_prediction.txt``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import (
    ContextPredictor,
    HybridPredictor,
    LastValuePredictor,
    RepetitionTracker,
    ReuseBuffer,
    StridePredictor,
    ValuePredictionAnalyzer,
)

from _bench_utils import RESULTS_DIR, simulate_with

PREDICTORS = {
    "last-value": LastValuePredictor,
    "stride": StridePredictor,
    "context": lambda: ContextPredictor(order=2),
    "hybrid": HybridPredictor,
}

_rows = {}


def _run(name: str):
    tracker = RepetitionTracker()
    analyzer = ValuePredictionAnalyzer(PREDICTORS[name](), tracker)
    simulate_with(lambda: [tracker, analyzer], "perl", limit=25_000)
    return analyzer.report()


@pytest.mark.parametrize("name", sorted(PREDICTORS))
def test_value_predictor(benchmark, name):
    report = benchmark(_run, name)
    _rows[name] = (
        report.coverage_pct,
        report.accuracy_pct,
        report.correct_of_all_pct,
        report.repeated_capture_pct,
    )
    assert 0.0 <= report.accuracy_pct <= 100.0


def test_reuse_baseline_and_artifact(benchmark):
    def run_reuse():
        tracker = RepetitionTracker()
        buffer = ReuseBuffer()
        simulate_with(lambda: [tracker, buffer], "perl", limit=25_000)
        return tracker, buffer

    tracker, buffer = benchmark(run_reuse)
    reuse = buffer.report()
    rows = [
        (name, coverage, accuracy, of_all, of_repeated)
        for name, (coverage, accuracy, of_all, of_repeated) in sorted(_rows.items())
    ]
    rows.append(
        (
            "reuse 8Kx4",
            100.0,
            reuse.hit_pct,
            reuse.hit_pct,
            reuse.repeated_share_pct(tracker.dynamic_repeated),
        )
    )
    table = format_table(
        ("Mechanism", "coverage %", "accuracy %", "% of all", "% of repeated"), rows
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_value_prediction.txt").write_text(
        "== Ablation: value prediction vs reuse (perl workload) ==\n" + table + "\n"
    )
    print("\n" + table)
    # Every mechanism should capture a nontrivial slice of the repetition.
    assert all(of_repeated > 5.0 for *_, of_repeated in rows)
