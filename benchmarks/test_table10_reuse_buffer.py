"""Benchmark + artifact for Table 10: repetition captured by an 8K 4-way reuse buffer.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'gcc' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table10.txt``.
"""

from repro.core import ReuseBuffer

from _bench_utils import render_artifact, simulate_with



def test_table10_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(lambda: [ReuseBuffer()], "gcc")
        return analyzers[0].report()

    benchmark(run_analysis)
    artifact = render_artifact("table10", suite_results)
    assert "go" in artifact
