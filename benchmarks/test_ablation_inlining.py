"""Ablation: does inlining remove prologue/epilogue repetition? (§6)

Table 9's commentary asks whether inlining the top prologue/epilogue
contributors would eliminate that overhead.  This bench compiles each
workload with and without small-function inlining and compares (a) the
prologue+epilogue share of dynamic instructions and (b) total repetition
— expectation: the share shrinks where expression functions dominate the
call profile, while overall repetition stays high (the remaining
repetition was never call overhead).  Output:
benchmarks/results/ablation_inlining.txt
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import LocalAnalyzer, RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator
from repro.workloads import WORKLOAD_ORDER, get_workload

from _bench_utils import RESULTS_DIR

_rows = {}


def _measure(name: str, inline: bool):
    workload = get_workload(name)
    program = (
        compile_source(workload.source(), inline=True) if inline else workload.program()
    )
    tracker = RepetitionTracker()
    local = LocalAnalyzer(tracker)
    run = Simulator(
        program, input_data=workload.primary_input(1), analyzers=[tracker, local]
    ).run()
    report = local.report()
    proepi_abs = (
        report.categories["prologue"].total + report.categories["epilogue"].total
    )
    return run.analyzed_instructions, proepi_abs, tracker.report().dynamic_repeated_pct


@pytest.mark.parametrize("name", WORKLOAD_ORDER)
def test_inlining_ablation(benchmark, name):
    (base_n, base_abs, base_rep), (inl_n, inl_abs, inl_rep) = benchmark.pedantic(
        lambda: (_measure(name, False), _measure(name, True)), rounds=1, iterations=1
    )
    _rows[name] = (base_n, base_abs, base_rep, inl_n, inl_abs, inl_rep)
    # Inlining never adds instructions or call overhead in absolute terms
    # (shares can legitimately rise: removing frameless-leaf calls shrinks
    # the denominator while framed functions remain).
    assert inl_n <= base_n
    assert inl_abs <= base_abs
    # Repetition survives inlining (it was never only call overhead).
    assert inl_rep > base_rep - 15.0


def test_inlining_ablation_artifact(benchmark):
    rows = [
        (name, base_n, base_abs, inl_n, inl_abs, base_rep, inl_rep)
        for name, (base_n, base_abs, base_rep, inl_n, inl_abs, inl_rep) in _rows.items()
    ]
    table = benchmark(
        format_table,
        (
            "Benchmark",
            "insns",
            "pro+epi",
            "inlined insns",
            "inlined pro+epi",
            "rep %",
            "inlined rep %",
        ),
        rows,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_inlining.txt").write_text(
        "== Ablation: small-function inlining vs prologue/epilogue (Section 6) ==\n"
        + table
        + "\n"
    )
    print("\n" + table)
    # Somewhere in the suite, inlining visibly shrinks the program.
    assert any(inl_n < base_n for _, base_n, _, inl_n, *_ in rows)
