"""Benchmark + artifact for Table 7: local analysis, per-category repetition propensity.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'perl' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table7.txt``.
"""

from repro.core import LocalAnalyzer, RepetitionTracker

from _bench_utils import render_artifact, simulate_with

def _local_stack():
    tracker = RepetitionTracker()
    return [tracker, LocalAnalyzer(tracker)]


def test_table7_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(_local_stack, "perl")
        return analyzers[1].report()

    benchmark(run_analysis)
    artifact = render_artifact("table7", suite_results)
    assert "go" in artifact
