"""Benchmark + artifact for Table 5: local analysis, share of all dynamic instructions.

The timed section runs the analysis stack that produces this artifact
over a bounded slice of the 'li' workload; the artifact itself is
rendered from the shared full-suite results and written to
``benchmarks/results/table5.txt``.
"""

from repro.core import LocalAnalyzer, RepetitionTracker

from _bench_utils import render_artifact, simulate_with

def _local_stack():
    tracker = RepetitionTracker()
    return [tracker, LocalAnalyzer(tracker)]


def test_table5_benchmark(benchmark, suite_results):
    def run_analysis():
        analyzers = simulate_with(_local_stack, "li")
        return analyzers[1].report()

    benchmark(run_analysis)
    artifact = render_artifact("table5", suite_results)
    assert "go" in artifact
