"""Helpers shared by the benchmark files (see conftest.py for fixtures)."""

from __future__ import annotations

import pathlib

from repro.harness.experiments import EXPERIMENTS
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Instruction budget for the timed analysis sections.
BENCH_LIMIT = 15_000


def render_artifact(exp_id: str, results) -> str:
    """Render one experiment and persist it under benchmarks/results/."""
    exp = EXPERIMENTS[exp_id]
    text = f"== {exp.paper_ref}: {exp.title} ==\n{exp.render(results)}\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(text)
    print("\n" + text)
    return text


def simulate_with(analyzer_factory, workload_name: str = "m88ksim", limit: int = BENCH_LIMIT):
    """Benchmark body: run ``limit`` instructions with fresh analyzers."""
    workload = get_workload(workload_name)
    analyzers = analyzer_factory()
    simulator = Simulator(
        workload.program(), input_data=workload.primary_input(4), analyzers=analyzers
    )
    simulator.run(limit=limit)
    return analyzers
