"""Throughput benchmarks for the simulation substrate itself.

Not a paper artifact — these keep the instrumentation overhead honest:
the bare simulator versus the full six-analyzer stack the experiments
run with.
"""

from __future__ import annotations

from repro.core import (
    FunctionAnalyzer,
    GlobalLoadValueProfiler,
    GlobalSourceAnalyzer,
    LocalAnalyzer,
    RepetitionTracker,
    ReuseBuffer,
)

from _bench_utils import simulate_with


def _full_stack():
    tracker = RepetitionTracker()
    return [
        tracker,
        GlobalSourceAnalyzer(tracker),
        FunctionAnalyzer(),
        LocalAnalyzer(tracker),
        ReuseBuffer(),
        GlobalLoadValueProfiler(),
    ]


def test_bare_simulator_throughput(benchmark):
    benchmark(simulate_with, lambda: [], "m88ksim", 25_000)


def test_bare_simulator_throughput_metrics_enabled(benchmark):
    """Same bare run with the metrics registry armed.

    Keeps the hot-loop counting closures honest: CI derives
    ``telemetry_overhead_pct`` from this pair and fails above 5%.
    """
    from repro.obs import metrics as obs_metrics

    obs_metrics.enable()
    obs_metrics.REGISTRY.reset()
    try:
        benchmark(simulate_with, lambda: [], "m88ksim", 25_000)
    finally:
        obs_metrics.disable()
        obs_metrics.REGISTRY.reset()


def test_repetition_tracker_throughput(benchmark):
    benchmark(simulate_with, lambda: [RepetitionTracker()], "m88ksim", 25_000)


def test_full_analysis_stack_throughput(benchmark):
    benchmark(simulate_with, _full_stack, "m88ksim", 25_000)


def test_compiler_throughput(benchmark):
    """MiniC compilation speed over the largest workload source."""
    from repro.lang import compile_source
    from repro.workloads import get_workload

    source = get_workload("gcc").source()
    program = benchmark(compile_source, source)
    assert program.static_instruction_count > 0
