"""Tests for the global source-slice analysis (Table 3)."""

from __future__ import annotations

import pytest

from repro.core.global_analysis import GlobalSourceAnalyzer
from repro.core.repetition import RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator


def analyze_minic(source, input_data=b""):
    tracker = RepetitionTracker()
    analyzer = GlobalSourceAnalyzer(tracker)
    program = compile_source(source)
    Simulator(program, input_data=input_data, analyzers=[tracker, analyzer]).run()
    return analyzer.report()


class TestSourceCategories:
    def test_pure_internal_program(self):
        report = analyze_minic(
            """
int main() {
    int i; int s = 0;
    for (i = 0; i < 50; i += 1) { s += i; }
    print_int(s);
    return 0;
}
"""
        )
        assert report.overall_pct("internals") > 95.0
        assert report.overall_pct("external input") == 0.0

    def test_initialized_global_slices(self):
        report = analyze_minic(
            """
int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main() {
    int i; int s = 0;
    for (i = 0; i < 8; i += 1) { s += table[i] * 3; }
    print_int(s);
    return 0;
}
"""
        )
        assert report.overall_pct("global init data") > 5.0

    def test_runtime_initialized_globals_stay_internal(self):
        # Values stored at runtime carry the tag of what was stored, not
        # "global init": writing internal data keeps the slice internal.
        report = analyze_minic(
            """
int table[8];
int main() {
    int i; int s = 0;
    for (i = 0; i < 8; i += 1) { table[i] = i; }
    for (i = 0; i < 8; i += 1) { s += table[i]; }
    print_int(s);
    return 0;
}
"""
        )
        assert report.overall_pct("global init data") < 2.0
        assert report.overall_pct("internals") > 90.0

    def test_external_input_slices(self):
        report = analyze_minic(
            """
int main() {
    int i;
    int s = 0;
    int n = read_int();
    for (i = 0; i < 40; i += 1) { s += n * 2 + 1; }
    print_int(s);
    return 0;
}
""",
            input_data=b"5",
        )
        assert report.overall_pct("external input") > 10.0

    def test_supersede_external_beats_global_init(self):
        # Mixing an external value with initialized global data must land
        # the mixed slice in "external input" (the paper's supersede rule).
        report = analyze_minic(
            """
int weight = 7;
int main() {
    int x = read_int();
    int i; int s = 0;
    for (i = 0; i < 30; i += 1) { s += x * weight; }
    print_int(s);
    return 0;
}
""",
            input_data=b"3",
        )
        assert report.overall_pct("external input") > 10.0

    def test_external_propagates_through_memory(self):
        report = analyze_minic(
            """
int cell;
int main() {
    int i; int s = 0;
    cell = read_int();
    for (i = 0; i < 30; i += 1) { s += cell; }
    print_int(s);
    return 0;
}
""",
            input_data=b"9",
        )
        assert report.overall_pct("external input") > 10.0


class TestRepeatedSplit:
    def test_category_totals_sum_to_dynamic_total(self):
        report = analyze_minic(
            """
int t[4] = {1, 2, 3, 4};
int main() {
    int i; int s = 0;
    for (i = 0; i < 4; i += 1) { s += t[i]; }
    print_int(s);
    return 0;
}
"""
        )
        total = sum(stats.total for stats in report.categories.values())
        assert total == report.dynamic_total
        repeated = sum(stats.repeated for stats in report.categories.values())
        assert repeated == report.dynamic_repeated

    def test_propensity_bounded(self):
        report = analyze_minic(
            """
int main() {
    int i; int s = 0;
    for (i = 0; i < 20; i += 1) { s += 2; }
    print_int(s);
    return 0;
}
"""
        )
        for name in report.categories:
            assert 0.0 <= report.propensity_pct(name) <= 100.0

    def test_works_without_tracker(self):
        program = compile_source("int main() { return 0; }")
        analyzer = GlobalSourceAnalyzer(tracker=None)
        Simulator(program, analyzers=[analyzer]).run()
        report = analyzer.report()
        assert report.dynamic_total > 0
        assert report.dynamic_repeated == 0


class TestUninit:
    def test_uninitialized_register_slice(self):
        from repro.asm import assemble

        source = """
        .text
        .ent main, 0
main:   addu $t0, $s0, $s1   # s0/s1 never written: uninit slice
        addu $t1, $t0, $t0
        jr $ra
        .end main
"""
        analyzer = GlobalSourceAnalyzer()
        Simulator(assemble(source), analyzers=[analyzer]).run()
        assert analyzer.stats["uninit"].total >= 2
