"""Tests for the function-level analysis (Tables 4/8, Figure 5)."""

from __future__ import annotations

import pytest

from repro.asm.program import FunctionInfo
from repro.core.function_analysis import FunctionAnalyzer
from repro.lang import compile_source
from repro.sim import Simulator
from repro.sim.events import CallEvent, ReturnEvent, SyscallEvent


def call(analyzer, func, args, warmup=False):
    analyzer.on_call(
        CallEvent(0, func.entry, 4, func, tuple(args), 1, 0x7FFF0000, warmup)
    )


def ret(analyzer, func, value=0):
    analyzer.on_return(ReturnEvent(0, 4, func, value, 1, False))


FUNC2 = FunctionInfo("f", 0x400100, 0x400200, 2)
FUNC0 = FunctionInfo("g", 0x400200, 0x400240, 0)


class TestArgumentRepetition:
    def test_first_call_never_repeats(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.dynamic_calls == 1
        assert report.all_args_repeated == 0

    def test_all_args_repeated(self):
        analyzer = FunctionAnalyzer()
        for _ in range(3):
            call(analyzer, FUNC2, (1, 2))
            ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.all_args_repeated == 2
        assert report.all_args_repeated_pct == pytest.approx(200 / 3)

    def test_no_args_repeated_requires_all_positions_fresh(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))  # first call: nothing repeats
        ret(analyzer, FUNC2)
        call(analyzer, FUNC2, (3, 4))  # both positions fresh
        ret(analyzer, FUNC2)
        call(analyzer, FUNC2, (1, 9))  # position 0 repeats
        ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.no_args_repeated == 2

    def test_partial_repetition_counts_neither_all_nor_none(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)
        call(analyzer, FUNC2, (1, 3))  # position 0 repeats, position 1 fresh
        ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.all_args_repeated == 0
        assert report.no_args_repeated == 1  # just the first call

    def test_zero_arg_functions_repeat_vacuously(self):
        analyzer = FunctionAnalyzer()
        for _ in range(2):
            call(analyzer, FUNC0, ())
            ret(analyzer, FUNC0)
        report = analyzer.report()
        assert report.all_args_repeated == 1
        assert report.no_args_repeated == 0

    def test_warmup_calls_not_counted(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2), warmup=True)
        ret(analyzer, FUNC2)
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.dynamic_calls == 1
        # Warm-up call still primed the seen-set, so this counts repeated.
        assert report.all_args_repeated == 1


class TestTopKCoverage:
    def test_single_tuple_covers_everything(self):
        analyzer = FunctionAnalyzer()
        for _ in range(5):
            call(analyzer, FUNC2, (7, 7))
            ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.top_k_coverage[0] == 100.0

    def test_distribution_across_tuples(self):
        analyzer = FunctionAnalyzer()
        # Tuple A repeats 3x, tuple B repeats 1x.
        for _ in range(4):
            call(analyzer, FUNC2, (1, 1))
            ret(analyzer, FUNC2)
        for _ in range(2):
            call(analyzer, FUNC2, (2, 2))
            ret(analyzer, FUNC2)
        report = analyzer.report()
        assert report.top_k_coverage[0] == pytest.approx(75.0)
        assert report.top_k_coverage[1] == pytest.approx(100.0)


class TestPurity:
    def impure_event(self, analyzer):
        from tests.helpers import make_step

        analyzer.on_step(
            make_step(op="sw", mem_addr=0x1000_0000, store_value=1, inputs=(1, 0))
        )

    def test_pure_call(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 1

    def test_global_store_makes_impure(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        self.impure_event(analyzer)
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 0

    def test_global_load_is_implicit_input(self):
        from tests.helpers import make_step

        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        analyzer.on_step(make_step(op="lw", mem_addr=0x1000_0000, inputs=(0,), outputs=(3,)))
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 0

    def test_stack_accesses_stay_pure(self):
        from tests.helpers import make_step

        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        analyzer.on_step(
            make_step(op="sw", mem_addr=0x7FFF_F000, store_value=1, inputs=(1, 0))
        )
        analyzer.on_step(make_step(op="lw", mem_addr=0x7FFF_F000, inputs=(0,), outputs=(1,)))
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 1

    def test_impurity_propagates_to_callers(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))  # outer
        call(analyzer, FUNC0, ())  # inner
        self.impure_event(analyzer)
        ret(analyzer, FUNC0)
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 0

    def test_io_syscall_is_side_effect(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        analyzer.on_syscall(SyscallEvent(0, 1, 5, None, False, True, False))
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 0

    def test_input_syscall_is_implicit_input(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        analyzer.on_syscall(SyscallEvent(0, 12, 0, 65, True, False, False))
        ret(analyzer, FUNC2)
        assert analyzer.report().pure_calls == 0

    def test_pure_all_repeated_split(self):
        analyzer = FunctionAnalyzer()
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)  # pure, not repeated
        call(analyzer, FUNC2, (1, 2))
        ret(analyzer, FUNC2)  # pure, repeated
        report = analyzer.report()
        assert report.pure_calls == 2
        assert report.pure_all_repeated_calls == 1
        assert report.pure_all_repeated_pct == 100.0


class TestEndToEnd:
    def test_minic_function_argument_repetition(self):
        source = """
int square(int x) { return x * x; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 10; i += 1) { s += square(3); }
    print_int(s);
    return 0;
}
"""
        analyzer = FunctionAnalyzer()
        Simulator(compile_source(source), analyzers=[analyzer]).run()
        report = analyzer.report()
        square = report.per_function["square"]
        assert square.calls == 10
        assert square.all_args_repeated == 9

    def test_minic_purity_with_global_access(self):
        source = """
int counter = 0;
int impure(int x) { counter += 1; return x; }
int pure_add(int a, int b) { return a + b; }
int main() {
    int i;
    for (i = 0; i < 5; i += 1) {
        impure(1);
        pure_add(1, 2);
    }
    return 0;
}
"""
        analyzer = FunctionAnalyzer()
        Simulator(compile_source(source), analyzers=[analyzer]).run()
        report = analyzer.report()
        assert report.per_function["impure"].pure_calls == 0
        assert report.per_function["pure_add"].pure_calls == 5
