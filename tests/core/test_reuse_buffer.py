"""Tests for the reuse buffer model (Table 10 hardware)."""

from __future__ import annotations

import pytest

from repro.core.reuse_buffer import ReuseBuffer

from tests.helpers import make_step

PC = 0x0040_0000


def alu(pc, value):
    return make_step(pc=pc, op="addu", inputs=(value, 1), outputs=(value + 1,))


def load(pc, addr, value):
    return make_step(
        pc=pc, op="lw", inputs=(addr,), outputs=(value,), dest_reg=8, dest_value=value,
        mem_addr=addr,
    )


def store(pc, addr, value):
    return make_step(
        pc=pc, op="sw", inputs=(value, addr), outputs=(), mem_addr=addr, store_value=value,
    )


class TestBasicReuse:
    def test_first_occurrence_misses(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(alu(PC, 5))
        assert buffer.reuse_hits == 0

    def test_second_occurrence_hits(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(alu(PC, 5))
        buffer.on_step(alu(PC, 5))
        assert buffer.reuse_hits == 1

    def test_different_operands_miss(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(alu(PC, 5))
        buffer.on_step(alu(PC, 6))
        assert buffer.reuse_hits == 0

    def test_multiple_instances_coexist_in_set(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        for value in (1, 2, 3):
            buffer.on_step(alu(PC, value))
        for value in (1, 2, 3):
            buffer.on_step(alu(PC, value))
        assert buffer.reuse_hits == 3

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            ReuseBuffer(entries=10, associativity=4)


class TestEvictions:
    def test_lru_eviction_within_set(self):
        buffer = ReuseBuffer(entries=4, associativity=4)  # a single set
        for value in (1, 2, 3, 4):
            buffer.on_step(alu(PC, value))
        buffer.on_step(alu(PC, 5))  # evicts the LRU instance (value 1)
        buffer.on_step(alu(PC, 1))
        assert buffer.reuse_hits == 0

    def test_mru_promotion_on_hit(self):
        buffer = ReuseBuffer(entries=4, associativity=4)
        for value in (1, 2, 3, 4):
            buffer.on_step(alu(PC, value))
        buffer.on_step(alu(PC, 1))  # hit: promotes value-1 entry to MRU
        buffer.on_step(alu(PC, 5))  # evicts value 2 instead
        buffer.on_step(alu(PC, 1))
        assert buffer.reuse_hits == 2

    def test_conflicting_pcs_share_sets(self):
        buffer = ReuseBuffer(entries=4, associativity=1)
        stride = 4 * 4  # same set index for 4 sets
        for i in range(8):
            buffer.on_step(alu(PC + i * stride, 1))
        # All mapped to a few sets with assoc 1: re-running misses mostly.
        first_round_hits = buffer.reuse_hits
        assert first_round_hits == 0


class TestLoadInvalidation:
    def test_load_reuse_until_store(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(load(PC, 0x1000_0000, 7))
        buffer.on_step(load(PC, 0x1000_0000, 7))
        assert buffer.reuse_hits == 1
        buffer.on_step(store(PC + 4, 0x1000_0000, 9))
        assert buffer.invalidations == 1
        buffer.on_step(load(PC, 0x1000_0000, 9))
        assert buffer.reuse_hits == 1  # invalidated: no stale reuse

    def test_store_to_other_address_keeps_entry(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(load(PC, 0x1000_0000, 7))
        buffer.on_step(store(PC + 4, 0x1000_0040, 9))
        buffer.on_step(load(PC, 0x1000_0000, 7))
        assert buffer.reuse_hits == 1
        assert buffer.invalidations == 0

    def test_subword_store_invalidates_word(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(load(PC, 0x1000_0000, 7))
        # A byte store inside the same word must invalidate conservatively.
        buffer.on_step(store(PC + 4, 0x1000_0002, 1))
        buffer.on_step(load(PC, 0x1000_0000, 7))
        assert buffer.reuse_hits == 0


class TestReport:
    def test_report_percentages(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(alu(PC, 5))
        buffer.on_step(alu(PC, 5))
        report = buffer.report()
        assert report.dynamic_total == 2
        assert report.reuse_hits == 1
        assert report.hit_pct == 50.0
        assert report.repeated_share_pct(1) == 100.0
        assert report.repeated_share_pct(0) == 0.0


class TestMetrics:
    def test_on_finish_publishes_counters(self, metrics_enabled):
        buffer = ReuseBuffer(entries=4, associativity=2)
        buffer.on_step(alu(PC, 5))
        buffer.on_step(alu(PC, 5))
        buffer.on_step(load(PC + 4, 0x1000_0000, 7))
        buffer.on_step(store(PC + 8, 0x1000_0000, 9))
        # Overflow one set to force an eviction.
        for value in (1, 2, 3):
            buffer.on_step(alu(PC + 32, value))
        buffer.on_finish()
        assert metrics_enabled.value("reuse.probes") == buffer.dynamic_total
        assert metrics_enabled.value("reuse.hits") == buffer.reuse_hits == 1
        assert metrics_enabled.value("reuse.invalidations") == buffer.invalidations == 1
        assert metrics_enabled.value("reuse.evictions") == buffer.evictions
        assert buffer.evictions > 0
        assert metrics_enabled.snapshot()["gauges"]["reuse.occupancy"] == buffer.occupancy

    def test_disabled_registry_publishes_nothing(self, metrics_enabled):
        from repro.obs import metrics as obs_metrics

        buffer = ReuseBuffer(entries=16, associativity=4)
        buffer.on_step(alu(PC, 5))
        obs_metrics.disable()
        try:
            buffer.on_finish()
        finally:
            obs_metrics.enable()
        assert metrics_enabled.value("reuse.probes") == 0
        assert "reuse.occupancy" not in metrics_enabled.snapshot()["gauges"]
