"""Tests for the local (within-function) analysis (Tables 5/6/7/9).

Hand-written assembly pins down exactly which instructions land in which
category; MiniC programs validate the categories over compiler output.
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.core.local_analysis import CATEGORY_ORDER, LocalAnalyzer
from repro.core.repetition import RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator


def analyze_asm(source, input_data=b""):
    analyzer = LocalAnalyzer()
    Simulator(assemble(source), input_data=input_data, analyzers=[analyzer]).run()
    return analyzer


def analyze_minic(source, input_data=b""):
    tracker = RepetitionTracker()
    analyzer = LocalAnalyzer(tracker)
    Simulator(
        compile_source(source), input_data=input_data, analyzers=[tracker, analyzer]
    ).run()
    return analyzer


class TestTaskCategories:
    def test_prologue_and_epilogue(self):
        analyzer = analyze_asm(
            """
        .ent main, 0
main:   addiu $sp, $sp, -16     # prologue: frame allocation
        sw $ra, 12($sp)         # prologue: save of uninit reg
        sw $s0, 8($sp)          # prologue: save of uninit reg
        li $s0, 5
        lw $s0, 8($sp)          # epilogue: restore
        lw $ra, 12($sp)         # epilogue: restore
        addiu $sp, $sp, 16      # epilogue: frame release
        jr $ra                  # return
        .end main
"""
        )
        assert analyzer.stats["prologue"].total == 3
        assert analyzer.stats["epilogue"].total == 3
        assert analyzer.stats["return"].total == 1

    def test_value_spill_is_not_prologue(self):
        analyzer = analyze_asm(
            """
        .ent main, 0
main:   addiu $sp, $sp, -16
        li $t0, 9               # internal value
        sw $t0, 0($sp)          # spill of a *written* register
        lw $t1, 0($sp)          # reload carries the stored tag
        addiu $sp, $sp, 16
        jr $ra
        .end main
"""
        )
        # One prologue (frame alloc) + one epilogue (release); the spill
        # pair is categorized by its data (function internals).
        assert analyzer.stats["prologue"].total == 1
        assert analyzer.stats["epilogue"].total == 1
        assert analyzer.stats["function internals"].total >= 3

    def test_sp_arithmetic_category(self):
        analyzer = analyze_asm(
            """
        .ent main, 0
main:   addiu $sp, $sp, -16
        addiu $t0, $sp, 4       # address of a local: SP category
        addiu $sp, $sp, 16
        jr $ra
        .end main
"""
        )
        assert analyzer.stats["SP"].total == 1

    def test_global_address_calculation(self):
        analyzer = analyze_asm(
            """
        .data
var:    .word 3
        .text
        .ent main, 0
main:   la $t0, var             # addiu $t0, $gp, off -> glb_addr_calc
        lw $t1, 0($t0)          # load from data: global
        jr $ra
        .end main
"""
        )
        assert analyzer.stats["glb_addr_calc"].total == 1
        assert analyzer.stats["global"].total == 1

    def test_lui_ori_address_synthesis(self):
        analyzer = analyze_asm(
            """
        .ent main, 0
main:   lui $t0, 0x1000         # upper half of a data address
        ori $t0, $t0, 0x100     # completes the address: stays glb_addr
        lui $t1, 0x0100         # not a data address: internal
        jr $ra
        .end main
"""
        )
        assert analyzer.stats["glb_addr_calc"].total == 2
        assert analyzer.stats["function internals"].total >= 1


class TestSourceCategories:
    def test_argument_slices(self):
        analyzer = analyze_minic(
            """
int f(int a, int b) { return a * 2 + b; }
int main() { print_int(f(3, 4)); return 0; }
"""
        )
        assert analyzer.stats["arguments"].total > 0

    def test_heap_vs_global_loads(self):
        analyzer = analyze_minic(
            """
int g[4] = {1, 2, 3, 4};
int main() {
    int *h = (sbrk(16));
    int i; int s = 0;
    for (i = 0; i < 4; i += 1) { h[i] = 5; }
    for (i = 0; i < 4; i += 1) { s += g[i] + h[i]; }
    print_int(s);
    return 0;
}
"""
        )
        assert analyzer.stats["global"].total > 0
        assert analyzer.stats["heap"].total > 0

    def test_return_value_slices(self):
        analyzer = analyze_minic(
            """
int pick() { return 7; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 5; i += 1) { s += pick() * 3; }
    print_int(s);
    return 0;
}
"""
        )
        assert analyzer.stats["return values"].total > 0

    def test_syscall_results_are_return_values(self):
        analyzer = analyze_minic(
            """
int main() {
    int c = getchar();
    print_int(c + 1);
    return 0;
}
""",
            input_data=b"A",
        )
        assert analyzer.stats["return values"].total > 0

    def test_totals_are_complete(self):
        analyzer = analyze_minic(
            """
int g = 3;
int helper(int x) { return x + g; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 10; i += 1) { s += helper(i); }
    print_int(s);
    return 0;
}
"""
        )
        by_category = sum(analyzer.stats[name].total for name in CATEGORY_ORDER)
        assert by_category == analyzer.dynamic_total
        repeated = sum(analyzer.stats[name].repeated for name in CATEGORY_ORDER)
        assert repeated == analyzer.dynamic_repeated


class TestTable9:
    def test_prologue_contributors_ranked(self):
        analyzer = analyze_minic(
            """
int heavy(int a, int b) {
    int x = a + b;
    int y = a - b;
    return x * y;
}
int light(int a) { return a; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 20; i += 1) { s += heavy(2, 3) + light(1); }
    print_int(s);
    return 0;
}
"""
        )
        report = analyzer.report()
        top = report.top_prologue_contributors(5)
        names = [c.name for c in top]
        assert "heavy" in names
        # Sizes come from the program's function metadata.
        heavy = next(c for c in top if c.name == "heavy")
        assert heavy.static_size > 0
        assert 0.0 <= report.prologue_coverage_pct(5) <= 100.0

    def test_coverage_of_all_contributors_is_total(self):
        analyzer = analyze_minic(
            """
int f(int a) {
    int b = a + 1;   /* s-register local: forces a prologue save */
    return b * 2;
}
int main() {
    int i; int s = 0;
    for (i = 0; i < 5; i += 1) { s += f(1); }
    print_int(s);
    return 0;
}
"""
        )
        report = analyzer.report()
        assert report.prologue_coverage_pct(100) == pytest.approx(100.0)

    def test_frameless_leaf_has_no_prologue(self):
        analyzer = analyze_minic(
            """
int f(int a) { return a + 1; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 5; i += 1) { s += f(1); }
    print_int(s);
    return 0;
}
"""
        )
        report = analyzer.report()
        # f is a frameless leaf: only main contributes prologue/epilogue.
        assert "f" not in report.prologue_epilogue_by_function


class TestPropensity:
    def test_repeated_calls_make_prologue_repeat(self):
        analyzer = analyze_minic(
            """
int i_g = 0;
int s_g = 0;
int f(int a) {
    int doubled = a * 2;   /* forces a saved register, hence a prologue */
    return doubled + 1;
}
int main() {
    /* Loop state in globals so the caller's callee-saved registers keep
     * the same (dead) values across calls — the paper's condition for
     * prologue/epilogue repetition. */
    while (i_g < 30) {
        s_g += f(7);
        i_g += 1;
    }
    print_int(s_g);
    return 0;
}
"""
        )
        report = analyzer.report()
        # Same call site, same frame depth, same saved values: prologue
        # and epilogue repeat heavily (the paper's explanation).
        assert report.propensity_pct("prologue") > 80.0
        assert report.propensity_pct("epilogue") > 80.0
