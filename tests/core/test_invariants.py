"""Cross-analyzer property tests on synthetic deterministic streams.

Hypothesis generates deterministic instruction streams (outputs are a
function of (pc, inputs), as on real hardware) and checks the invariants
that tie the analyses together:

* reuse hits never exceed tracked repetition (a reuse hit implies the
  instance matches a previously executed one);
* per-category splits always sum to the totals;
* a bigger repetition buffer never reports less repetition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GlobalLoadValueProfiler,
    InstructionMixAnalyzer,
    RepetitionTracker,
    ReuseBuffer,
)

from tests.helpers import make_step

BASE = 0x0040_0000


def _stream(spec):
    """Build deterministic StepRecords from (pc_index, input_value) pairs."""
    steps = []
    for index, (pc_index, value) in enumerate(spec, start=1):
        pc = BASE + 4 * pc_index
        # Deterministic "semantics": output is a pure function of inputs.
        output = (value * 2654435761 + pc_index) & 0xFFFFFFFF
        steps.append(
            make_step(
                pc=pc,
                op="addu",
                inputs=(value,),
                outputs=(output,),
                dest_reg=8,
                dest_value=output,
                index=index,
            )
        )
    return steps


stream_specs = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 9)), min_size=0, max_size=120
)


class TestReuseVsRepetition:
    @settings(max_examples=60, deadline=None)
    @given(stream_specs)
    def test_reuse_hits_bounded_by_repetition(self, spec):
        tracker = RepetitionTracker()
        buffer = ReuseBuffer(entries=64, associativity=4)
        for step in _stream(spec):
            tracker.on_step(step)
            buffer.on_step(step)
        assert buffer.reuse_hits <= tracker.dynamic_repeated

    @settings(max_examples=60, deadline=None)
    @given(stream_specs)
    def test_huge_buffer_captures_all_repetition(self, spec):
        """With capacity >> working set and no stores, reuse == repetition."""
        tracker = RepetitionTracker()
        buffer = ReuseBuffer(entries=4096, associativity=4096)
        for step in _stream(spec):
            tracker.on_step(step)
            buffer.on_step(step)
        assert buffer.reuse_hits == tracker.dynamic_repeated


class TestBufferMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(stream_specs)
    def test_larger_instance_buffer_never_hides_repetition(self, spec):
        small = RepetitionTracker(buffer_capacity=2)
        large = RepetitionTracker(buffer_capacity=64)
        for step in _stream(spec):
            small.on_step(step)
            large.on_step(step)
        assert small.dynamic_repeated <= large.dynamic_repeated

    @settings(max_examples=40, deadline=None)
    @given(stream_specs)
    def test_report_consistency(self, spec):
        tracker = RepetitionTracker()
        for step in _stream(spec):
            tracker.on_step(step)
        report = tracker.report()
        assert report.dynamic_repeated == sum(report.instance_repeat_counts)
        assert report.dynamic_repeated == sum(report.static_repeat_weights)
        assert report.static_repeated <= report.static_executed
        assert sum(report.bucket_weights.values()) == report.dynamic_repeated


class TestMixCompleteness:
    @settings(max_examples=40, deadline=None)
    @given(stream_specs)
    def test_mix_total_matches(self, spec):
        analyzer = InstructionMixAnalyzer()
        for step in _stream(spec):
            analyzer.on_step(step)
        report = analyzer.report()
        assert report.dynamic_total == len(spec)
        assert sum(s.total for s in report.classes.values()) == len(spec)


class TestValueProfilerBounds:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)), max_size=80))
    def test_coverage_bounded_and_monotone(self, spec):
        profiler = GlobalLoadValueProfiler()
        for pc_index, value in spec:
            profiler.on_step(
                make_step(
                    pc=BASE + 4 * pc_index,
                    op="lw",
                    inputs=(0x1000_0000,),
                    outputs=(value,),
                    dest_reg=8,
                    dest_value=value,
                    mem_addr=0x1000_0000 + 4 * pc_index,
                )
            )
        report = profiler.report()
        coverage = list(report.top_k_coverage)
        assert coverage == sorted(coverage)
        assert all(0.0 <= c <= 100.0 for c in coverage)
        assert report.loads_profiled == len(spec)
