"""Tests for the repetition tracker (the paper's core methodology)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.repetition import RepetitionTracker

from tests.helpers import make_step


PC = 0x0040_0000


def feed(tracker, instances, pc=PC):
    """Feed (inputs, outputs) pairs as successive dynamic instances."""
    for inputs, outputs in instances:
        tracker.on_step(make_step(pc=pc, inputs=inputs, outputs=outputs))


class TestPaperDefinition:
    def test_first_instance_is_not_repeated(self):
        tracker = RepetitionTracker()
        tracker.on_step(make_step(pc=PC, inputs=(1,), outputs=(2,)))
        assert not tracker.last_was_repeated
        assert tracker.dynamic_repeated == 0

    def test_same_inputs_and_outputs_repeat(self):
        tracker = RepetitionTracker()
        feed(tracker, [((1, 2), (3,)), ((1, 2), (3,))])
        assert tracker.last_was_repeated
        assert tracker.dynamic_repeated == 1

    def test_same_inputs_different_outputs_not_repeated(self):
        # A load reading a different value from the same address (paper §2).
        tracker = RepetitionTracker()
        feed(tracker, [((100,), (7,)), ((100,), (8,))])
        assert not tracker.last_was_repeated

    def test_different_pcs_are_independent(self):
        tracker = RepetitionTracker()
        tracker.on_step(make_step(pc=PC, inputs=(1,), outputs=(1,)))
        tracker.on_step(make_step(pc=PC + 4, inputs=(1,), outputs=(1,)))
        assert not tracker.last_was_repeated

    def test_figure2_example(self):
        """The paper's Figure 2: I1..I7 with I2/I4 as the unique
        repeatable instances (I1 unique but never repeated)."""
        tracker = RepetitionTracker()
        a, b, c = ((1,), (1,)), ((2,), (2,)), ((3,), (3,))
        # I1=a, I2=b, I3=b, I4=c, I5=c, I6=b, I7=c
        feed(tracker, [a, b, b, c, c, b, c])
        report = tracker.report()
        assert report.dynamic_total == 7
        assert report.dynamic_repeated == 4  # I3, I5, I6, I7
        assert report.unique_repeatable_instances == 2  # I2 and I4
        assert sorted(report.instance_repeat_counts) == [2, 2]
        assert report.average_repeats == 2.0


class TestBufferCapacity:
    def test_capacity_limits_learning(self):
        tracker = RepetitionTracker(buffer_capacity=2)
        feed(tracker, [((1,), ()), ((2,), ()), ((3,), ())])
        # Third unique instance is not buffered...
        assert tracker.buffered_instances(PC) == 2
        # ...so its recurrence is not detected as repetition.
        feed(tracker, [((3,), ())])
        assert not tracker.last_was_repeated
        # But buffered instances still hit.
        feed(tracker, [((1,), ())])
        assert tracker.last_was_repeated

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RepetitionTracker(buffer_capacity=0)

    @given(st.integers(min_value=1, max_value=8), st.lists(st.integers(0, 15), max_size=60))
    def test_repeated_never_exceeds_total(self, capacity, values):
        tracker = RepetitionTracker(buffer_capacity=capacity)
        feed(tracker, [((v,), (v,)) for v in values])
        assert tracker.dynamic_repeated <= max(0, tracker.dynamic_total - 1)
        assert tracker.buffered_instances(PC) <= capacity

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_unlimited_buffer_counts_exactly(self, values):
        """With a large buffer, repeats = total - distinct values."""
        tracker = RepetitionTracker()
        feed(tracker, [((v,), (v,)) for v in values])
        assert tracker.dynamic_repeated == len(values) - len(set(values))


class TestReport:
    def test_static_counters(self):
        tracker = RepetitionTracker()
        feed(tracker, [((1,), ()), ((1,), ())], pc=PC)  # repeats
        feed(tracker, [((9,), ())], pc=PC + 4)  # executes once, no repeat
        report = tracker.report()
        assert report.static_executed == 2
        assert report.static_repeated == 1
        assert report.static_repeated_pct == 50.0

    def test_bucket_assignment(self):
        tracker = RepetitionTracker()
        # 1 unique repeatable instance at PC.
        feed(tracker, [((1,), ()), ((1,), ())], pc=PC)
        # 3 unique repeatable instances at PC+4.
        for value in (10, 11, 12):
            feed(tracker, [((value,), ()), ((value,), ())], pc=PC + 4)
        report = tracker.report()
        assert report.bucket_weights["1"] == 1
        assert report.bucket_weights["2-10"] == 3

    def test_percentages(self):
        tracker = RepetitionTracker()
        feed(tracker, [((1,), ())] * 4)
        report = tracker.report()
        assert report.dynamic_repeated_pct == 75.0

    def test_empty_report(self):
        report = RepetitionTracker().report()
        assert report.dynamic_total == 0
        assert report.dynamic_repeated_pct == 0.0
        assert report.average_repeats == 0.0

    def test_was_repeated_out_of_order_raises(self):
        tracker = RepetitionTracker()
        first = make_step(pc=PC, inputs=(1,), outputs=())
        second = make_step(pc=PC, inputs=(1,), outputs=())
        tracker.on_step(first)
        tracker.on_step(second)
        with pytest.raises(RuntimeError):
            tracker.was_repeated(first)
        assert tracker.was_repeated(second)
