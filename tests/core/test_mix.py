"""Tests for the instruction-mix analyzer."""

from __future__ import annotations

import pytest

from repro.core import InstructionMixAnalyzer, RepetitionTracker
from repro.core.mix import MIX_CLASSES
from repro.lang import compile_source
from repro.sim import Simulator

from tests.helpers import make_step


def analyze(source, input_data=b""):
    tracker = RepetitionTracker()
    analyzer = InstructionMixAnalyzer(tracker)
    Simulator(
        compile_source(source), input_data=input_data, analyzers=[tracker, analyzer]
    ).run()
    return analyzer.report()


LOOP = """
int data[8];
int touch(int i) { data[i & 7] = i; return data[i & 7]; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 20; i += 1) { s += touch(i); }
    print_int(s);
    return 0;
}
"""


class TestClassification:
    def test_classes_cover_all_instructions(self):
        report = analyze(LOOP)
        assert sum(report.classes[c].total for c in MIX_CLASSES) == report.dynamic_total

    def test_loads_and_stores_counted(self):
        report = analyze(LOOP)
        assert report.classes["load"].total >= 20
        assert report.classes["store"].total >= 20

    def test_calls_and_returns_paired(self):
        report = analyze(LOOP)
        # touch() returns 20 times plus main's own return.
        assert report.classes["return"].total == 21
        assert report.classes["call"].total == 20

    def test_share_percentages_sum_to_100(self):
        report = analyze(LOOP)
        assert sum(report.share_pct(c) for c in MIX_CLASSES) == pytest.approx(100.0)

    def test_jr_non_ra_is_jump(self):
        from repro.isa.registers import T0

        analyzer = InstructionMixAnalyzer()
        analyzer.on_step(make_step(op="jr", rs=T0, inputs=(0x400000,)))
        assert analyzer.classes["jump"].total == 1
        assert analyzer.classes["return"].total == 0


class TestControlFlowStats:
    def test_branch_taken_rate(self):
        report = analyze(LOOP)
        assert report.branches > 0
        assert 0.0 < report.branch_taken_pct < 100.0

    def test_call_depth(self):
        source = """
int depth3() { return 1; }
int depth2() { return depth3(); }
int depth1() { return depth2(); }
int main() { print_int(depth1()); return 0; }
"""
        report = analyze(source)
        # main + depth1 + depth2 + depth3 (the entry call counts too).
        assert report.max_call_depth == 4
        assert report.dynamic_calls == 4

    def test_loads_per_store(self):
        report = analyze(LOOP)
        assert report.loads_per_store > 0.0


class TestRepetitionSplit:
    def test_propensity_populated_with_tracker(self):
        report = analyze(LOOP)
        assert report.classes["alu"].repeated > 0
        assert 0.0 <= report.classes["alu"].propensity_pct <= 100.0

    def test_without_tracker_no_repeats(self):
        analyzer = InstructionMixAnalyzer()
        Simulator(compile_source(LOOP), analyzers=[analyzer]).run()
        assert all(stats.repeated == 0 for stats in analyzer.classes.values())
