"""Tests for global-load value profiling (Figure 6)."""

from __future__ import annotations

import pytest

from repro.core.value_profile import GlobalLoadValueProfiler

from tests.helpers import make_step

PC = 0x0040_0000
DATA = 0x1000_0000
HEAP = 0x3000_0000
STACK = 0x7FFF_F000


def load(pc, addr, value):
    return make_step(
        pc=pc, op="lw", inputs=(addr,), outputs=(value,), dest_reg=8,
        dest_value=value, mem_addr=addr,
    )


class TestFiltering:
    def test_profiles_data_and_heap_loads(self):
        profiler = GlobalLoadValueProfiler()
        profiler.on_step(load(PC, DATA, 1))
        profiler.on_step(load(PC + 4, HEAP, 2))
        assert profiler.loads_profiled == 2

    def test_ignores_stack_loads(self):
        profiler = GlobalLoadValueProfiler()
        profiler.on_step(load(PC, STACK, 1))
        assert profiler.loads_profiled == 0

    def test_ignores_non_loads(self):
        profiler = GlobalLoadValueProfiler()
        profiler.on_step(make_step(pc=PC, op="addu", inputs=(1, 2), outputs=(3,)))
        assert profiler.loads_profiled == 0


class TestCoverage:
    def test_single_value_covers_all(self):
        profiler = GlobalLoadValueProfiler()
        for _ in range(5):
            profiler.on_step(load(PC, DATA, 42))
        report = profiler.report()
        assert report.load_repetition == 4
        assert report.top_k_coverage[0] == 100.0

    def test_top_k_ordering(self):
        profiler = GlobalLoadValueProfiler()
        # Value 1 seen 6x (5 repeats), value 2 seen 3x (2 repeats),
        # value 3 seen 2x (1 repeat).
        for value, count in ((1, 6), (2, 3), (3, 2)):
            for _ in range(count):
                profiler.on_step(load(PC, DATA, value))
        report = profiler.report()
        assert report.load_repetition == 8
        assert report.top_k_coverage[0] == pytest.approx(100 * 5 / 8)
        assert report.top_k_coverage[1] == pytest.approx(100 * 7 / 8)
        assert report.top_k_coverage[2] == pytest.approx(100.0)
        # Coverage is monotone in k.
        assert list(report.top_k_coverage) == sorted(report.top_k_coverage)

    def test_unique_values_have_no_repetition(self):
        profiler = GlobalLoadValueProfiler()
        for value in range(10):
            profiler.on_step(load(PC, DATA, value))
        report = profiler.report()
        assert report.load_repetition == 0
        assert report.top_k_coverage == (0.0,) * 5

    def test_separate_static_loads_aggregate(self):
        profiler = GlobalLoadValueProfiler()
        for _ in range(3):
            profiler.on_step(load(PC, DATA, 1))
        for _ in range(3):
            profiler.on_step(load(PC + 4, DATA, 9))
        report = profiler.report()
        assert report.static_loads == 2
        assert report.top_k_coverage[0] == 100.0  # top value of each load


class TestValueCap:
    def test_cap_bounds_profile_size(self):
        profiler = GlobalLoadValueProfiler(value_cap=4)
        for value in range(10):
            profiler.on_step(load(PC, DATA, value))
        assert len(profiler._profiles[PC]) == 4

    def test_capped_values_still_count_loads(self):
        profiler = GlobalLoadValueProfiler(value_cap=2)
        for value in range(5):
            profiler.on_step(load(PC, DATA, value))
        assert profiler.loads_profiled == 5
