"""Tests for the value predictors and their evaluation analyzer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.value_prediction import (
    ContextPredictor,
    HybridPredictor,
    LastValuePredictor,
    StridePredictor,
    ValuePredictionAnalyzer,
)
from repro.core.repetition import RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator

from tests.helpers import make_step

PC = 0x0040_0000


def train(predictor, values, pc=PC):
    for value in values:
        predictor.update(pc, value)


class TestLastValuePredictor:
    def test_cold_table_abstains(self):
        assert LastValuePredictor().predict(PC) is None

    def test_needs_confidence(self):
        predictor = LastValuePredictor(threshold=2)
        train(predictor, [7])
        assert predictor.predict(PC) is None
        train(predictor, [7])
        assert predictor.predict(PC) == 7

    def test_constant_sequence_predicted(self):
        predictor = LastValuePredictor()
        train(predictor, [5, 5, 5])
        assert predictor.predict(PC) == 5

    def test_changing_values_lose_confidence(self):
        predictor = LastValuePredictor(threshold=2)
        train(predictor, [1, 1, 1])  # confident
        train(predictor, [2, 3, 4])  # confidence decays
        assert predictor.predict(PC) is None

    def test_distinct_pcs_independent(self):
        predictor = LastValuePredictor()
        train(predictor, [1, 1, 1], pc=PC)
        assert predictor.predict(PC + 4) is None


class TestStridePredictor:
    def test_arithmetic_sequence(self):
        predictor = StridePredictor()
        train(predictor, [10, 13, 16, 19])
        assert predictor.predict(PC) == 22

    def test_zero_stride_is_last_value(self):
        predictor = StridePredictor()
        train(predictor, [4, 4, 4])
        assert predictor.predict(PC) == 4

    def test_wraps_32_bits(self):
        predictor = StridePredictor()
        top = 0xFFFFFFFE
        train(predictor, [top - 3, top - 2, top - 1, top])
        assert predictor.predict(PC) == 0xFFFFFFFF

    def test_negative_stride(self):
        predictor = StridePredictor()
        train(predictor, [100, 90, 80, 70])
        assert predictor.predict(PC) == 60

    def test_stride_change_relearned(self):
        predictor = StridePredictor(threshold=1)
        train(predictor, [0, 2, 4, 6])
        train(predictor, [10, 15, 20, 25])
        assert predictor.predict(PC) == 30


class TestContextPredictor:
    def test_repeating_pattern_learned(self):
        predictor = ContextPredictor(order=2, threshold=1)
        # Pattern 1,2,3 repeating: after (2,3) comes 1, etc.
        train(predictor, [1, 2, 3] * 4)
        # History is now (2, 3); next should be 1.
        assert predictor.predict(PC) == 1

    def test_insufficient_history_abstains(self):
        predictor = ContextPredictor(order=3)
        train(predictor, [1, 2])
        assert predictor.predict(PC) is None

    def test_alternating_values(self):
        predictor = ContextPredictor(order=1, threshold=1)
        train(predictor, [7, 9, 7, 9, 7])
        assert predictor.predict(PC) == 9  # after a 7 comes a 9

    def test_stride_sequence_not_predicted(self):
        """Unlike the stride predictor, FCM cannot extrapolate a fresh
        arithmetic sequence (each context is new)."""
        predictor = ContextPredictor(order=2, threshold=1)
        train(predictor, [10, 20, 30, 40])
        assert predictor.predict(PC) != 50


class TestHybridPredictor:
    def test_uses_stride_when_context_cold(self):
        predictor = HybridPredictor()
        train(predictor, [5, 10, 15, 20])
        assert predictor.predict(PC) == 25

    def test_pattern_beats_stride_on_cycles(self):
        predictor = HybridPredictor(order=2)
        train(predictor, [1, 2, 3] * 6)
        assert predictor.predict(PC) == 1

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=40))
    def test_never_crashes(self, values):
        predictor = HybridPredictor()
        for value in values:
            prediction = predictor.predict(PC)
            assert prediction is None or 0 <= prediction < 2**32
            predictor.update(PC, value)


class TestAnalyzer:
    def _alu(self, value, pc=PC):
        return make_step(
            pc=pc, op="addu", inputs=(value, 0), outputs=(value,),
            dest_reg=8, dest_value=value,
        )

    def test_eligibility(self):
        analyzer = ValuePredictionAnalyzer(LastValuePredictor())
        analyzer.on_step(self._alu(5))
        analyzer.on_step(make_step(op="beq", inputs=(1, 1), outputs=(1,)))  # no dest
        assert analyzer.eligible == 1

    def test_accuracy_counting(self):
        analyzer = ValuePredictionAnalyzer(LastValuePredictor(threshold=1))
        for _ in range(5):
            analyzer.on_step(self._alu(9))
        report = analyzer.report()
        assert report.eligible == 5
        assert report.correct >= 3
        assert report.accuracy_pct == 100.0

    def test_repeated_split_with_tracker(self):
        tracker = RepetitionTracker()
        analyzer = ValuePredictionAnalyzer(LastValuePredictor(threshold=1), tracker)
        for _ in range(4):
            step = self._alu(7)
            tracker.on_step(step)
            analyzer.on_step(step)
        report = analyzer.report()
        assert report.repeated_eligible == 3
        assert report.correct_on_repeated >= 2
        assert 0.0 <= report.repeated_capture_pct <= 100.0

    def test_end_to_end_on_minic(self):
        source = """
int main() {
    int i; int s = 0;
    for (i = 0; i < 100; i += 1) { s += 3; }
    print_int(s);
    return 0;
}
"""
        tracker = RepetitionTracker()
        analyzer = ValuePredictionAnalyzer(StridePredictor(), tracker)
        Simulator(compile_source(source), analyzers=[tracker, analyzer]).run()
        report = analyzer.report()
        # The loop's counter and accumulator are perfectly stride-
        # predictable; overall accuracy must be high.
        assert report.coverage_pct > 50.0
        assert report.accuracy_pct > 80.0

    def test_report_zero_division_safety(self):
        report = ValuePredictionAnalyzer(LastValuePredictor()).report()
        assert report.coverage_pct == 0.0
        assert report.accuracy_pct == 0.0
        assert report.repeated_capture_pct == 0.0
