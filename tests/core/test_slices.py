"""Tests for dynamic backward-slice extraction."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.core.slices import SliceRecorder
from repro.isa.registers import register_index
from repro.lang import compile_source
from repro.sim import Simulator


def record_asm(source, input_data=b""):
    recorder = SliceRecorder()
    Simulator(assemble(source), input_data=input_data, analyzers=[recorder]).run()
    return recorder


def record_minic(source, input_data=b""):
    recorder = SliceRecorder()
    Simulator(compile_source(source), input_data=input_data, analyzers=[recorder]).run()
    return recorder


class TestRegisterChains:
    def test_linear_dependency_chain(self):
        recorder = record_asm(
            """
        .ent main, 0
main:   li $t0, 1
        addiu $t1, $t0, 1
        addiu $t2, $t1, 1
        li $t9, 99
        jr $ra
        .end main
"""
        )
        report = recorder.slice_of_register(register_index("t2"))
        assert report is not None
        # li, two addius — the unrelated li $t9 is excluded.
        assert report.dynamic_size == 3

    def test_unrelated_computation_excluded(self):
        recorder = record_asm(
            """
        .ent main, 0
main:   li $t0, 5
        li $t1, 7
        addu $t2, $t0, $t0
        addu $t3, $t1, $t1
        jr $ra
        .end main
"""
        )
        t2_slice = recorder.slice_of_register(register_index("t2"))
        t3_slice = recorder.slice_of_register(register_index("t3"))
        assert t2_slice.dynamic_size == 2
        assert t3_slice.dynamic_size == 2
        assert set(t2_slice.indices) & set(t3_slice.indices) == set()

    def test_diamond_dependencies(self):
        recorder = record_asm(
            """
        .ent main, 0
main:   li $t0, 3
        addiu $t1, $t0, 1
        addiu $t2, $t0, 2
        addu $t3, $t1, $t2
        jr $ra
        .end main
"""
        )
        report = recorder.slice_of_register(register_index("t3"))
        assert report.dynamic_size == 4  # shared root counted once


class TestMemoryEdges:
    def test_slice_flows_through_store_load(self):
        recorder = record_asm(
            """
        .data
cell:   .space 4
        .text
        .ent main, 0
main:   li $t0, 42
        la $t1, cell
        sw $t0, 0($t1)
        li $t5, 1000
        lw $t2, 0($t1)
        addiu $t3, $t2, 0
        jr $ra
        .end main
"""
        )
        report = recorder.slice_of_register(register_index("t3"))
        nodes = recorder.nodes(report)
        texts = [n.disassembly for n in nodes]
        assert any("sw" in t for t in texts), "store must be in the slice"
        assert any(t.startswith("addiu $t0") or "li" in t or "addiu" in t for t in texts)
        # The unrelated li $t5 is not in the slice.
        assert not any("$t5" in t for t in texts)

    def test_initial_memory_is_a_root(self):
        recorder = record_asm(
            """
        .data
v:      .word 9
        .text
        .ent main, 0
main:   lw $t0, v($gp)
        jr $ra
        .end main
"""
        )
        report = recorder.slice_of_register(register_index("t0"))
        assert report.dynamic_size == 1  # the load itself, no producer


class TestHiLo:
    def test_mult_mflo_dependency(self):
        recorder = record_asm(
            """
        .ent main, 0
main:   li $t0, 6
        li $t1, 7
        mult $t0, $t1
        mflo $t2
        jr $ra
        .end main
"""
        )
        report = recorder.slice_of_register(register_index("t2"))
        assert report.dynamic_size == 4


class TestEndToEnd:
    def test_slice_through_function_call(self):
        recorder = record_minic(
            """
int double_(int x) { return x + x; }
int main() {
    int a = 5;
    int b = double_(a);
    print_int(b);
    return 0;
}
"""
        )
        v0 = recorder.slice_of_register(register_index("a0"))
        assert v0 is not None and v0.dynamic_size >= 3

    def test_external_input_slice(self):
        recorder = record_minic(
            """
int main() {
    int x = read_int();
    int unrelated = 1234;
    print_int(x * 2 + unrelated * 0);
    return 0;
}
""",
            input_data=b"8",
        )
        # The final $a0 slice includes the syscall step (root of external
        # input).
        report = recorder.slice_of_register(register_index("a0"))
        nodes = recorder.nodes(report)
        assert any("syscall" in n.disassembly for n in nodes)

    def test_slice_smaller_than_execution(self):
        recorder = record_minic(
            """
int main() {
    int i; int s = 0; int noise = 0;
    for (i = 0; i < 20; i += 1) {
        s += i;
        noise ^= i * 3;
    }
    print_int(s);
    return 0;
}
"""
        )
        report = recorder.slice_of_register(register_index("a0"))
        assert report.dynamic_size < recorder.recorded_steps

    def test_unknown_step_rejected(self):
        recorder = record_minic("int main() { return 0; }")
        with pytest.raises(KeyError):
            recorder.backward_slice(10**9)
