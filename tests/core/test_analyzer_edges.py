"""Edge-case tests for the slice analyzers: hi/lo propagation, indirect
calls, multiply/divide tagging, and default-tag behaviour."""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.core import GlobalSourceAnalyzer, LocalAnalyzer, RepetitionTracker
from repro.core import global_analysis as ga
from repro.lang import compile_source
from repro.sim import Simulator


def run_asm_with(source, analyzer, input_data=b""):
    Simulator(assemble(source), input_data=input_data, analyzers=[analyzer]).run()
    return analyzer


def run_minic_with(source, analyzer, input_data=b""):
    Simulator(compile_source(source), input_data=input_data, analyzers=[analyzer]).run()
    return analyzer


class TestHiLoPropagation:
    def test_global_analysis_tracks_hilo(self):
        # External value -> mult -> mflo: the mflo result is external.
        source = """
int main() {
    int x = read_int();
    int y = x * 3;
    print_int(y + 1);
    return 0;
}
"""
        analyzer = run_minic_with(source, GlobalSourceAnalyzer(), input_data=b"5")
        assert analyzer.stats["external input"].total > 0

    def test_local_analysis_muldiv_category(self):
        source = """
        .data
v:      .word 6
        .text
        .ent main, 0
main:   lw $t0, v($gp)       # global slice
        li $t1, 7
        mult $t0, $t1        # mixes global x internal -> global
        mflo $t2             # reads hi/lo -> still global slice
        jr $ra
        .end main
"""
        analyzer = run_asm_with(source, LocalAnalyzer())
        # lw + mult + mflo are all on the global slice.
        assert analyzer.stats["global"].total == 3


class TestIndirectCalls:
    SOURCE = """
        .text
        .ent main, 0
main:   addiu $sp, $sp, -8
        sw $ra, 4($sp)
        la $t0, callee
        jalr $t0
        lw $ra, 4($sp)
        addiu $sp, $sp, 8
        jr $ra
        .end main
        .ent callee, 0
callee: li $v0, 3
        jr $ra
        .end callee
"""

    def test_local_analyzer_handles_jalr(self):
        analyzer = run_asm_with(self.SOURCE, LocalAnalyzer())
        # jalr's category comes from its target register's slice; the la
        # produced a text address via lui/ori (not a data address), so it
        # lands in function internals — the key point is no crash and
        # full coverage.
        total = sum(analyzer.stats[c].total for c in analyzer.stats)
        assert total == analyzer.dynamic_total

    def test_return_value_tagged_after_indirect_call(self):
        analyzer = run_asm_with(self.SOURCE, LocalAnalyzer())
        assert analyzer.stats["return"].total == 2  # both jr $ra


class TestDefaultTags:
    def test_load_from_unwritten_stack_slot(self):
        source = """
        .ent main, 0
main:   addiu $sp, $sp, -16
        lw $t0, 8($sp)      # never written: default local tag
        addu $t1, $t0, $t0
        addiu $sp, $sp, 16
        jr $ra
        .end main
"""
        analyzer = run_asm_with(source, LocalAnalyzer())
        # Defaults map to function internals rather than crashing.
        assert analyzer.stats["function internals"].total >= 2

    def test_global_tag_of_sbrk_result_is_internal(self):
        source = """
int main() {
    int *p = (sbrk(16));
    p[0] = 5;
    print_int(p[0]);
    return 0;
}
"""
        analyzer = run_minic_with(source, GlobalSourceAnalyzer())
        # sbrk returns a program-managed constant: no external taint.
        assert analyzer.stats["external input"].total == 0


class TestSupersedePriorities:
    def test_global_priority_order(self):
        assert ga.EXTERNAL > ga.GLOBAL_INIT > ga.INTERNAL > ga.UNINIT

    def test_local_priority_order(self):
        from repro.core import local_analysis as la

        assert la.ARG > la.RETVAL > la.HEAP >= la.GLOBAL > la.GLB_ADDR > la.SP_ADDR > la.INTERNAL

    def test_argument_beats_global_in_merge(self):
        source = """
int scale = 3;
int f(int a) { return a * scale; }   /* arg slice x global slice */
int main() { print_int(f(7)); return 0; }
"""
        tracker = RepetitionTracker()
        analyzer = LocalAnalyzer(tracker)
        Simulator(compile_source(source), analyzers=[tracker, analyzer]).run()
        # The mult mixing ARG and GLOBAL lands in 'arguments'.
        assert analyzer.stats["arguments"].total > 0
