"""Unit and property tests for the paged memory model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.errors import SimError
from repro.sim.memory import PAGE_SIZE, Memory

addresses = st.integers(min_value=0, max_value=2**32 - 4).map(lambda a: a & ~3)
words = st.integers(min_value=0, max_value=2**32 - 1)


class TestWordAccess:
    def test_roundtrip(self):
        memory = Memory()
        memory.write_word(0x1000, 0xDEADBEEF)
        assert memory.read_word(0x1000) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert Memory().read_word(0x12345678 & ~3) == 0

    def test_unaligned_word_rejected(self):
        memory = Memory()
        with pytest.raises(SimError):
            memory.read_word(0x1001)
        with pytest.raises(SimError):
            memory.write_word(0x1002, 1)

    def test_little_endian(self):
        memory = Memory()
        memory.write_word(0, 0x04030201)
        assert [memory.read_byte(i) for i in range(4)] == [1, 2, 3, 4]

    @given(addresses, words)
    def test_word_roundtrip_property(self, address, value):
        memory = Memory()
        memory.write_word(address, value)
        assert memory.read_word(address) == value

    def test_cross_page_neighbours_independent(self):
        memory = Memory()
        memory.write_word(PAGE_SIZE - 4, 0x11111111)
        memory.write_word(PAGE_SIZE, 0x22222222)
        assert memory.read_word(PAGE_SIZE - 4) == 0x11111111
        assert memory.read_word(PAGE_SIZE) == 0x22222222


class TestSubWordAccess:
    def test_half_roundtrip(self):
        memory = Memory()
        memory.write_half(0x2000, 0xBEEF)
        assert memory.read_half(0x2000) == 0xBEEF

    def test_half_alignment(self):
        with pytest.raises(SimError):
            Memory().read_half(0x2001)

    def test_byte_masking(self):
        memory = Memory()
        memory.write_byte(5, 0x1FF)
        assert memory.read_byte(5) == 0xFF

    def test_byte_within_word(self):
        memory = Memory()
        memory.write_word(0, 0xAABBCCDD)
        memory.write_byte(1, 0x00)
        assert memory.read_word(0) == 0xAABB00DD


class TestBulk:
    def test_load_and_read_bytes(self):
        memory = Memory()
        memory.load_bytes(0x3000, b"hello world")
        assert memory.read_bytes(0x3000, 11) == b"hello world"

    def test_load_across_page_boundary(self):
        memory = Memory()
        start = PAGE_SIZE - 3
        memory.load_bytes(start, b"abcdef")
        assert memory.read_bytes(start, 6) == b"abcdef"

    def test_cstring(self):
        memory = Memory()
        memory.load_bytes(0x4000, b"text\0junk")
        assert memory.read_cstring(0x4000) == b"text"

    def test_zero_memory_is_empty_string(self):
        assert Memory().read_cstring(0x5000, limit=8) == b""

    def test_unterminated_cstring_raises(self):
        memory = Memory()
        memory.load_bytes(0x6000, b"x" * 16)
        with pytest.raises(SimError):
            memory.read_cstring(0x6000, limit=8)

    def test_resident_pages(self):
        memory = Memory()
        memory.write_word(0, 1)
        memory.write_word(PAGE_SIZE * 10, 1)
        assert memory.resident_pages == 2
