"""Tests for the syscall layer and input streams."""

from __future__ import annotations

import pytest

from repro.isa.convention import HEAP_BASE, Syscall
from repro.sim.errors import SimError
from repro.sim.memory import Memory
from repro.sim.syscalls import EOF_WORD, InputStream, SyscallHandler


class TestInputStream:
    def test_read_char_sequence(self):
        stream = InputStream(b"ab")
        assert stream.read_char() == ord("a")
        assert stream.read_char() == ord("b")
        assert stream.read_char() == EOF_WORD
        assert stream.exhausted

    def test_read_int_skips_whitespace(self):
        stream = InputStream(b"  42\n 7")
        assert stream.read_int() == 42
        assert stream.read_int() == 7

    def test_read_int_negative(self):
        stream = InputStream(b"-13")
        assert stream.read_int() == (-13) & 0xFFFFFFFF

    def test_read_int_eof(self):
        assert InputStream(b"").read_int() == EOF_WORD
        assert InputStream(b"   ").read_int() == EOF_WORD

    def test_read_int_stops_at_nondigit(self):
        stream = InputStream(b"12abc")
        assert stream.read_int() == 12
        assert stream.read_char() == ord("a")

    def test_mixing_char_and_int_reads(self):
        stream = InputStream(b"x9")
        assert stream.read_char() == ord("x")
        assert stream.read_int() == 9


class TestSyscallHandler:
    def setup_method(self):
        self.memory = Memory()

    def test_print_int(self):
        handler = SyscallHandler()
        handler.handle(Syscall.PRINT_INT, (-5) & 0xFFFFFFFF, self.memory)
        assert handler.output_text() == "-5"

    def test_print_char(self):
        handler = SyscallHandler()
        handler.handle(Syscall.PRINT_CHAR, ord("Q"), self.memory)
        assert handler.output_text() == "Q"

    def test_print_string_reads_memory(self):
        handler = SyscallHandler()
        self.memory.load_bytes(0x1000, b"hey\0")
        handler.handle(Syscall.PRINT_STRING, 0x1000, self.memory)
        assert handler.output_text() == "hey"

    def test_read_services(self):
        handler = SyscallHandler(InputStream(b"9 x"))
        result, halt = handler.handle(Syscall.READ_INT, 0, self.memory)
        assert result == 9 and not halt
        handler.handle(Syscall.READ_CHAR, 0, self.memory)  # consumes ' '
        result, _ = handler.handle(Syscall.READ_CHAR, 0, self.memory)
        assert result == ord("x")

    def test_sbrk_bumps_break(self):
        handler = SyscallHandler()
        first, _ = handler.handle(Syscall.SBRK, 100, self.memory)
        second, _ = handler.handle(Syscall.SBRK, 8, self.memory)
        assert first == HEAP_BASE
        assert second >= first + 100
        assert second % 8 == 0

    def test_exit_halts(self):
        handler = SyscallHandler()
        result, halt = handler.handle(Syscall.EXIT, 3, self.memory)
        assert halt and handler.exited and handler.exit_code == 3

    def test_unknown_service_raises(self):
        with pytest.raises(SimError):
            SyscallHandler().handle(999, 0, self.memory)

    def test_service_classification(self):
        assert Syscall.READ_INT in SyscallHandler.INPUT_SERVICES
        assert Syscall.READ_CHAR in SyscallHandler.INPUT_SERVICES
        assert Syscall.PRINT_INT in SyscallHandler.OUTPUT_SERVICES
        assert Syscall.SBRK not in SyscallHandler.INPUT_SERVICES
