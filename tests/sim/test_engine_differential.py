"""Differential tests locking the two execution engines together.

The predecoded engine is only allowed to exist because it is
observationally identical to the reference interpreter: same
architectural results, same output text, same analyzer event stream,
same report numbers — on every workload.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import SuiteConfig, run_workload
from repro.sim import Analyzer, SimError, Simulator
from repro.workloads import WORKLOAD_ORDER, get_workload

#: Small analysis window so the differential sweep stays quick.
_LIMIT = 8_000


class RecordingAnalyzer(Analyzer):
    """Captures every event as a comparable tuple."""

    def __init__(self) -> None:
        self.events = []

    def on_step(self, record) -> None:
        self.events.append(
            (
                "step",
                record.index,
                record.pc,
                record.instr.op.name,
                record.inputs,
                record.outputs,
                record.dest_reg,
                record.dest_value,
                record.mem_addr,
                record.store_value,
            )
        )

    def on_call(self, event) -> None:
        self.events.append(
            ("call", event.pc, event.target, event.return_addr, event.args, event.depth, event.warmup)
        )

    def on_return(self, event) -> None:
        self.events.append(
            ("return", event.pc, event.target, event.return_value, event.depth, event.warmup)
        )

    def on_syscall(self, event) -> None:
        self.events.append(
            ("syscall", event.pc, event.service, event.arg, event.result, event.warmup)
        )


def _run_recorded(name: str, engine: str, limit=None, skip=0):
    workload = get_workload(name)
    recorder = RecordingAnalyzer()
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[recorder],
        engine=engine,
    )
    run = simulator.run(limit=limit, skip=skip)
    return run, simulator.output, recorder.events


class TestEngineKnob:
    def test_unknown_engine_rejected(self):
        program = get_workload("go").program()
        with pytest.raises(SimError):
            Simulator(program, engine="jit")

    def test_engine_property(self):
        program = get_workload("go").program()
        assert Simulator(program).engine == "predecoded"
        assert Simulator(program, engine="interpreter").engine == "interpreter"


class TestDifferentialReports:
    """Full analyzer stack, both engines, identical reports."""

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_identical_reports(self, name):
        workload = get_workload(name)
        base = {"limit_instructions": _LIMIT}
        fast = run_workload(workload, SuiteConfig(engine="predecoded", **base))
        slow = run_workload(workload, SuiteConfig(engine="interpreter", **base))
        assert fast.run == slow.run
        assert fast.run.output == slow.run.output
        assert fast.repetition == slow.repetition
        assert fast.global_analysis == slow.global_analysis
        assert fast.function_analysis == slow.function_analysis
        assert fast.local_analysis == slow.local_analysis
        assert fast.reuse == slow.reuse
        assert fast.value_profile == slow.value_profile
        assert fast.trace_reuse == slow.trace_reuse


class TestDifferentialEventStream:
    """Event-by-event identity, including warm-up windows."""

    @pytest.mark.parametrize("name", ("m88ksim", "compress"))
    def test_identical_event_stream(self, name):
        fast = _run_recorded(name, "predecoded", limit=_LIMIT)
        slow = _run_recorded(name, "interpreter", limit=_LIMIT)
        assert fast[0] == slow[0]  # RunResult
        assert fast[1] == slow[1]  # output text
        assert fast[2] == slow[2]  # event stream

    @pytest.mark.parametrize("name", ("go", "li"))
    def test_identical_with_warmup_skip(self, name):
        fast = _run_recorded(name, "predecoded", limit=4_000, skip=1_000)
        slow = _run_recorded(name, "interpreter", limit=4_000, skip=1_000)
        assert fast[0] == slow[0]
        assert fast[1] == slow[1]
        assert fast[2] == slow[2]
        # The warm-up window delivers no step records under either engine.
        warmup_steps = [e for e in fast[2] if e[0] == "step" and e[1] <= 0]
        assert not warmup_steps

    def test_run_to_completion_identical(self):
        fast = _run_recorded("compress", "predecoded")
        slow = _run_recorded("compress", "interpreter")
        assert fast[0] == slow[0]
        assert fast[0].stop_reason in ("exit", "halt")
        assert fast[1] == slow[1]
        assert fast[2] == slow[2]

    def test_no_analyzer_run_identical(self):
        workload = get_workload("m88ksim")
        results = []
        for engine in ("predecoded", "interpreter"):
            simulator = Simulator(
                workload.program(),
                input_data=workload.primary_input(1),
                engine=engine,
            )
            run = simulator.run(limit=_LIMIT)
            results.append((run, simulator.output, simulator.pc, simulator.regs))
        assert results[0] == results[1]
