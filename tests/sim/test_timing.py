"""Tests for the trace-driven timing model."""

from __future__ import annotations

import pytest

from repro.core import ReuseBuffer
from repro.lang import compile_source
from repro.sim import Simulator, TimingConfig, TimingModel
from repro.sim.timing import _BranchPredictor, _Cache

from tests.helpers import make_step

PC = 0x0040_0000


class TestCache:
    def test_first_touch_misses_then_hits(self):
        cache = _Cache(lines=8, assoc=2, line_bytes=16)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x100C)  # same 16-byte line

    def test_distinct_lines(self):
        cache = _Cache(lines=8, assoc=2, line_bytes=16)
        cache.access(0x1000)
        assert not cache.access(0x1010)

    def test_lru_eviction(self):
        cache = _Cache(lines=2, assoc=2, line_bytes=16)  # one set, 2 ways
        cache.access(0x0000)
        cache.access(0x0040)  # conflicting set? one set => any line maps here
        cache.access(0x0080)  # evicts 0x0000
        assert not cache.access(0x0000)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            _Cache(lines=10, assoc=4, line_bytes=16)

    def test_miss_rate(self):
        cache = _Cache(lines=8, assoc=2, line_bytes=16)
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.miss_rate_pct == pytest.approx(50.0)


class TestBranchPredictor:
    def test_learns_always_taken(self):
        predictor = _BranchPredictor(16)
        results = [predictor.predict_and_update(PC, True) for _ in range(10)]
        # Initial weakly-not-taken state mispredicts briefly, then locks on.
        assert not results[0]
        assert all(results[2:])

    def test_learns_never_taken(self):
        predictor = _BranchPredictor(16)
        results = [predictor.predict_and_update(PC, False) for _ in range(5)]
        assert all(results)  # weakly not-taken predicts correctly at once

    def test_alternating_pattern_hurts(self):
        predictor = _BranchPredictor(16)
        for i in range(20):
            predictor.predict_and_update(PC, i % 2 == 0)
        assert predictor.mispredict_rate_pct > 25.0


class TestCycleAccounting:
    def _run(self, steps, config=TimingConfig(), reuse=None):
        model = TimingModel(config, reuse)
        for step in steps:
            model.on_step(step)
        return model.report()

    def test_straightline_alu_cpi_near_one(self):
        # Same I-cache line, plain ALU ops: 1 cycle each after the fetch miss.
        steps = [
            make_step(pc=PC, op="addu", inputs=(i, 1), outputs=(i + 1,))
            for i in range(50)
        ]
        report = self._run(steps)
        assert report.cycles == 50 + TimingConfig().cache_miss_penalty

    def test_mult_and_div_latency(self):
        config = TimingConfig()
        steps = [
            make_step(pc=PC, op="mult", inputs=(2, 3), outputs=(0, 6)),
            make_step(pc=PC, op="div", inputs=(7, 2), outputs=(1, 3)),
        ]
        report = self._run(steps)
        expected = 2 + config.mult_latency + config.div_latency + config.cache_miss_penalty
        assert report.cycles == expected

    def test_load_miss_penalty(self):
        config = TimingConfig()
        steps = [
            make_step(pc=PC, op="lw", inputs=(0,), outputs=(1,), mem_addr=0x1000_0000,
                      dest_reg=8, dest_value=1),
            make_step(pc=PC, op="lw", inputs=(0,), outputs=(1,), mem_addr=0x1000_0000,
                      dest_reg=8, dest_value=1),
        ]
        report = self._run(steps)
        # One I-miss + one D-miss, second load hits both caches.
        assert report.cycles == 2 + 2 * config.cache_miss_penalty

    def test_syscall_cost(self):
        config = TimingConfig()
        report = self._run([make_step(pc=PC, op="syscall", inputs=(1, 5), outputs=())])
        assert report.cycles == 1 + config.syscall_cost + config.cache_miss_penalty


class TestReuseIntegration:
    def test_reused_instruction_skips_stalls(self):
        config = TimingConfig()
        buffer = ReuseBuffer(entries=16, associativity=4)
        model = TimingModel(config, reuse_provider=buffer.was_reused)
        first = make_step(pc=PC, op="div", inputs=(6, 3), outputs=(0, 2))
        second = make_step(pc=PC, op="div", inputs=(6, 3), outputs=(0, 2))
        for step in (first, second):
            buffer.on_step(step)
            model.on_step(step)
        report = model.report()
        # First div pays the latency; the reused one is a single cycle.
        assert report.reused_instructions == 1
        assert report.cycles == (1 + config.cache_miss_penalty + config.div_latency) + 1

    def test_reuse_speedup_end_to_end(self):
        # The divider instance count (4 distinct inputs) fits inside one
        # 4-way reuse set, so the 11-cycle divides become reuse hits —
        # with 16+ distinct instances the PC-indexed set would thrash and
        # reuse would capture nothing (the scheme's real limitation).
        source = """
int table[4];
int lookup(int i) { return table[i & 3] / 3; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 4; i += 1) { table[i] = (i + 2) * 100; }
    for (i = 0; i < 300; i += 1) { s += lookup(i); }
    print_int(s);
    return 0;
}
"""
        program = compile_source(source)

        base_model = TimingModel()
        Simulator(program, analyzers=[base_model]).run()
        baseline = base_model.report()

        buffer = ReuseBuffer()
        reuse_model = TimingModel(reuse_provider=buffer.was_reused)
        Simulator(program, analyzers=[buffer, reuse_model]).run()
        with_reuse = reuse_model.report()

        assert with_reuse.instructions == baseline.instructions
        assert with_reuse.cycles < baseline.cycles
        assert with_reuse.speedup_over(baseline) > 1.0

    def test_out_of_order_reuse_query_rejected(self):
        buffer = ReuseBuffer(entries=16, associativity=4)
        first = make_step(pc=PC, op="addu", inputs=(1, 2), outputs=(3,))
        second = make_step(pc=PC, op="addu", inputs=(1, 2), outputs=(3,))
        buffer.on_step(first)
        buffer.on_step(second)
        with pytest.raises(RuntimeError):
            buffer.was_reused(first)


class TestEndToEnd:
    def test_workload_cpi_plausible(self):
        from repro.workloads import get_workload

        workload = get_workload("m88ksim")
        model = TimingModel()
        Simulator(
            workload.program(), input_data=workload.primary_input(1), analyzers=[model]
        ).run(limit=30_000)
        report = model.report()
        assert 1.0 <= report.cpi < 5.0
        assert 0.0 <= report.branch_mispredict_rate_pct < 50.0
        assert report.icache_miss_rate_pct < 5.0  # tiny hot kernels
