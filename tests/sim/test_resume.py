"""Tests pinning down ``Simulator.resume(additional_limit=...)`` semantics.

The seed implementation computed ``(self._limit or self._analyzed) +
additional_limit``, which silently re-anchored the window at the analyzed
count whenever the original run was unlimited *or* had ``limit=0``.  The
semantics are now explicit: a limited run extends its limit; an unlimited
run anchors at the analyzed count and becomes limited.
"""

from __future__ import annotations

import pytest

from repro.sim import Analyzer, SimError, Simulator
from repro.workloads import get_workload

ENGINES = ("predecoded", "interpreter")


class PauseAt(Analyzer):
    """Requests a pause after the Nth analyzed instruction."""

    def __init__(self, step_index: int) -> None:
        self.step_index = step_index
        self.simulator = None

    def on_step(self, record) -> None:
        if record.index == self.step_index:
            self.simulator.request_pause()


def _paused_simulator(engine: str, pause_at: int, limit=None):
    workload = get_workload("m88ksim")
    hook = PauseAt(pause_at)
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[hook],
        engine=engine,
    )
    hook.simulator = simulator
    result = simulator.run(limit=limit)
    assert result.stop_reason == "paused"
    assert result.analyzed_instructions == pause_at
    assert simulator.paused
    return simulator


@pytest.mark.parametrize("engine", ENGINES)
class TestResumeSemantics:
    def test_unlimited_run_anchors_at_analyzed_count(self, engine):
        simulator = _paused_simulator(engine, pause_at=50)
        result = simulator.resume(additional_limit=30)
        # limit=None anchors at the 50 analyzed so far: exactly 30 more.
        assert result.analyzed_instructions == 80
        assert result.stop_reason == "limit"

    def test_limited_run_extends_original_limit(self, engine):
        simulator = _paused_simulator(engine, pause_at=50, limit=60)
        result = simulator.resume(additional_limit=40)
        # Extends the explicit limit: 60 + 40, not 50 + 40.
        assert result.analyzed_instructions == 100
        assert result.stop_reason == "limit"

    def test_limit_zero_is_not_treated_as_unlimited(self, engine):
        # The seed's `self._limit or self._analyzed` collapsed limit=0 to
        # the analyzed count.  A paused run can't have limit=0 (it stops
        # immediately), so pin the falsy-limit case at the run() boundary.
        workload = get_workload("m88ksim")
        simulator = Simulator(
            workload.program(),
            input_data=workload.primary_input(1),
            engine=engine,
        )
        result = simulator.run(limit=0)
        assert result.stop_reason == "limit"
        assert result.analyzed_instructions == 0

    def test_resume_without_additional_limit_continues_window(self, engine):
        simulator = _paused_simulator(engine, pause_at=25, limit=70)
        result = simulator.resume()
        assert result.analyzed_instructions == 70
        assert result.stop_reason == "limit"

    def test_resume_unlimited_runs_to_completion(self, engine):
        simulator = _paused_simulator(engine, pause_at=25)
        result = simulator.resume()
        assert result.stop_reason in ("exit", "halt")
        assert result.analyzed_instructions > 25

    def test_repeated_resume_keeps_extending(self, engine):
        simulator = _paused_simulator(engine, pause_at=10)
        first = simulator.resume(additional_limit=5)
        assert first.analyzed_instructions == 15
        assert first.stop_reason == "limit"
        # A limit-stop is not a pause; extending further requires resume
        # from a paused state only — limit stops end the run.
        with pytest.raises(SimError):
            simulator.resume(additional_limit=5)

    def test_resume_requires_pause(self, engine):
        workload = get_workload("compress")
        simulator = Simulator(
            workload.program(),
            input_data=workload.primary_input(1),
            engine=engine,
        )
        with pytest.raises(SimError):
            simulator.resume()
