"""Execution tests for the functional simulator.

Each opcode's semantics are exercised with a tiny assembly program that
prints its result, and the event stream (steps, calls, returns,
syscalls) is checked with a recording analyzer.
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.sim import Analyzer, SimError, Simulator

from tests.helpers import run_asm


def asm_result(body: str, input_data: bytes = b"", data: str = "") -> str:
    """Run a main() that ends by falling back to the halt sentinel."""
    source = f"""
        .data
{data}
        .text
        .ent main, 0
main:
{body}
        jr $ra
        .end main
"""
    return run_asm(source, input_data).output


def print_reg(reg: str) -> str:
    return f"move $a0, {reg}\n li $v0, 1\n syscall\n"


class TestAluSemantics:
    @pytest.mark.parametrize(
        "body,expected",
        [
            ("li $t0, 7\n li $t1, 5\n addu $t2, $t0, $t1\n" + print_reg("$t2"), "12"),
            ("li $t0, 7\n li $t1, 5\n subu $t2, $t1, $t0\n" + print_reg("$t2"), "-2"),
            ("li $t0, 12\n li $t1, 10\n and $t2, $t0, $t1\n" + print_reg("$t2"), "8"),
            ("li $t0, 12\n li $t1, 10\n or $t2, $t0, $t1\n" + print_reg("$t2"), "14"),
            ("li $t0, 12\n li $t1, 10\n xor $t2, $t0, $t1\n" + print_reg("$t2"), "6"),
            ("li $t0, 0\n li $t1, 0\n nor $t2, $t0, $t1\n" + print_reg("$t2"), "-1"),
            ("li $t0, -3\n li $t1, 2\n slt $t2, $t0, $t1\n" + print_reg("$t2"), "1"),
            ("li $t0, -3\n li $t1, 2\n sltu $t2, $t0, $t1\n" + print_reg("$t2"), "0"),
            ("li $t0, 5\n addiu $t1, $t0, -7\n" + print_reg("$t1"), "-2"),
            ("li $t0, 5\n andi $t1, $t0, 3\n" + print_reg("$t1"), "1"),
            ("li $t0, 5\n ori $t1, $t0, 8\n" + print_reg("$t1"), "13"),
            ("li $t0, 5\n xori $t1, $t0, 1\n" + print_reg("$t1"), "4"),
            ("li $t0, -1\n slti $t1, $t0, 0\n" + print_reg("$t1"), "1"),
            ("li $t0, -1\n sltiu $t1, $t0, 10\n" + print_reg("$t1"), "0"),
            ("lui $t0, 2\n" + print_reg("$t0"), str(2 << 16)),
        ],
    )
    def test_alu(self, body, expected):
        assert asm_result(body) == expected

    @pytest.mark.parametrize(
        "body,expected",
        [
            ("li $t0, 3\n sll $t1, $t0, 4\n" + print_reg("$t1"), "48"),
            ("li $t0, -16\n srl $t1, $t0, 28\n" + print_reg("$t1"), "15"),
            ("li $t0, -16\n sra $t1, $t0, 2\n" + print_reg("$t1"), "-4"),
            ("li $t0, 3\n li $t2, 4\n sllv $t1, $t0, $t2\n" + print_reg("$t1"), "48"),
            ("li $t0, -16\n li $t2, 2\n srav $t1, $t0, $t2\n" + print_reg("$t1"), "-4"),
            ("li $t0, 16\n li $t2, 2\n srlv $t1, $t0, $t2\n" + print_reg("$t1"), "4"),
        ],
    )
    def test_shifts(self, body, expected):
        assert asm_result(body) == expected

    def test_writes_to_zero_discarded(self):
        assert asm_result("li $t0, 9\n addu $zero, $t0, $t0\n" + print_reg("$zero")) == "0"


class TestMulDiv:
    def test_mult_mflo_mfhi(self):
        body = (
            "li $t0, 100000\n li $t1, 100000\n mult $t0, $t1\n"
            "mflo $t2\n mfhi $t3\n" + print_reg("$t2") + print_reg("$t3")
        )
        product = 100000 * 100000
        lo = product & 0xFFFFFFFF
        lo_signed = lo - (1 << 32) if lo & (1 << 31) else lo
        assert asm_result(body) == f"{lo_signed}{product >> 32}"

    def test_div_quotient_remainder(self):
        body = (
            "li $t0, -17\n li $t1, 5\n div $t0, $t1\n"
            "mflo $t2\n mfhi $t3\n" + print_reg("$t2") + print_reg("$t3")
        )
        assert asm_result(body) == "-3-2"

    def test_divu(self):
        body = (
            "li $t0, 17\n li $t1, 5\n divu $t0, $t1\n"
            "mflo $t2\n mfhi $t3\n" + print_reg("$t2") + print_reg("$t3")
        )
        assert asm_result(body) == "32"


class TestMemoryOps:
    def test_word_store_load(self):
        body = (
            "la $t0, buf\n li $t1, 123456\n sw $t1, 0($t0)\n"
            "lw $t2, 0($t0)\n" + print_reg("$t2")
        )
        assert asm_result(body, data="buf: .space 16") == "123456"

    def test_signed_byte_load(self):
        body = (
            "la $t0, buf\n li $t1, 0xFF\n sb $t1, 0($t0)\n"
            "lb $t2, 0($t0)\n lbu $t3, 0($t0)\n" + print_reg("$t2") + print_reg("$t3")
        )
        assert asm_result(body, data="buf: .space 4") == "-1255"

    def test_signed_half_load(self):
        body = (
            "la $t0, buf\n li $t1, 0x8000\n sh $t1, 0($t0)\n"
            "lh $t2, 0($t0)\n lhu $t3, 0($t0)\n" + print_reg("$t2") + print_reg("$t3")
        )
        assert asm_result(body, data="buf: .space 4") == "-3276832768"

    def test_data_segment_preloaded(self):
        assert asm_result(
            "la $t0, val\n lw $t1, 0($t0)\n" + print_reg("$t1"), data="val: .word 77"
        ) == "77"

    def test_unaligned_load_faults(self):
        with pytest.raises(SimError):
            asm_result("la $t0, buf\n lw $t1, 1($t0)", data="buf: .space 8")


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        body = """
        li $t0, 1
        beq $t0, $zero, skip
        li $t1, 5
        b done
skip:   li $t1, 9
done:
""" + print_reg("$t1")
        assert asm_result(body) == "5"

    @pytest.mark.parametrize(
        "value,op,expected",
        [
            (0, "blez", "1"),
            (1, "blez", "0"),
            (1, "bgtz", "1"),
            (-1, "bgtz", "0"),
            (-1, "bltz", "1"),
            (0, "bltz", "0"),
            (0, "bgez", "1"),
            (-1, "bgez", "0"),
        ],
    )
    def test_single_register_branches(self, value, op, expected):
        body = f"""
        li $t0, {value}
        li $t1, 0
        {op} $t0, yes
        b done
yes:    li $t1, 1
done:
""" + print_reg("$t1")
        assert asm_result(body) == expected

    def test_jump(self):
        body = """
        j over
        li $t0, 1
over:   li $t0, 2
""" + print_reg("$t0")
        assert asm_result(body) == "2"

    def test_jalr_calls_through_register(self):
        source = """
        .text
        .ent main, 0
main:   addiu $sp, $sp, -8
        sw $ra, 4($sp)
        la $t0, target
        jalr $t0
        move $a0, $v0
        li $v0, 1
        syscall
        lw $ra, 4($sp)
        addiu $sp, $sp, 8
        jr $ra
        .end main
        .ent target, 0
target: li $v0, 31
        jr $ra
        .end target
"""
        assert run_asm(source).output == "31"


class _Recorder(Analyzer):
    def __init__(self):
        self.steps = []
        self.calls = []
        self.returns = []
        self.syscalls = []

    def on_step(self, record):
        self.steps.append(record)

    def on_call(self, event):
        self.calls.append(event)

    def on_return(self, event):
        self.returns.append(event)

    def on_syscall(self, event):
        self.syscalls.append(event)


CALL_PROGRAM = """
        .text
        .ent main, 0
main:   addiu $sp, $sp, -8
        sw $ra, 4($sp)
        li $a0, 4
        li $a1, 9
        jal add2
        lw $ra, 4($sp)
        addiu $sp, $sp, 8
        jr $ra
        .end main
        .ent add2, 2
add2:   addu $v0, $a0, $a1
        jr $ra
        .end add2
"""


class TestEventStream:
    def test_call_and_return_events(self):
        recorder = _Recorder()
        program = assemble(CALL_PROGRAM)
        Simulator(program, analyzers=[recorder]).run()
        # Synthetic entry call for main + the real call to add2.
        assert [c.function.name for c in recorder.calls] == ["main", "add2"]
        add2_call = recorder.calls[1]
        assert add2_call.args == (4, 9)
        assert add2_call.depth == 2
        assert [r.function.name for r in recorder.returns] == ["add2", "main"]
        assert recorder.returns[0].return_value == 13

    def test_step_records_are_sequential(self):
        recorder = _Recorder()
        Simulator(assemble(CALL_PROGRAM), analyzers=[recorder]).run()
        indices = [s.index for s in recorder.steps]
        assert indices == list(range(1, len(indices) + 1))

    def test_load_record_fields(self):
        recorder = _Recorder()
        source = """
        .data
v:      .word 55
        .text
        .ent main, 0
main:   la $t0, v
        lw $t1, 0($t0)
        jr $ra
        .end main
"""
        Simulator(assemble(source), analyzers=[recorder]).run()
        load = next(s for s in recorder.steps if s.instr.is_load)
        assert load.outputs == (55,)
        assert load.dest_value == 55
        assert load.mem_addr is not None

    def test_store_record_fields(self):
        recorder = _Recorder()
        source = """
        .data
v:      .space 4
        .text
        .ent main, 0
main:   la $t0, v
        li $t1, 7
        sw $t1, 0($t0)
        jr $ra
        .end main
"""
        Simulator(assemble(source), analyzers=[recorder]).run()
        store = next(s for s in recorder.steps if s.instr.is_store)
        assert store.store_value == 7
        assert store.inputs[0] == 7

    def test_branch_outputs_taken_flag(self):
        recorder = _Recorder()
        source = """
        .ent main, 0
main:   li $t0, 1
        bne $t0, $zero, over
        nop
over:   beq $t0, $zero, out
out:    jr $ra
        .end main
"""
        Simulator(assemble(source), analyzers=[recorder]).run()
        branches = [s for s in recorder.steps if s.instr.op.kind == "branch"]
        assert branches[0].outputs == (1,)
        assert branches[1].outputs == (0,)

    def test_syscall_events(self):
        recorder = _Recorder()
        source = """
        .ent main, 0
main:   li $v0, 12
        syscall
        move $a0, $v0
        li $v0, 11
        syscall
        jr $ra
        .end main
"""
        result = Simulator(assemble(source), b"Z", analyzers=[recorder]).run()
        assert result.output == "Z"
        kinds = [(e.is_input, e.is_output) for e in recorder.syscalls]
        assert kinds == [(True, False), (False, True)]


class TestRunControl:
    def test_limit_stops_execution(self):
        source = """
        .ent main, 0
main:   b main
        .end main
"""
        result = Simulator(assemble(source)).run(limit=100)
        assert result.stop_reason == "limit"
        assert result.analyzed_instructions == 100

    def test_skip_delivers_no_early_steps(self):
        recorder = _Recorder()
        source = """
        .ent main, 0
main:   li $t0, 0
loop:   addiu $t0, $t0, 1
        blt $t0, 50, loop
        jr $ra
        .end main
"""
        result = Simulator(assemble(source), analyzers=[recorder]).run(skip=20)
        assert result.total_instructions == result.analyzed_instructions + 20
        assert recorder.steps[0].index == 1  # indices restart after warm-up

    def test_warmup_events_flagged(self):
        recorder = _Recorder()
        Simulator(assemble(CALL_PROGRAM), analyzers=[recorder]).run(skip=4)
        assert recorder.calls[0].warmup  # entry call happens during warm-up
        assert not recorder.calls[-1].warmup

    def test_exit_syscall(self):
        source = """
        .ent main, 0
main:   li $a0, 7
        li $v0, 10
        syscall
        .end main
"""
        result = Simulator(assemble(source)).run()
        assert result.stop_reason == "exit"
        assert result.exit_code == 7

    def test_fall_off_main_halts(self):
        result = Simulator(assemble(".ent main, 0\nmain: jr $ra\n.end main")).run()
        assert result.stop_reason == "halt"

    def test_pc_out_of_text_faults(self):
        source = """
        .ent main, 0
main:   li $t0, 0x00400100
        jr $t0
        .end main
"""
        with pytest.raises(SimError):
            Simulator(assemble(source)).run()

    def test_run_twice_rejected(self):
        simulator = Simulator(assemble(".ent main, 0\nmain: jr $ra\n.end main"))
        simulator.run()
        with pytest.raises(SimError):
            simulator.run()

    def test_attach_after_run_rejected(self):
        simulator = Simulator(assemble(".ent main, 0\nmain: jr $ra\n.end main"))
        simulator.run()
        with pytest.raises(SimError):
            simulator.attach(_Recorder())
