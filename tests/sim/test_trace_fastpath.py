"""Differential tests for the trace memoization fast path.

The fast path is only allowed to exist because it is invisible: with
trace reuse enabled, both engines must finish every workload in exactly
the architectural state they reach without it — same registers, hi/lo,
memory image, pc, output, and RunResult — across warm-up and limit
boundaries, cold and pre-warmed tables alike.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.sim import Simulator
from repro.traces import TraceReuseConfig, TraceReuseState
from repro.workloads import WORKLOAD_ORDER, get_workload

_LIMIT = 8_000

ENGINES = ("predecoded", "interpreter")


def _memory_digest(memory) -> str:
    digest = hashlib.sha256()
    for index in sorted(memory._pages):
        page = memory._pages[index]
        if not any(page):
            continue
        digest.update(index.to_bytes(8, "little"))
        digest.update(page)
    return digest.hexdigest()


def _run(name, engine, trace_reuse=None, limit=_LIMIT, skip=0, scale=1):
    workload = get_workload(name)
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(scale),
        engine=engine,
        trace_reuse=trace_reuse,
    )
    run = simulator.run(limit=limit, skip=skip)
    state = (
        run,
        simulator.output,
        simulator.pc,
        tuple(simulator.regs),
        simulator.hi,
        simulator.lo,
        _memory_digest(simulator.memory),
    )
    return state, simulator


class TestArchitecturalIdentity:
    """Trace-on must equal trace-off, per workload, per engine."""

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_identical_final_state(self, name, engine):
        baseline, _ = _run(name, engine)
        traced, _ = _run(name, engine, trace_reuse=TraceReuseConfig())
        assert traced == baseline

    @pytest.mark.parametrize("name", ("go", "li"))
    @pytest.mark.parametrize("engine", ENGINES)
    def test_identical_with_warmup_skip(self, name, engine):
        baseline, _ = _run(name, engine, limit=4_000, skip=1_000)
        traced, _ = _run(name, engine, trace_reuse=TraceReuseConfig(), limit=4_000, skip=1_000)
        assert traced == baseline

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_to_completion_identical(self, engine):
        baseline, _ = _run("compress", engine, limit=None)
        traced, _ = _run("compress", engine, trace_reuse=TraceReuseConfig(), limit=None)
        assert traced == baseline
        assert traced[0].stop_reason in ("exit", "halt")


class TestWindowBoundaries:
    """Replay must never overshoot a warm-up or limit boundary."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("limit", (1, 7, 100, 1_000))
    @pytest.mark.parametrize("skip", (0, 1, 13))
    def test_exact_instruction_windows(self, engine, limit, skip):
        baseline, _ = _run("m88ksim", engine, limit=limit, skip=skip)
        traced, _ = _run(
            "m88ksim", engine, trace_reuse=TraceReuseConfig(), limit=limit, skip=skip
        )
        assert traced == baseline
        assert traced[0].analyzed_instructions == baseline[0].analyzed_instructions


class TestSharedState:
    """A table pre-warmed by one run replays in the next, still exactly."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_warm_table_hits_and_stays_identical(self, engine):
        baseline, _ = _run("go", engine)
        state = TraceReuseState()
        _run("go", engine, trace_reuse=state)
        warm, warm_sim = _run("go", engine, trace_reuse=state)
        assert warm == baseline
        assert warm_sim._trace_engine.hits > 0
        assert warm_sim._trace_engine.replayed_instructions > 0

    def test_engines_share_statistics(self):
        """Both engines drive the same anchors to the same decisions."""
        stats = []
        for engine in ENGINES:
            # A window long enough for the cold table to start paying off.
            _, simulator = _run(
                "go", engine, trace_reuse=TraceReuseConfig(), limit=20_000
            )
            trace_engine = simulator._trace_engine
            stats.append(
                (
                    trace_engine.hits,
                    trace_engine.replayed_instructions,
                    trace_engine.recordings,
                    trace_engine.installs,
                    dict(trace_engine.rejections),
                    trace_engine.bans,
                )
            )
        assert stats[0] == stats[1]
        assert stats[0][0] > 0  # the fast path actually fired


class TestMetrics:
    def test_exec_metrics_published(self, metrics_enabled):
        _, simulator = _run("go", "predecoded", trace_reuse=TraceReuseConfig())
        trace_engine = simulator._trace_engine
        assert metrics_enabled.value("trace.exec.hits") == trace_engine.hits
        assert (
            metrics_enabled.value("trace.exec.replayed_instructions")
            == trace_engine.replayed_instructions
        )
        assert metrics_enabled.value("trace.exec.recordings") == trace_engine.recordings
        assert metrics_enabled.value("trace.exec.installs") == trace_engine.installs

    def test_no_trace_reuse_no_trace_metrics(self, metrics_enabled):
        _run("go", "predecoded")
        assert metrics_enabled.value("trace.exec.hits") == 0
        assert metrics_enabled.value("trace.exec.recordings") == 0
