"""Tests for the debugger (breakpoints, watchpoints, stepping)."""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.sim import SimError
from repro.sim.debug import Debugger

SOURCE = """
int total = 0;

int accumulate(int x) {
    total += x;
    return total;
}

int main() {
    int i;
    for (i = 1; i <= 5; i++) {
        accumulate(i);
    }
    print_int(total);
    return 0;
}
"""


def make_debugger(source=SOURCE, input_data=b""):
    return Debugger(compile_source(source), input_data=input_data)


class TestBreakpoints:
    def test_break_at_function_entry(self):
        debugger = make_debugger()
        debugger.add_breakpoint("accumulate")
        stop = debugger.run()
        assert stop.reason == "breakpoint"
        assert debugger.current_function() == "accumulate"

    def test_hit_count_over_loop(self):
        debugger = make_debugger()
        debugger.add_breakpoint("accumulate")
        hits = 0
        stop = debugger.run()
        while stop.reason == "breakpoint":
            hits += 1
            stop = debugger.cont()
        assert hits == 5
        assert stop.reason == "halt"

    def test_argument_values_at_stop(self):
        debugger = make_debugger()
        debugger.add_breakpoint("accumulate")
        values = []
        stop = debugger.run()
        while stop.reason == "breakpoint":
            values.append(debugger.read_register("$a0"))
            stop = debugger.cont()
        assert values == [1, 2, 3, 4, 5]

    def test_remove_breakpoint(self):
        debugger = make_debugger()
        debugger.add_breakpoint("accumulate")
        stop = debugger.run()
        assert stop.reason == "breakpoint"
        debugger.remove_breakpoint("accumulate")
        stop = debugger.cont()
        assert stop.reason == "halt"

    def test_unknown_symbol(self):
        debugger = make_debugger()
        with pytest.raises(KeyError):
            debugger.add_breakpoint("nosuch")


class TestWatchpoints:
    def test_watch_global_writes(self):
        debugger = make_debugger()
        debugger.add_watchpoint("total")
        hits = 0
        stop = debugger.run()
        while stop.reason == "watchpoint":
            hits += 1
            stop = debugger.cont()
        # total is stored 5x and loaded several times (loads count too).
        assert hits >= 5
        assert stop.reason == "halt"

    def test_watch_reports_address(self):
        debugger = make_debugger()
        watched = debugger.add_watchpoint("total")
        stop = debugger.run()
        assert stop.reason == "watchpoint"
        assert stop.address == watched


class TestStepping:
    def test_single_step(self):
        debugger = make_debugger()
        stop = debugger.step()
        assert stop.reason == "step"
        assert stop.instructions == 1

    def test_multi_step(self):
        debugger = make_debugger()
        stop = debugger.step(10)
        assert stop.reason == "step"
        assert stop.instructions == 10
        stop = debugger.step(5)
        assert stop.instructions == 15

    def test_step_then_continue_to_end(self):
        debugger = make_debugger()
        debugger.step(3)
        stop = debugger.cont()
        assert stop.reason == "halt"
        assert stop.output == "15"


class TestInspection:
    def test_read_memory_by_symbol(self):
        debugger = make_debugger()
        debugger.add_breakpoint("main")
        debugger.run()
        assert debugger.read_word("total") == 0
        stop = debugger.cont()
        assert stop.reason == "halt"
        assert debugger.read_word("total") == 15

    def test_backtrace(self):
        debugger = make_debugger()
        debugger.add_breakpoint("accumulate")
        debugger.run()
        assert debugger.backtrace() == ["main", "accumulate"]

    def test_finished_guard(self):
        debugger = make_debugger()
        stop = debugger.run()
        assert stop.reason == "halt"
        assert debugger.finished
        with pytest.raises(SimError):
            debugger.run()

    def test_output_accumulates_in_stops(self):
        debugger = make_debugger()
        stop = debugger.run()
        assert stop.output == "15"
