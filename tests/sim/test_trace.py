"""Tests for trace recording, replay, and serialization."""

from __future__ import annotations

import io

import pytest

from repro.core import FunctionAnalyzer, RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator, Trace, TraceRecorder

SOURCE = """
int table[4] = {2, 4, 6, 8};

int pick(int i) { return table[i & 3]; }

int main() {
    int i; int s = 0;
    for (i = 0; i < 25; i += 1) { s += pick(i); }
    print_int(s);
    return 0;
}
"""


def record(source=SOURCE, input_data=b""):
    program = compile_source(source)
    recorder = TraceRecorder()
    result = Simulator(program, input_data=input_data, analyzers=[recorder]).run()
    return recorder.trace(), program, result


class TestRecording:
    def test_records_all_steps(self):
        trace, _, result = record()
        assert trace.step_count == result.analyzed_instructions

    def test_records_structural_events(self):
        from repro.sim.events import CallEvent, ReturnEvent, SyscallEvent

        trace, _, _ = record()
        kinds = {type(e) for e in trace.events}
        assert CallEvent in kinds and ReturnEvent in kinds and SyscallEvent in kinds

    def test_unattached_recorder_rejects_trace(self):
        with pytest.raises(RuntimeError):
            TraceRecorder().trace()


class TestReplay:
    def test_replay_matches_live_analysis(self):
        trace, program, _ = record()
        live = RepetitionTracker()
        Simulator(compile_source(SOURCE), analyzers=[live]).run()

        replayed = RepetitionTracker()
        trace.replay([replayed])

        assert replayed.dynamic_total == live.dynamic_total
        assert replayed.dynamic_repeated == live.dynamic_repeated
        assert replayed.report().unique_repeatable_instances == (
            live.report().unique_repeatable_instances
        )

    def test_replay_function_analysis(self):
        trace, _, _ = record()
        analyzer = FunctionAnalyzer()
        trace.replay([analyzer])
        report = analyzer.report()
        assert report.per_function["pick"].calls == 25

    def test_replay_is_repeatable(self):
        trace, _, _ = record()
        first = RepetitionTracker()
        second = RepetitionTracker()
        trace.replay([first])
        trace.replay([second])
        assert first.dynamic_repeated == second.dynamic_repeated


class TestSerialization:
    def test_save_load_roundtrip(self):
        trace, program, _ = record()
        buffer = io.BytesIO()
        trace.save(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer, program)
        assert len(loaded) == len(trace)

        original = RepetitionTracker()
        recovered = RepetitionTracker()
        trace.replay([original])
        loaded.replay([recovered])
        assert original.dynamic_repeated == recovered.dynamic_repeated
        assert original.dynamic_total == recovered.dynamic_total

    def test_roundtrip_preserves_step_fields(self):
        trace, program, _ = record()
        buffer = io.BytesIO()
        trace.save(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer, program)
        from repro.sim.events import StepRecord

        original_steps = [e for e in trace.events if isinstance(e, StepRecord)]
        loaded_steps = [e for e in loaded.events if isinstance(e, StepRecord)]
        for a, b in zip(original_steps, loaded_steps):
            assert (a.pc, a.inputs, a.outputs, a.dest_reg, a.mem_addr) == (
                b.pc,
                b.inputs,
                b.outputs,
                b.dest_reg,
                b.mem_addr,
            )

    def test_wrong_program_rejected(self):
        trace, _, _ = record()
        other = compile_source("int main() { return 0; }")
        buffer = io.BytesIO()
        trace.save(buffer)
        buffer.seek(0)
        with pytest.raises(ValueError, match="different program"):
            Trace.load(buffer, other)

    def test_bad_magic_rejected(self):
        _, program, _ = record()
        with pytest.raises(ValueError, match="not a trace"):
            Trace.load(io.BytesIO(b"JUNKJUNKJUNKJUNK"), program)

    def test_trace_with_input_syscalls(self):
        source = """
int main() {
    int a = read_int();
    int b = read_int();
    print_int(a + b);
    return 0;
}
"""
        program = compile_source(source)
        recorder = TraceRecorder()
        Simulator(program, input_data=b"40 2", analyzers=[recorder]).run()
        trace = recorder.trace()
        buffer = io.BytesIO()
        trace.save(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer, program)
        from repro.sim.events import SyscallEvent

        syscalls = [e for e in loaded.events if isinstance(e, SyscallEvent)]
        inputs = [e for e in syscalls if e.is_input]
        assert [e.result for e in inputs] == [40, 2]
