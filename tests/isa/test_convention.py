"""Tests for the memory map and segment classification."""

from __future__ import annotations

import pytest

from repro.isa import convention


class TestMemoryMap:
    def test_gp_points_into_data(self):
        assert convention.DATA_BASE < convention.GP_VALUE < convention.HEAP_BASE
        assert convention.GP_VALUE - convention.DATA_BASE == 0x8000

    def test_layout_ordering(self):
        assert (
            convention.TEXT_BASE
            < convention.DATA_BASE
            < convention.HEAP_BASE
            < convention.STACK_LIMIT
            < convention.STACK_TOP
        )


class TestSegmentOf:
    @pytest.mark.parametrize(
        "address,segment",
        [
            (convention.TEXT_BASE, "text"),
            (convention.DATA_BASE, "data"),
            (convention.DATA_BASE + 0x1234, "data"),
            (convention.HEAP_BASE, "heap"),
            (convention.HEAP_BASE + 100, "heap"),
            (convention.STACK_TOP, "stack"),
            (convention.STACK_TOP - 64, "stack"),
            (convention.STACK_LIMIT, "stack"),
            (0, "other"),
        ],
    )
    def test_classification(self, address, segment):
        assert convention.segment_of(address) == segment

    def test_boundaries_are_half_open(self):
        assert convention.segment_of(convention.HEAP_BASE - 4) == "data"
        assert convention.segment_of(convention.STACK_LIMIT - 4) == "heap"


class TestSyscallNumbers:
    def test_spim_flavoured_numbers(self):
        assert convention.Syscall.PRINT_INT == 1
        assert convention.Syscall.READ_INT == 5
        assert convention.Syscall.SBRK == 9
        assert convention.Syscall.EXIT == 10
        assert convention.Syscall.PRINT_CHAR == 11
        assert convention.Syscall.READ_CHAR == 12
