"""Tests for binary instruction encoding/decoding.

The strongest check is the whole-program round trip: every workload's
text segment encodes to machine words and decodes back to structurally
identical instructions.
"""

from __future__ import annotations

import pytest

from repro.isa.encoding import (
    EncodingError,
    decode,
    decode_program,
    encode,
    encode_program,
    equivalent,
)
from repro.isa.instructions import Instruction, OPCODES
from repro.isa.registers import A0, RA, SP, T0, T1, T2, V0

PC = 0x0040_0000


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr), instr.addr)


class TestKnownEncodings:
    def test_nop_is_zero(self):
        assert encode(Instruction(OPCODES["nop"], addr=PC)) == 0

    def test_addu_fields(self):
        word = encode(Instruction(OPCODES["addu"], rd=T2, rs=T0, rt=T1, addr=PC))
        assert word & 0x3F == 0x21  # funct
        assert (word >> 11) & 31 == T2
        assert (word >> 21) & 31 == T0
        assert (word >> 16) & 31 == T1

    def test_addiu_classic(self):
        # addiu $sp, $sp, -8 == 0x27BDFFF8 in real MIPS encodings.
        word = encode(Instruction(OPCODES["addiu"], rt=SP, rs=SP, imm=-8, addr=PC))
        assert word == 0x27BDFFF8

    def test_lw_classic(self):
        # lw $v0, 4($sp) == 0x8FA20004
        word = encode(Instruction(OPCODES["lw"], rt=V0, rs=SP, imm=4, addr=PC))
        assert word == 0x8FA20004

    def test_jr_ra_classic(self):
        # jr $ra == 0x03E00008
        word = encode(Instruction(OPCODES["jr"], rs=RA, addr=PC))
        assert word == 0x03E00008

    def test_syscall_classic(self):
        assert encode(Instruction(OPCODES["syscall"], addr=PC)) == 0x0000000C


class TestRoundTrips:
    CASES = [
        Instruction(OPCODES["addu"], rd=T0, rs=T1, rt=T2, addr=PC),
        Instruction(OPCODES["subu"], rd=T2, rs=T0, rt=T1, addr=PC),
        Instruction(OPCODES["sll"], rd=T0, rt=T1, shamt=31, addr=PC),
        Instruction(OPCODES["srav"], rd=T0, rt=T1, rs=T2, addr=PC),
        Instruction(OPCODES["addiu"], rt=T0, rs=T1, imm=-32768, addr=PC),
        Instruction(OPCODES["ori"], rt=T0, rs=T1, imm=0xFFFF, addr=PC),
        Instruction(OPCODES["lui"], rt=T0, imm=0x1234, addr=PC),
        Instruction(OPCODES["lw"], rt=T0, rs=SP, imm=124, addr=PC),
        Instruction(OPCODES["sb"], rt=T0, rs=T1, imm=-1, addr=PC),
        Instruction(OPCODES["beq"], rs=T0, rt=T1, target=PC + 32, addr=PC),
        Instruction(OPCODES["bne"], rs=T0, rt=T1, target=PC - 400, addr=PC),
        Instruction(OPCODES["blez"], rs=T0, target=PC + 8, addr=PC),
        Instruction(OPCODES["bgez"], rs=T0, target=PC + 4, addr=PC),
        Instruction(OPCODES["bltz"], rs=A0, target=PC - 64, addr=PC),
        Instruction(OPCODES["j"], target=0x00400100, addr=PC),
        Instruction(OPCODES["jal"], target=0x00400200, addr=PC),
        Instruction(OPCODES["jr"], rs=RA, addr=PC),
        Instruction(OPCODES["jalr"], rd=RA, rs=T0, addr=PC),
        Instruction(OPCODES["mult"], rs=T0, rt=T1, addr=PC),
        Instruction(OPCODES["divu"], rs=T0, rt=T1, addr=PC),
        Instruction(OPCODES["mfhi"], rd=T0, addr=PC),
        Instruction(OPCODES["mflo"], rd=V0, addr=PC),
        Instruction(OPCODES["syscall"], addr=PC),
        Instruction(OPCODES["nop"], addr=PC),
    ]

    @pytest.mark.parametrize("instr", CASES, ids=lambda i: i.disassemble())
    def test_roundtrip(self, instr):
        assert equivalent(roundtrip(instr), instr), instr.disassemble()

    def test_branch_range_check(self):
        far = Instruction(OPCODES["beq"], rs=T0, rt=T1, target=PC + (1 << 20), addr=PC)
        with pytest.raises(EncodingError):
            encode(far)

    def test_unknown_word_rejected(self):
        with pytest.raises(EncodingError):
            decode(0xFC00_0000, PC)  # opcode 0x3F undefined here


class TestProgramRoundTrip:
    def test_assembled_program_roundtrips(self):
        from repro.asm import assemble

        program = assemble(
            """
        .data
v:      .word 7
        .text
        .ent main, 0
main:   addiu $sp, $sp, -16
        sw $ra, 12($sp)
        li $t0, 0x12345678
        la $t1, v
        lw $t2, 0($t1)
loop:   addiu $t2, $t2, -1
        bgtz $t2, loop
        jal helper
        lw $ra, 12($sp)
        addiu $sp, $sp, 16
        jr $ra
        .end main
        .ent helper, 0
helper: li $v0, 1
        move $a0, $zero
        syscall
        jr $ra
        .end helper
"""
        )
        code = encode_program(program.text)
        assert len(code) == 4 * len(program.text)
        decoded = decode_program(code, program.text_base)
        for original, recovered in zip(program.text, decoded):
            assert equivalent(original, recovered), original.disassemble()

    @pytest.mark.parametrize("name", ["go", "m88ksim", "compress"])
    def test_workload_text_roundtrips(self, name):
        from repro.workloads import get_workload

        program = get_workload(name).program()
        decoded = decode_program(encode_program(program.text), program.text_base)
        mismatches = [
            (a.disassemble(), b.disassemble())
            for a, b in zip(program.text, decoded)
            if not equivalent(a, b)
        ]
        assert not mismatches
