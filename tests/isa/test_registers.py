"""Tests for register naming and ABI roles."""

from __future__ import annotations

import pytest

from repro.isa import registers


class TestNames:
    def test_canonical_names(self):
        assert registers.register_name(0) == "$zero"
        assert registers.register_name(29) == "$sp"
        assert registers.register_name(31) == "$ra"

    def test_index_with_and_without_dollar(self):
        assert registers.register_index("$t0") == registers.T0
        assert registers.register_index("t0") == registers.T0

    def test_numeric_aliases(self):
        for index in range(registers.NUM_REGISTERS):
            assert registers.register_index(f"${index}") == index

    def test_s8_alias_for_fp(self):
        assert registers.register_index("$s8") == registers.FP

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            registers.register_index("$bogus")

    def test_is_register_name(self):
        assert registers.is_register_name("$v0")
        assert registers.is_register_name("gp")
        assert not registers.is_register_name("$nope")

    def test_roundtrip_all(self):
        for index in range(registers.NUM_REGISTERS):
            assert registers.register_index(registers.register_name(index)) == index


class TestAbiRoles:
    def test_argument_registers(self):
        assert [registers.register_name(r) for r in registers.ARG_REGISTERS] == [
            "$a0",
            "$a1",
            "$a2",
            "$a3",
        ]

    def test_callee_saved_are_s_registers(self):
        names = [registers.register_name(r) for r in registers.CALLEE_SAVED_REGISTERS]
        assert names == [f"$s{i}" for i in range(8)]

    def test_role_sets_disjoint(self):
        roles = (
            set(registers.ARG_REGISTERS)
            | set(registers.RETURN_VALUE_REGISTERS)
        ) & set(registers.CALLEE_SAVED_REGISTERS)
        assert not roles
