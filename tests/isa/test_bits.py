"""Unit and property tests for 32-bit arithmetic helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import bits

u32 = st.integers(min_value=0, max_value=2**32 - 1)
s32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
shamt = st.integers(min_value=0, max_value=31)


class TestConversions:
    def test_to_u32_wraps(self):
        assert bits.to_u32(-1) == 0xFFFFFFFF
        assert bits.to_u32(2**32) == 0
        assert bits.to_u32(2**32 + 5) == 5

    def test_to_s32_sign(self):
        assert bits.to_s32(0x7FFFFFFF) == 2**31 - 1
        assert bits.to_s32(0x80000000) == -(2**31)
        assert bits.to_s32(0xFFFFFFFF) == -1

    def test_to_s16(self):
        assert bits.to_s16(0x7FFF) == 32767
        assert bits.to_s16(0x8000) == -32768
        assert bits.to_s16(0xFFFF) == -1

    def test_to_s8(self):
        assert bits.to_s8(0x7F) == 127
        assert bits.to_s8(0x80) == -128
        assert bits.to_s8(0xFF) == -1

    @given(s32)
    def test_roundtrip_signed(self, value):
        assert bits.to_s32(bits.to_u32(value)) == value

    @given(u32)
    def test_roundtrip_unsigned(self, value):
        assert bits.to_u32(bits.to_s32(value)) == value


class TestImmediateRanges:
    def test_fits_s16_bounds(self):
        assert bits.fits_s16(-(2**15))
        assert bits.fits_s16(2**15 - 1)
        assert not bits.fits_s16(2**15)
        assert not bits.fits_s16(-(2**15) - 1)

    def test_fits_u16_bounds(self):
        assert bits.fits_u16(0)
        assert bits.fits_u16(2**16 - 1)
        assert not bits.fits_u16(2**16)
        assert not bits.fits_u16(-1)


class TestArithmetic:
    def test_add_wraps(self):
        assert bits.add32(0xFFFFFFFF, 1) == 0
        assert bits.add32(0x7FFFFFFF, 1) == 0x80000000

    def test_sub_wraps(self):
        assert bits.sub32(0, 1) == 0xFFFFFFFF

    @given(u32, u32)
    def test_add_sub_inverse(self, a, b):
        assert bits.sub32(bits.add32(a, b), b) == a

    @given(u32, shamt)
    def test_shift_identities(self, value, amount):
        assert bits.srl32(bits.sll32(value, amount), amount) == (
            value & ((1 << (32 - amount)) - 1)
        )

    def test_sra_sign_extends(self):
        assert bits.sra32(0x80000000, 31) == 0xFFFFFFFF
        assert bits.sra32(0x40000000, 30) == 1

    @given(u32, shamt)
    def test_sra_matches_python(self, value, amount):
        assert bits.sra32(value, amount) == bits.to_u32(bits.to_s32(value) >> amount)


class TestMulDiv:
    def test_mult_signed(self):
        hi, lo = bits.mult32(bits.to_u32(-2), 3)
        assert bits.to_s32(lo) == -6
        assert hi == 0xFFFFFFFF  # sign extension of the 64-bit product

    def test_multu_large(self):
        hi, lo = bits.multu32(0xFFFFFFFF, 0xFFFFFFFF)
        assert (hi << 32 | lo) == 0xFFFFFFFF * 0xFFFFFFFF

    @given(s32, s32)
    def test_mult_matches_python(self, a, b):
        hi, lo = bits.mult32(bits.to_u32(a), bits.to_u32(b))
        assert ((hi << 32) | lo) == (a * b) & (2**64 - 1)

    def test_div_truncates_toward_zero(self):
        hi, lo = bits.div32(bits.to_u32(-17), 4)
        assert bits.to_s32(lo) == -4  # C semantics, not Python's floor
        assert bits.to_s32(hi) == -1

    def test_div_by_zero_is_deterministic(self):
        assert bits.div32(5, 0) == (0, 0)
        assert bits.divu32(5, 0) == (0, 0)

    @given(s32, s32.filter(lambda v: v != 0))
    def test_div_invariant(self, a, b):
        hi, lo = bits.div32(bits.to_u32(a), bits.to_u32(b))
        quotient, remainder = bits.to_s32(lo), bits.to_s32(hi)
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b)

    @given(u32, u32.filter(lambda v: v != 0))
    def test_divu_invariant(self, a, b):
        hi, lo = bits.divu32(a, b)
        assert lo * b + hi == a
        assert hi < b
