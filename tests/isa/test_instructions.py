"""Tests for opcode metadata and the decoded instruction type."""

from __future__ import annotations

import pytest

from repro.isa.instructions import Format, Instruction, Kind, OPCODES
from repro.isa.registers import A0, RA, T0, T1, T2


class TestOpcodeTable:
    def test_core_opcodes_present(self):
        for name in ("addu", "lw", "sw", "beq", "jal", "jr", "syscall", "lui"):
            assert name in OPCODES

    def test_load_metadata(self):
        assert OPCODES["lw"].mem_width == 4
        assert OPCODES["lb"].signed_load
        assert not OPCODES["lbu"].signed_load
        assert OPCODES["lhu"].mem_width == 2

    def test_unsigned_immediate_ops(self):
        assert OPCODES["ori"].unsigned_imm
        assert OPCODES["andi"].unsigned_imm
        assert not OPCODES["addiu"].unsigned_imm

    def test_kinds(self):
        assert OPCODES["jal"].kind == Kind.CALL
        assert OPCODES["jr"].kind == Kind.JUMP_REG
        assert OPCODES["mult"].kind == Kind.MULDIV
        assert OPCODES["mfhi"].kind == Kind.MFHILO


class TestInstructionProperties:
    def test_is_return_only_for_jr_ra(self):
        assert Instruction(OPCODES["jr"], rs=RA).is_return
        assert not Instruction(OPCODES["jr"], rs=T0).is_return
        assert not Instruction(OPCODES["jal"]).is_return

    def test_is_load_store(self):
        assert Instruction(OPCODES["lw"]).is_load
        assert Instruction(OPCODES["sw"]).is_store
        assert not Instruction(OPCODES["addu"]).is_load

    def test_source_registers_r3(self):
        instr = Instruction(OPCODES["addu"], rd=T0, rs=T1, rt=T2)
        assert instr.source_registers() == (T1, T2)
        assert instr.dest_register() == T0

    def test_source_registers_store_includes_data(self):
        instr = Instruction(OPCODES["sw"], rt=T0, rs=T1, imm=4)
        assert instr.source_registers() == (T0, T1)
        assert instr.dest_register() is None

    def test_load_dest(self):
        instr = Instruction(OPCODES["lw"], rt=T0, rs=T1, imm=0)
        assert instr.source_registers() == (T1,)
        assert instr.dest_register() == T0

    def test_jal_writes_ra(self):
        assert Instruction(OPCODES["jal"], target=0x400000).dest_register() == RA

    def test_shift_sources(self):
        instr = Instruction(OPCODES["sll"], rd=T0, rt=T1, shamt=2)
        assert instr.source_registers() == (T1,)

    def test_variable_shift_operand_order(self):
        instr = Instruction(OPCODES["sllv"], rd=T0, rt=T1, rs=T2)
        assert instr.source_registers() == (T1, T2)


class TestDisassembly:
    @pytest.mark.parametrize(
        "instr,expected",
        [
            (Instruction(OPCODES["addu"], rd=T0, rs=T1, rt=T2), "addu $t0, $t1, $t2"),
            (Instruction(OPCODES["addiu"], rt=T0, rs=T1, imm=-4), "addiu $t0, $t1, -4"),
            (Instruction(OPCODES["lw"], rt=T0, rs=T1, imm=8), "lw $t0, 8($t1)"),
            (Instruction(OPCODES["sll"], rd=T0, rt=T1, shamt=2), "sll $t0, $t1, 2"),
            (Instruction(OPCODES["jr"], rs=RA), "jr $ra"),
            (Instruction(OPCODES["syscall"]), "syscall"),
            (
                Instruction(OPCODES["beq"], rs=T0, rt=T1, label="loop", target=0x400010),
                "beq $t0, $t1, loop",
            ),
        ],
    )
    def test_disassemble(self, instr, expected):
        assert instr.disassemble() == expected
