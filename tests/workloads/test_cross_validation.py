"""Cross-validation: workload outputs vs. independent Python references.

For the workloads with checkable semantics (LZW compression, word
scoring, the toy-CPU interpreter), a reference implementation in Python
recomputes the expected output — catching compiler/simulator/workload
bugs that determinism tests alone would miss.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.workloads import get_workload


def run_workload(name, input_data):
    workload = get_workload(name)
    result = Simulator(workload.program(), input_data=input_data).run()
    assert result.stop_reason in ("halt", "exit")
    return result.output.split()


class TestCompressReference:
    """LZW reference mirroring compress_like.mc exactly."""

    @staticmethod
    def reference_lzw(data: bytes):
        tab_prefix = [0] * 4096
        tab_suffix = [0] * 4096
        tab_code = [-1] * 4096
        next_code = 256
        entries = 0
        codes = 0
        checksum = 0
        in_bytes = 0

        def probe(prefix, suffix):
            slot = ((prefix << 4) ^ suffix ^ (prefix >> 7)) & 4095
            for _ in range(4096):
                if tab_code[slot] < 0:
                    return slot
                if tab_prefix[slot] == prefix and tab_suffix[slot] == suffix:
                    return slot
                slot = (slot + 61) & 4095
            return -1

        def emit(code):
            nonlocal codes, checksum
            codes += 1
            checksum = (checksum * 31 + code) & 16777215

        stream = iter(data)
        try:
            prefix = next(stream)
        except StopIteration:
            return 0, 0, 0, 0
        in_bytes = 1
        for c in stream:
            in_bytes += 1
            slot = probe(prefix, c)
            if slot >= 0 and tab_code[slot] >= 0:
                prefix = tab_code[slot]
            else:
                emit(prefix)
                if slot >= 0 and next_code < 4096:
                    tab_prefix[slot] = prefix
                    tab_suffix[slot] = c
                    tab_code[slot] = next_code
                    next_code += 1
                    entries += 1
                prefix = c
        emit(prefix)
        return in_bytes, codes, entries, checksum

    @pytest.mark.parametrize("kind", ["primary", "secondary"])
    def test_matches_reference(self, kind):
        workload = get_workload("compress")
        data = getattr(workload, f"{kind}_input")(1)
        measured = [int(x) for x in run_workload("compress", data)]
        assert tuple(measured) == self.reference_lzw(data)


class TestPerlReference:
    """Scrabble-scoring reference mirroring perl_like.mc."""

    LETTER_VALUES = [1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
                     1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10]

    def reference_scores(self, data: bytes):
        words = data.decode().split()
        counts = {}
        total = 0
        best = 0
        lookup_hits = 0
        for word in words:
            word = word[:31]
            if word in counts:
                lookup_hits += 1
            counts[word] = counts.get(word, 0) + 1
            score = sum(
                self.LETTER_VALUES[ord(c) - ord("a")]
                for c in word
                if "a" <= c <= "z"
            )
            if len(word) >= 7:
                score += 50
            if counts[word] > 3:
                score //= 2
            total += score
            best = max(best, score)
        return len(words), len(counts), total, best, lookup_hits

    @pytest.mark.parametrize("kind", ["primary", "secondary"])
    def test_matches_reference(self, kind):
        workload = get_workload("perl")
        data = getattr(workload, f"{kind}_input")(1)
        measured = tuple(int(x) for x in run_workload("perl", data))
        assert measured == self.reference_scores(data)


class TestM88kReference:
    """Re-implements the toy-CPU interpreter in Python and checks the
    checksums the MiniC interpreter reports."""

    ROM = [
        4096,
        4096 + 512 * 3,
        7 * 4096 + 512 * 4 + 64 * 3,
        2 * 4096 + 512 * 1 + 64 * 1 + 4,
        10 * 4096 + 512 * 5 + 64 * 3 + 8,
        8 * 4096 + 512 * 1 + 64 * 5,
        10 * 4096 + 512 * 3 + 64 * 3 + 1,
        11 * 4096 + 512 * 6 + 64 * 3 + 2,
        9 * 4096 + 64 * 6 + 27,
        6 * 4096 + 512 * 1 + 64 * 1 + 2,
        4 * 4096 + 512 * 1 + 64 * 1 + 1,
        0,
    ] + [0] * 12

    def reference(self, runs: int):
        mask = 0xFFFFFFFF

        def s32(v):
            v &= mask
            return v - (1 << 32) if v & 0x80000000 else v

        regs = [0] * 8
        mem = [(i * 7 + 3) & 31 for i in range(64)]
        cycles = 0
        writes = 0
        checksum = 0
        for run in range(runs):
            pc = 0
            regs[2] = 8 + (run & 7)
            running = True
            while running:
                word = self.ROM[pc % 24]
                op, rd, rs, imm = word // 4096, (word // 512) % 8, (word // 64) % 8, word % 64
                pc += 1
                cycles += 1
                if op == 0:
                    running = False
                elif op == 1:
                    if rd:
                        regs[rd] = imm
                elif op == 7:
                    if rd:
                        regs[rd] = mem[regs[rs] & 63]
                elif op == 8:
                    mem[regs[rs] & 63] = regs[rd]
                    writes += 1
                elif op == 9:
                    if regs[rs] != 0:
                        pc = pc + imm - 32
                elif op == 10:
                    if rd:
                        regs[rd] = s32(regs[rs] + imm)
                else:
                    a, b = regs[rs], regs[imm & 7]
                    if op == 2:
                        value = s32(a + b)
                    elif op == 3:
                        value = s32(a - b)
                    elif op == 4:
                        value = a & b
                    elif op == 5:
                        value = a | b
                    elif op == 6:
                        value = s32(a << (b & 31))
                    elif op == 11:
                        value = 1 if a < b else 0
                    else:
                        value = 0
                    if rd:
                        regs[rd] = value
            checksum = s32(checksum + regs[1] + pc)
        return checksum, cycles, writes

    def test_matches_reference(self):
        workload = get_workload("m88ksim")
        data = workload.primary_input(1)
        runs = int(data.split()[0])
        measured = tuple(int(x) for x in run_workload("m88ksim", data))
        assert measured == self.reference(runs)
