"""Tests for the synthetic workload suite."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.workloads import WORKLOADS, WORKLOAD_ORDER, get_workload
from repro.workloads.base import DeterministicRandom, words_text


class TestRegistry:
    def test_eight_workloads_in_paper_order(self):
        assert WORKLOAD_ORDER == (
            "go",
            "m88ksim",
            "ijpeg",
            "perl",
            "vortex",
            "li",
            "gcc",
            "compress",
        )

    def test_lookup(self):
        assert get_workload("go").name == "go"
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nosuch")

    def test_descriptions_mention_spec(self):
        for workload in WORKLOADS.values():
            assert "SPEC95" in workload.spec_analogue


class TestInputs:
    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_inputs_deterministic(self, name):
        workload = get_workload(name)
        assert workload.primary_input(1) == workload.primary_input(1)
        assert workload.secondary_input(1) == workload.secondary_input(1)

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_primary_differs_from_secondary(self, name):
        workload = get_workload(name)
        assert workload.primary_input(1) != workload.secondary_input(1)

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_scale_grows_input_or_work(self, name):
        workload = get_workload(name)
        small = workload.primary_input(1)
        large = workload.primary_input(4)
        assert small != large


class TestExecution:
    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_compiles_and_runs_to_completion(self, name):
        workload = get_workload(name)
        program = workload.program()
        result = Simulator(program, input_data=workload.primary_input(1)).run(
            limit=2_000_000
        )
        assert result.stop_reason in ("halt", "exit")
        assert result.output.strip(), "workload must report results"

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_deterministic_output(self, name):
        workload = get_workload(name)
        program = workload.program()
        first = Simulator(program, input_data=workload.primary_input(1)).run()
        second = Simulator(program, input_data=workload.primary_input(1)).run()
        assert first.output == second.output
        assert first.total_instructions == second.total_instructions

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_secondary_input_runs(self, name):
        workload = get_workload(name)
        result = Simulator(
            workload.program(), input_data=workload.secondary_input(1)
        ).run(limit=2_000_000)
        assert result.stop_reason in ("halt", "exit")

    @pytest.mark.parametrize("name", WORKLOAD_ORDER)
    def test_reasonable_dynamic_size(self, name):
        """Scale-1 runs stay in the ~50k-700k window the harness expects."""
        workload = get_workload(name)
        result = Simulator(workload.program(), input_data=workload.primary_input(1)).run()
        assert 30_000 <= result.total_instructions <= 800_000

    def test_program_cached(self):
        workload = get_workload("go")
        assert workload.program() is workload.program()


class TestGenerators:
    def test_lcg_deterministic(self):
        a, b = DeterministicRandom(7), DeterministicRandom(7)
        assert [a.next_int(100) for _ in range(20)] == [b.next_int(100) for _ in range(20)]

    def test_lcg_bounds(self):
        rng = DeterministicRandom(1)
        assert all(0 <= rng.next_int(13) < 13 for _ in range(200))

    def test_words_text_repeats_vocabulary(self):
        text = words_text(3, 500, vocabulary_size=50).decode()
        words = text.split()
        assert len(words) == 500
        assert len(set(words)) <= 50
