"""Tests for the two-pass assembler and program image."""

from __future__ import annotations

import pytest

from repro.asm import AsmError, assemble
from repro.isa.convention import DATA_BASE, GP_VALUE, TEXT_BASE
from repro.isa.registers import GP


MINIMAL = """
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""


class TestLayout:
    def test_text_base(self):
        program = assemble(MINIMAL)
        assert program.text[0].addr == TEXT_BASE

    def test_data_word_layout(self):
        program = assemble(
            """
        .data
a:      .word 1, 2, 3
b:      .word 4
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        assert program.symbols["a"] == DATA_BASE
        assert program.symbols["b"] == DATA_BASE + 12
        assert program.data[0:4] == (1).to_bytes(4, "little")

    def test_label_binds_after_alignment(self):
        program = assemble(
            """
        .data
s:      .asciiz "abc"
w:      .word 7
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        # "abc\0" is 4 bytes; already aligned, so w follows directly.
        assert program.symbols["w"] == DATA_BASE + 4
        program2 = assemble(
            """
        .data
s:      .asciiz "abcd"
w:      .word 7
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        # "abcd\0" = 5 bytes; w must be aligned up to 8.
        assert program2.symbols["w"] == DATA_BASE + 8

    def test_space_is_uninitialized(self):
        program = assemble(
            """
        .data
a:      .word 9
b:      .space 8
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        assert all(program.data_initialized[0:4])
        assert not any(program.data_initialized[4:12])

    def test_byte_and_half_directives(self):
        program = assemble(
            """
        .data
a:      .byte 1, 2, 255
h:      .half 300
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        assert program.data[0:3] == bytes([1, 2, 255])
        assert program.symbols["h"] == DATA_BASE + 4  # aligned to 2... padded
        offset = program.symbols["h"] - DATA_BASE
        assert int.from_bytes(program.data[offset : offset + 2], "little") == 300

    def test_word_fixup_references_symbol(self):
        program = assemble(
            """
        .data
ptr:    .word target
target: .word 42
        .text
        .ent main, 0
main:   jr $ra
        .end main
"""
        )
        stored = int.from_bytes(program.data[0:4], "little")
        assert stored == program.symbols["target"]


class TestSymbols:
    def test_branch_target_resolved(self):
        program = assemble(
            """
        .text
        .ent main, 0
main:   beq $zero, $zero, done
        nop
done:   jr $ra
        .end main
"""
        )
        assert program.text[0].target == program.symbols["done"]
        assert program.text[0].label == "done"

    def test_forward_and_backward_references(self):
        program = assemble(
            """
        .text
        .ent main, 0
main:   j end
loop:   j loop
end:    jr $ra
        .end main
"""
        )
        assert program.text[0].target == program.symbols["end"]
        assert program.text[1].target == program.symbols["loop"]

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble("x: nop\nx: nop\n.ent main, 0\nmain: jr $ra\n.end main")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AsmError):
            assemble(".ent main, 0\nmain: j nowhere\n.end main")

    def test_entry_point_required(self):
        with pytest.raises(AsmError):
            assemble("f: jr $ra")


class TestPseudoIntegration:
    def test_li_large_occupies_two_slots(self):
        program = assemble(
            """
        .ent main, 0
main:   li $t0, 0x12345678
        jr $ra
        .end main
"""
        )
        assert [i.op.name for i in program.text] == ["lui", "ori", "jr"]

    def test_la_gp_relative_for_near_data(self):
        program = assemble(
            """
        .data
x:      .word 5
        .text
        .ent main, 0
main:   la $t0, x
        jr $ra
        .end main
"""
        )
        la = program.text[0]
        assert la.op.name == "addiu" and la.rs == GP
        assert la.imm == program.symbols["x"] - GP_VALUE

    def test_gp_relative_load_operand(self):
        program = assemble(
            """
        .data
x:      .word 5
        .text
        .ent main, 0
main:   lw $t0, x($gp)
        jr $ra
        .end main
"""
        )
        load = program.text[0]
        assert load.op.name == "lw" and load.rs == GP
        assert load.imm == program.symbols["x"] - GP_VALUE

    def test_gp_relative_operand_requires_gp(self):
        with pytest.raises(AsmError):
            assemble(
                """
        .data
x:      .word 5
        .text
        .ent main, 0
main:   lw $t0, x($t1)
        jr $ra
        .end main
"""
            )


class TestImmediateChecks:
    def test_signed_range_enforced(self):
        with pytest.raises(AsmError):
            assemble(".ent main, 0\nmain: addiu $t0, $t0, 40000\njr $ra\n.end main")

    def test_unsigned_range_enforced(self):
        with pytest.raises(AsmError):
            assemble(".ent main, 0\nmain: ori $t0, $t0, -1\njr $ra\n.end main")

    def test_boundary_values_accepted(self):
        assemble(
            ".ent main, 0\nmain: addiu $t0, $t0, -32768\n"
            "ori $t0, $t0, 65535\njr $ra\n.end main"
        )


class TestFunctions:
    SOURCE = """
        .text
        .ent main, 0
main:   jal helper
        jr $ra
        .end main
        .ent helper, 2
helper: addu $v0, $a0, $a1
        jr $ra
        .end helper
"""

    def test_function_metadata(self):
        program = assemble(self.SOURCE)
        helper = program.function_by_name("helper")
        assert helper is not None
        assert helper.num_args == 2
        assert helper.size == 2
        assert program.function_by_entry(helper.entry) is helper

    def test_function_at_address(self):
        program = assemble(self.SOURCE)
        helper = program.function_by_name("helper")
        assert program.function_at(helper.entry + 4).name == "helper"
        assert program.function_at(program.entry).name == "main"

    def test_missing_end_rejected(self):
        with pytest.raises(AsmError):
            assemble(".ent main, 0\nmain: jr $ra")

    def test_end_without_ent_rejected(self):
        with pytest.raises(AsmError):
            assemble("main: jr $ra\n.end main")


class TestDisassembly:
    def test_roundtrip_contains_labels(self):
        program = assemble(MINIMAL)
        text = program.disassemble()
        assert "main:" in text and "jr $ra" in text
