"""Tests for assembly statement parsing."""

from __future__ import annotations

import pytest

from repro.asm.errors import AsmError
from repro.asm.parser import (
    DirectiveStmt,
    ImmOp,
    InstrStmt,
    LabelStmt,
    MemOp,
    MemSymOp,
    RegOp,
    SymOp,
    parse_source,
)
from repro.isa.registers import GP, SP, T0, T1


def single_instr(source: str) -> InstrStmt:
    statements = parse_source(source)
    assert len(statements) == 1 and isinstance(statements[0], InstrStmt)
    return statements[0]


class TestOperands:
    def test_register_operands(self):
        stmt = single_instr("addu $t0, $t1, $zero")
        assert stmt.operands == [RegOp(T0), RegOp(T1), RegOp(0)]

    def test_immediate(self):
        stmt = single_instr("addiu $t0, $t1, -42")
        assert stmt.operands[2] == ImmOp(-42)

    def test_memory_operand(self):
        stmt = single_instr("lw $t0, 8($sp)")
        assert stmt.operands[1] == MemOp(8, SP)

    def test_bare_parenthesised_base(self):
        stmt = single_instr("lw $t0, ($sp)")
        assert stmt.operands[1] == MemOp(0, SP)

    def test_symbol_operand(self):
        stmt = single_instr("la $t0, table")
        assert stmt.operands[1] == SymOp("table", 0)

    def test_symbol_with_offset(self):
        stmt = single_instr("la $t0, table+12")
        assert stmt.operands[1] == SymOp("table", 12)
        stmt = single_instr("la $t0, table-4")
        assert stmt.operands[1] == SymOp("table", -4)

    def test_gp_relative_memory_symbol(self):
        stmt = single_instr("lw $t0, counter($gp)")
        assert stmt.operands[1] == MemSymOp(SymOp("counter", 0), GP)


class TestStatements:
    def test_label_then_instruction_same_line(self):
        statements = parse_source("loop: addiu $t0, $t0, 1")
        assert isinstance(statements[0], LabelStmt) and statements[0].name == "loop"
        assert isinstance(statements[1], InstrStmt)

    def test_multiple_labels(self):
        statements = parse_source("a:\nb: nop")
        labels = [s.name for s in statements if isinstance(s, LabelStmt)]
        assert labels == ["a", "b"]

    def test_directive(self):
        statements = parse_source(".word 1, 2, 3")
        assert isinstance(statements[0], DirectiveStmt)
        assert statements[0].name == ".word"

    def test_mnemonic_lowercased(self):
        assert single_instr("ADDU $t0, $t1, $t2").mnemonic == "addu"

    def test_excess_operands_rejected_at_assembly(self):
        # Syntactically "nop nop" parses as nop with a symbol operand;
        # the assembler's arity check rejects it.
        from repro.asm import assemble

        with pytest.raises(AsmError):
            assemble(".ent main, 0\nmain: nop nop\njr $ra\n.end main")

    def test_unparseable_operand_rejected(self):
        with pytest.raises(AsmError):
            parse_source("addu $t0, ]")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as excinfo:
            parse_source("nop\naddu $t0 $t1")  # missing comma
        assert excinfo.value.line == 2
