"""Tests for pseudo-instruction expansion."""

from __future__ import annotations

import pytest

from repro.asm.parser import ImmOp, RegOp, SymOp
from repro.asm.pseudo import GPREL, HI16, LO16, SymImm, expand, expansion_length
from repro.isa.convention import DATA_BASE, GP_VALUE
from repro.isa.registers import AT, GP, T0, T1, T2, ZERO


def no_data(_name):
    return None


def data_at(address):
    return lambda name: address


class TestLi:
    def test_small_signed(self):
        protos = expand("li", [RegOp(T0), ImmOp(-5)], 1, no_data)
        assert len(protos) == 1
        assert protos[0].name == "addiu" and protos[0].imm == -5

    def test_small_unsigned(self):
        protos = expand("li", [RegOp(T0), ImmOp(0xFFFF)], 1, no_data)
        assert len(protos) == 1 and protos[0].name == "ori"

    def test_large_splits_into_lui_ori(self):
        protos = expand("li", [RegOp(T0), ImmOp(0x12345678)], 1, no_data)
        assert [p.name for p in protos] == ["lui", "ori"]
        assert protos[0].imm == 0x1234
        assert protos[1].imm == 0x5678

    def test_negative_large(self):
        protos = expand("li", [RegOp(T0), ImmOp(-0x123456)], 1, no_data)
        assert [p.name for p in protos] == ["lui", "ori"]
        value = (protos[0].imm << 16) | protos[1].imm
        assert value == (-0x123456) & 0xFFFFFFFF

    def test_length_matches_expansion(self):
        for imm in (0, 1, -1, 0x7FFF, 0x8000, 0xFFFF, 0x10000, -0x8000, -0x8001):
            ops = [RegOp(T0), ImmOp(imm)]
            assert expansion_length("li", ops, 1, no_data) == len(expand("li", ops, 1, no_data))


class TestLa:
    def test_gp_reachable_data_symbol(self):
        lookup = data_at(DATA_BASE + 0x10)
        protos = expand("la", [RegOp(T0), SymOp("x")], 1, lookup)
        assert len(protos) == 1
        assert protos[0].name == "addiu" and protos[0].rs == GP
        assert isinstance(protos[0].imm, SymImm) and protos[0].imm.kind == GPREL

    def test_far_symbol_uses_lui_ori(self):
        lookup = data_at(DATA_BASE + 0x100000)  # beyond the gp window
        protos = expand("la", [RegOp(T0), SymOp("x")], 1, lookup)
        assert [p.name for p in protos] == ["lui", "ori"]
        assert protos[0].imm.kind == HI16 and protos[1].imm.kind == LO16

    def test_text_symbol_uses_lui_ori(self):
        protos = expand("la", [RegOp(T0), SymOp("func")], 1, no_data)
        assert [p.name for p in protos] == ["lui", "ori"]

    def test_length_consistency(self):
        for lookup in (no_data, data_at(DATA_BASE), data_at(DATA_BASE + 0x200000)):
            ops = [RegOp(T0), SymOp("x")]
            assert expansion_length("la", ops, 1, lookup) == len(expand("la", ops, 1, lookup))


class TestBranchSynthesis:
    def test_blt_registers(self):
        protos = expand("blt", [RegOp(T0), RegOp(T1), SymOp("L")], 1, no_data)
        assert [p.name for p in protos] == ["slt", "bne"]
        assert protos[0].rd == AT and protos[0].rs == T0 and protos[0].rt == T1

    def test_bgt_swaps_operands(self):
        protos = expand("bgt", [RegOp(T0), RegOp(T1), SymOp("L")], 1, no_data)
        assert protos[0].rs == T1 and protos[0].rt == T0
        assert protos[1].name == "bne"

    def test_bge_uses_beq(self):
        protos = expand("bge", [RegOp(T0), RegOp(T1), SymOp("L")], 1, no_data)
        assert protos[1].name == "beq"

    def test_blt_immediate_uses_slti(self):
        protos = expand("blt", [RegOp(T0), ImmOp(5), SymOp("L")], 1, no_data)
        assert [p.name for p in protos] == ["slti", "bne"]

    def test_bgt_immediate_materializes(self):
        protos = expand("bgt", [RegOp(T0), ImmOp(5), SymOp("L")], 1, no_data)
        assert [p.name for p in protos] == ["addiu", "slt", "bne"]

    def test_lengths_match(self):
        cases = [
            ("blt", [RegOp(T0), RegOp(T1), SymOp("L")]),
            ("blt", [RegOp(T0), ImmOp(3), SymOp("L")]),
            ("ble", [RegOp(T0), ImmOp(3), SymOp("L")]),
            ("bgt", [RegOp(T0), RegOp(T1), SymOp("L")]),
            ("bltu", [RegOp(T0), RegOp(T1), SymOp("L")]),
        ]
        for mnemonic, ops in cases:
            assert expansion_length(mnemonic, ops, 1, no_data) == len(
                expand(mnemonic, ops, 1, no_data)
            )


class TestOtherPseudos:
    def test_move(self):
        protos = expand("move", [RegOp(T0), RegOp(T1)], 1, no_data)
        assert protos[0].name == "addu" and protos[0].rt == ZERO

    def test_unconditional_branch(self):
        protos = expand("b", [SymOp("L")], 1, no_data)
        assert protos[0].name == "beq" and protos[0].rs == ZERO

    def test_beqz_bnez(self):
        assert expand("beqz", [RegOp(T0), SymOp("L")], 1, no_data)[0].name == "beq"
        assert expand("bnez", [RegOp(T0), SymOp("L")], 1, no_data)[0].name == "bne"

    def test_neg_not(self):
        assert expand("neg", [RegOp(T0), RegOp(T1)], 1, no_data)[0].name == "subu"
        assert expand("not", [RegOp(T0), RegOp(T1)], 1, no_data)[0].name == "nor"

    def test_mul_rem_div3(self):
        assert [p.name for p in expand("mul", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)] == [
            "mult",
            "mflo",
        ]
        assert [p.name for p in expand("rem", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)] == [
            "div",
            "mfhi",
        ]
        assert [p.name for p in expand("div", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)] == [
            "div",
            "mflo",
        ]

    def test_set_pseudos(self):
        assert [p.name for p in expand("seq", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)] == [
            "subu",
            "sltiu",
        ]
        assert [p.name for p in expand("sne", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)] == [
            "subu",
            "sltu",
        ]
        sgt = expand("sgt", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)
        assert len(sgt) == 1 and sgt[0].rs == T2 and sgt[0].rt == T1

    def test_sle_sge(self):
        sle = expand("sle", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)
        assert [p.name for p in sle] == ["slt", "xori"]
        sge = expand("sge", [RegOp(T0), RegOp(T1), RegOp(T2)], 1, no_data)
        assert [p.name for p in sge] == ["slt", "xori"]
        # sge keeps operand order, sle swaps it.
        assert sge[0].rs == T1 and sle[0].rs == T2
