"""Tests for the assembly tokenizer."""

from __future__ import annotations

import pytest

from repro.asm.errors import AsmError
from repro.asm.lexer import Token, iter_logical_lines, tokenize_line, unescape


class TestTokenizeLine:
    def test_instruction_line(self):
        tokens = tokenize_line("addu $t0, $t1, $t2")
        assert [t.kind for t in tokens] == ["ident", "reg", "punct", "reg", "punct", "reg"]

    def test_comment_stripped(self):
        assert tokenize_line("nop # does nothing")[0].text == "nop"
        assert tokenize_line("# whole line") == []

    def test_numbers(self):
        tokens = tokenize_line(".word 10, -3, 0x1F")
        values = [t.value for t in tokens if t.kind == "num"]
        assert values == [10, -3, 0x1F]

    def test_char_literal(self):
        tokens = tokenize_line("li $t0, 'A'")
        assert tokens[-1].value == 65

    def test_char_escape(self):
        assert tokenize_line(r"li $t0, '\n'")[-1].value == 10
        assert tokenize_line(r"li $t0, '\0'")[-1].value == 0

    def test_string_literal(self):
        tokens = tokenize_line(r'.asciiz "hi\nthere"')
        assert tokens[-1].value == "hi\nthere"

    def test_memory_operand(self):
        tokens = tokenize_line("lw $t0, 4($sp)")
        assert [t.text for t in tokens] == ["lw", "$t0", ",", "4", "(", "$sp", ")"]

    def test_label_definition(self):
        tokens = tokenize_line("loop: addiu $t0, $t0, 1")
        assert tokens[0].kind == "ident"
        assert tokens[1].text == ":"

    def test_bad_character_raises(self):
        with pytest.raises(AsmError):
            tokenize_line("addu $t0 @ $t1")

    def test_symbol_with_offset(self):
        # The lexer folds the sign into the number; the parser re-splits.
        tokens = tokenize_line("la $t0, table+8")
        assert tokens[-2].text == "table"
        assert tokens[-1].kind == "num" and tokens[-1].value == 8


class TestUnescape:
    @pytest.mark.parametrize(
        "raw,expected",
        [(r"a\nb", "a\nb"), (r"\t", "\t"), (r"\\", "\\"), (r"\"", '"'), ("plain", "plain")],
    )
    def test_escapes(self, raw, expected):
        assert unescape(raw) == expected


class TestLogicalLines:
    def test_skips_blank_lines(self):
        lines = list(iter_logical_lines("a\n\n  \nb\n"))
        assert [text.strip() for _, text in lines] == ["a", "b"]
        assert [number for number, _ in lines] == [1, 4]
