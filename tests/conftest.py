"""Shared fixtures.

The full suite run is expensive (~20s with every analyzer attached), so
it is session-scoped and shared by all shape/integration tests, and the
harness-level cache makes repeated requests free.
"""

from __future__ import annotations

import pytest

from repro.harness import SuiteConfig, run_suite
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing


@pytest.fixture(scope="session")
def suite_results():
    """Full eight-workload suite at scale 1 with the paper configuration."""
    return run_suite(SuiteConfig(scale=1))


@pytest.fixture(scope="session")
def secondary_results():
    """The paper's input-sensitivity check: a second input set."""
    return run_suite(SuiteConfig(scale=1, input_kind="secondary"))


@pytest.fixture
def metrics_enabled():
    """A clean, enabled global metrics registry; wiped and disabled after."""
    obs_metrics.enable()
    obs_metrics.REGISTRY.reset()
    try:
        yield obs_metrics.REGISTRY
    finally:
        obs_metrics.disable()
        obs_metrics.REGISTRY.reset()


@pytest.fixture
def tracer():
    """A fresh installed SpanTracer; previous tracer restored after."""
    instance = obs_tracing.SpanTracer()
    previous = obs_tracing.current_tracer()
    obs_tracing.install_tracer(instance)
    try:
        yield instance
    finally:
        obs_tracing.install_tracer(previous)
