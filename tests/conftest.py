"""Shared fixtures.

The full suite run is expensive (~20s with every analyzer attached), so
it is session-scoped and shared by all shape/integration tests, and the
harness-level cache makes repeated requests free.
"""

from __future__ import annotations

import pytest

from repro.harness import SuiteConfig, run_suite


@pytest.fixture(scope="session")
def suite_results():
    """Full eight-workload suite at scale 1 with the paper configuration."""
    return run_suite(SuiteConfig(scale=1))


@pytest.fixture(scope="session")
def secondary_results():
    """The paper's input-sensitivity check: a second input set."""
    return run_suite(SuiteConfig(scale=1, input_kind="secondary"))
