"""Tests for the experiment registry and its table builders."""

from __future__ import annotations

import pytest

from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS
from repro.workloads import WORKLOAD_ORDER


class TestRegistry:
    def test_every_table_and_figure_covered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "table9", "table10", "table10t",
            "fig1", "fig3", "fig4", "fig5", "fig6",
        }
        assert set(EXPERIMENTS) == expected

    def test_paper_refs_unique(self):
        refs = [e.paper_ref for e in EXPERIMENTS.values()]
        assert len(set(refs)) == len(refs)


class TestRendering:
    @pytest.mark.parametrize("exp_id", EXPERIMENT_ORDER)
    def test_renders_all_workloads(self, exp_id, suite_results):
        text = EXPERIMENTS[exp_id].render(suite_results)
        for name in WORKLOAD_ORDER:
            assert name in text, f"{exp_id} output missing workload {name}"

    def test_table1_columns(self, suite_results):
        text = EXPERIMENTS["table1"].render(suite_results)
        assert "Dyn repeat %" in text
        assert "% exec repeated" in text

    def test_table3_has_three_panels(self, suite_results):
        text = EXPERIMENTS["table3"].render(suite_results)
        assert "Overall" in text and "Repeated" in text and "Propensity" in text

    def test_table9_lists_function_names(self, suite_results):
        text = EXPERIMENTS["table9"].render(suite_results)
        assert "coverage=" in text
        # Top contributors carry static sizes in parentheses.
        assert "(" in text and ")" in text

    def test_fig_outputs_have_topk_headers(self, suite_results):
        for exp_id in ("fig5", "fig6"):
            text = EXPERIMENTS[exp_id].render(suite_results)
            assert "top-1" in text and "top-5" in text
