"""Tests for the failure taxonomy, recovery policy, and SuiteReport."""

from __future__ import annotations

import pickle

import pytest

from repro.asm.errors import AsmError
from repro.harness.failures import (
    KIND_CACHE,
    KIND_COMPILE,
    KIND_SIM_TRAP,
    KIND_TIMEOUT,
    KIND_UNKNOWN,
    KIND_WORKER_CRASH,
    FailureRecord,
    RecoveryPolicy,
    SuiteReport,
    WorkloadTimeout,
    classify_failure,
    plan_next_action,
    resolve_policy,
    result_digest,
)
from repro.harness.faults import FaultInjected
from repro.harness.parallel import run_suite_parallel
from repro.harness.runner import SuiteConfig, run_suite
from repro.lang.errors import MiniCError
from repro.sim.errors import SimError


def _classify(exc, **overrides):
    kwargs = dict(workload="go", engine="predecoded", attempt=1)
    kwargs.update(overrides)
    return classify_failure(exc, **kwargs)


class TestClassification:
    def test_sim_error_is_sim_trap(self):
        record = _classify(SimError("bad access", pc=0x40))
        assert record.kind == KIND_SIM_TRAP
        assert record.exception_type == "SimError"
        assert not record.injected

    def test_compile_errors(self):
        assert _classify(AsmError("bad opcode")).kind == KIND_COMPILE
        assert _classify(MiniCError("parse error")).kind == KIND_COMPILE

    def test_broken_pool_is_worker_crash(self):
        from concurrent.futures.process import BrokenProcessPool

        record = _classify(BrokenProcessPool("terminated abruptly"))
        assert record.kind == KIND_WORKER_CRASH

    def test_timeout(self):
        record = _classify(WorkloadTimeout("go", 1.5, "predecoded"))
        assert record.kind == KIND_TIMEOUT
        assert "1.5s" in record.message

    def test_cache_fault(self):
        record = _classify(FaultInjected("cache.torn_write"))
        assert record.kind == KIND_CACHE
        assert record.injected  # FaultInjected always carries the marker

    def test_unknown(self):
        assert _classify(RuntimeError("boom")).kind == KIND_UNKNOWN

    def test_injected_marker_propagates(self):
        error = SimError("injected fault")
        error.injected = True
        assert _classify(error).injected

    def test_record_carries_context(self):
        record = _classify(SimError("x"), workload="gcc", attempt=3)
        assert record.workload == "gcc" and record.attempt == 3
        assert record.attempts == 3
        assert len(record.traceback_digest) == 12

    def test_record_pickles_and_dicts(self):
        record = _classify(SimError("x"))
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        as_dict = record.to_dict()
        assert as_dict["kind"] == KIND_SIM_TRAP and "when" in as_dict

    def test_workload_timeout_pickles(self):
        error = WorkloadTimeout("go", 2.0, "interpreter")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.workload == "go" and clone.seconds == 2.0
        assert clone.engine == "interpreter"


class TestRecoveryPolicy:
    def test_defaults_are_strict(self):
        policy = RecoveryPolicy()
        assert policy.strict and policy.retries == 2 and policy.timeout_s is None

    def test_backoff_is_deterministic_and_capped(self):
        policy = RecoveryPolicy(backoff_base_s=0.05, backoff_cap_s=0.2)
        first = policy.backoff_seconds("go", 1)
        assert first == policy.backoff_seconds("go", 1)
        assert policy.backoff_seconds("go", 1) != policy.backoff_seconds("gcc", 1)
        # Exponential up to the cap, jitter at most +100%.
        for attempt in range(1, 12):
            assert 0 < policy.backoff_seconds("go", attempt) <= 0.4

    def test_backoff_varies_with_seed(self):
        a = RecoveryPolicy(seed=1).backoff_seconds("go", 1)
        b = RecoveryPolicy(seed=2).backoff_seconds("go", 1)
        assert a != b

    def test_resolve_policy_overrides(self):
        policy = resolve_policy(None, strict=False, retries=5, timeout_s=1.0)
        assert not policy.strict and policy.retries == 5 and policy.timeout_s == 1.0
        base = RecoveryPolicy(retries=7)
        assert resolve_policy(base) is base
        assert resolve_policy(base, strict=False).retries == 7


class TestPlanNextAction:
    def _record(self, kind):
        return FailureRecord(
            kind=kind,
            workload="go",
            engine="predecoded",
            attempt=1,
            message="x",
            exception_type="X",
        )

    def test_compile_errors_fail_immediately(self):
        action = plan_next_action(
            self._record(KIND_COMPILE),
            engine="predecoded",
            degraded=False,
            attempt=1,
            retries=5,
        )
        assert action == "fail"

    def test_sim_trap_degrades_predecode_once(self):
        kwargs = dict(attempt=1, retries=5)
        assert (
            plan_next_action(
                self._record(KIND_SIM_TRAP),
                engine="predecoded",
                degraded=False,
                **kwargs,
            )
            == "degrade"
        )
        # Already on the reference engine (or already degraded): terminal.
        assert (
            plan_next_action(
                self._record(KIND_SIM_TRAP),
                engine="interpreter",
                degraded=False,
                **kwargs,
            )
            == "fail"
        )
        assert (
            plan_next_action(
                self._record(KIND_SIM_TRAP),
                engine="interpreter",
                degraded=True,
                **kwargs,
            )
            == "fail"
        )

    def test_transient_failures_retry_until_budget(self):
        record = self._record(KIND_WORKER_CRASH)
        common = dict(engine="predecoded", degraded=False, retries=2)
        assert plan_next_action(record, attempt=1, **common) == "retry"
        assert plan_next_action(record, attempt=2, **common) == "retry"
        assert plan_next_action(record, attempt=3, **common) == "fail"

    def test_serial_timeouts_are_permanent(self):
        record = self._record(KIND_TIMEOUT)
        assert (
            plan_next_action(
                record,
                engine="predecoded",
                degraded=False,
                attempt=1,
                retries=5,
                transient_timeouts=False,
            )
            == "fail"
        )
        # Pool timeouts stay retryable (hung worker = infra flake).
        assert (
            plan_next_action(
                record,
                engine="predecoded",
                degraded=False,
                attempt=1,
                retries=5,
                transient_timeouts=True,
            )
            == "retry"
        )


class TestSuiteReport:
    def test_behaves_like_a_dict(self):
        report = SuiteReport()
        report["go"] = "result"
        assert list(report) == ["go"] and report["go"] == "result"
        assert report.ok and not report.partial

    def test_failures_flip_partial(self):
        report = SuiteReport()
        report.failures["go"] = FailureRecord(
            kind=KIND_SIM_TRAP,
            workload="go",
            engine="predecoded",
            attempt=1,
            message="x",
            exception_type="SimError",
        )
        assert report.partial and not report.ok
        assert "1 failed" in report.summary()

    def test_pickles_with_attributes(self):
        report = SuiteReport(config=SuiteConfig())
        report["go"] = "result"
        report.failures["gcc"] = FailureRecord(
            kind=KIND_UNKNOWN,
            workload="gcc",
            engine="predecoded",
            attempt=2,
            message="x",
            exception_type="RuntimeError",
        )
        clone = pickle.loads(pickle.dumps(report))
        assert dict(clone) == {"go": "result"}
        assert clone.failures["gcc"].attempt == 2
        assert clone.config == SuiteConfig()


class TestInputValidation:
    def test_run_suite_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite(SuiteConfig(), names=["go"], jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            run_suite(SuiteConfig(), names=["go"], jobs=-2)

    def test_run_suite_parallel_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_suite_parallel(SuiteConfig(), names=["go"], jobs=0)

    def test_run_suite_parallel_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate workload names: go"):
            run_suite_parallel(SuiteConfig(), names=["go", "compress", "go"], jobs=2)


class TestResultDigest:
    def test_digest_stable_and_discriminating(self, suite_results):
        go = suite_results["go"]
        compress = suite_results["compress"]
        assert result_digest(go) == result_digest(go)
        assert result_digest(go) != result_digest(compress)

    def test_digest_ignores_manifest(self, suite_results):
        import dataclasses

        go = suite_results["go"]
        annotated = dataclasses.replace(
            go, manifest=dataclasses.replace(go.manifest, degraded=True, attempts=3)
        )
        assert result_digest(annotated) == result_digest(go)

    def test_digest_survives_pickle_roundtrip(self, suite_results):
        go = suite_results["go"]
        clone = pickle.loads(pickle.dumps(go))
        assert result_digest(clone) == result_digest(go)
