"""Tests for the persistent result cache and the parallel suite runner."""

from __future__ import annotations

import pickle

import pytest

from repro.harness import runner
from repro.harness.cache import CACHE_FORMAT_VERSION, ResultCache, source_digest
from repro.harness.parallel import run_suite_parallel
from repro.harness.runner import (
    SuiteConfig,
    WorkloadResult,
    cache_directory,
    clear_cache,
    run_suite,
    run_workload,
    set_cache_dir,
)
from repro.workloads import Workload, get_workload

_SMALL = {"limit_instructions": 3_000}


@pytest.fixture
def isolated_cache(tmp_path):
    """Point the disk layer at a temp dir; restore module state after."""
    saved_memory = dict(runner._CACHE)
    directory = tmp_path / "result-cache"
    set_cache_dir(str(directory))
    try:
        yield directory
    finally:
        set_cache_dir(None)
        runner._CACHE.clear()
        runner._CACHE.update(saved_memory)


@pytest.fixture
def no_disk_cache():
    """Force the disk layer off regardless of environment."""
    set_cache_dir(None)
    try:
        yield
    finally:
        set_cache_dir(None)


class TestCacheKeying:
    def test_distinct_configs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        variants = [
            SuiteConfig(),
            SuiteConfig(scale=2),
            SuiteConfig(buffer_capacity=100),
            SuiteConfig(reuse_entries=1024),
            SuiteConfig(reuse_associativity=1),
            SuiteConfig(skip_instructions=10),
            SuiteConfig(limit_instructions=10),
            SuiteConfig(input_kind="secondary"),
            SuiteConfig(engine="interpreter"),
        ]
        keys = {cache.key_for("go", config) for config in variants}
        assert len(keys) == len(variants)

    def test_distinct_workloads_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        assert cache.key_for("go", config) != cache.key_for("gcc", config)

    def test_key_depends_on_format_version_and_sources(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("go", SuiteConfig())
        assert key == cache.key_for("go", SuiteConfig())  # deterministic
        assert str(CACHE_FORMAT_VERSION)  # version participates in payload
        assert len(source_digest()) == 64

    def test_previous_format_version_reads_as_miss(self, tmp_path, monkeypatch):
        # An entry written under format v3 (pre recovery-provenance
        # manifests) must be invisible to the current version, not an
        # unpickling error.
        from repro.harness import cache as cache_module

        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        monkeypatch.setattr(cache_module, "CACHE_FORMAT_VERSION", 3)
        cache.store("go", config, {"legacy": True})
        assert cache.load("go", config) == {"legacy": True}
        monkeypatch.undo()
        assert CACHE_FORMAT_VERSION == 4
        assert cache.load("go", config) is None

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        assert cache.load("go", config) is None
        # Binary garbage (UnpicklingError) and text garbage (the protocol-0
        # parser raises ValueError) must both read as misses.
        cache.path_for("go", config).write_bytes(b"not a pickle")
        assert cache.load("go", config) is None
        cache.path_for("go", config).write_bytes(b"garbage\n")
        assert cache.load("go", config) is None
        cache.path_for("go", config).write_bytes(b"")
        assert cache.load("go", config) is None


class TestDiskLayer:
    def test_round_trip_across_cache_instances(self, isolated_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        result = run_workload(get_workload("compress"), config)
        # A fresh ResultCache over the same directory (≈ a new process).
        fresh = ResultCache(isolated_cache)
        loaded = fresh.load("compress", config)
        assert isinstance(loaded, WorkloadResult)
        assert loaded.run == result.run
        assert loaded.repetition == result.repetition

    def test_disk_hit_skips_simulation_and_promotes(self, isolated_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        first = run_workload(get_workload("compress"), config)
        runner._CACHE.clear()  # drop memory layer; disk remains
        warm = run_workload(get_workload("compress"), config)
        assert warm is not first  # came from disk, not memory
        assert warm.run == first.run
        assert run_workload(get_workload("compress"), config) is warm  # promoted

    def test_clear_cache_invalidates_disk_layer(self, isolated_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        run_workload(get_workload("compress"), config)
        assert list(isolated_cache.glob("*.pkl"))
        clear_cache()
        assert not list(isolated_cache.glob("*.pkl"))
        assert not runner._CACHE

    def test_cache_directory_reporting(self, isolated_cache):
        assert cache_directory() == str(isolated_cache)
        set_cache_dir(None)
        assert cache_directory() is None


class TestWorkloadPickling:
    def test_workload_reduces_to_registry_lookup(self):
        workload = get_workload("vortex")
        clone = pickle.loads(pickle.dumps(workload))
        assert clone is workload  # registry returns the singleton

    def test_workload_result_is_picklable(self, no_disk_cache):
        config = SuiteConfig(**_SMALL)
        result = run_workload(get_workload("compress"), config)
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone.workload, Workload)
        assert clone.run == result.run
        assert clone.repetition == result.repetition


class TestParallelSuite:
    def test_parallel_matches_serial(self, no_disk_cache):
        config = SuiteConfig(**_SMALL)
        names = ("go", "compress", "li")
        clear_cache()
        serial = {n: run_workload(get_workload(n), config) for n in names}
        clear_cache()
        parallel = run_suite_parallel(config, names, jobs=2)
        assert tuple(parallel) == names
        for name in names:
            assert parallel[name].run == serial[name].run
            assert parallel[name].repetition == serial[name].repetition
            assert parallel[name].reuse == serial[name].reuse

    def test_parallel_serves_cached_results_without_workers(self, no_disk_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        first = run_workload(get_workload("go"), config)
        results = run_suite_parallel(config, ("go",), jobs=2)
        assert results["go"] is first  # memory hit, no pool spawn

    def test_run_suite_jobs_parameter(self, no_disk_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        results = run_suite(config, ("compress", "li"), jobs=2)
        assert tuple(results) == ("compress", "li")
        clear_cache()
        serial = run_suite(config, ("compress", "li"))
        for name in serial:
            assert results[name].run == serial[name].run

    def test_parallel_workers_share_disk_cache(self, isolated_cache):
        config = SuiteConfig(**_SMALL)
        clear_cache()
        run_suite_parallel(config, ("compress",), jobs=2)
        # Worker processes wrote their entries into the shared directory.
        fresh = ResultCache(isolated_cache)
        assert fresh.load("compress", config) is not None
