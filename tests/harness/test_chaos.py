"""Chaos matrix: injected faults across serial/parallel and both engines.

Every recovery path in the harness is proven here against the
deterministic fault-injection sites of :mod:`repro.harness.faults`:
worker crashes, hangs, engine traps, assembly errors, cache rot, and
watchdog timeouts.  The core invariant throughout: whatever happens to
the faulted workload, the *surviving* results are bit-identical
(via :func:`result_digest`) to a fault-free run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import faults, runner
from repro.harness.failures import (
    KIND_COMPILE,
    KIND_SIM_TRAP,
    KIND_TIMEOUT,
    KIND_WORKER_CRASH,
    RecoveryPolicy,
    SuiteReport,
    WorkloadTimeout,
    result_digest,
)
from repro.harness.runner import SuiteConfig, run_suite, set_cache_dir
from repro.obs import metrics as obs_metrics
from repro.sim.errors import SimError
from repro.workloads import get_workload

#: Small windows keep the matrix fast; the analyzers all still run.
_CHAOS = SuiteConfig(limit_instructions=3_000)
_INTERP = dataclasses.replace(_CHAOS, engine="interpreter")
_NAMES = ("go", "compress")


def _plan(spec: str, **overrides) -> SuiteConfig:
    return dataclasses.replace(_CHAOS, fault_plan=spec, **overrides)


@pytest.fixture(autouse=True)
def isolated_state():
    """Fresh memory cache, no disk cache, no armed plan, per test."""
    saved = dict(runner._CACHE)
    runner._CACHE.clear()
    previous_dir = runner.cache_directory()
    set_cache_dir(None)
    faults.install_plan(None)
    try:
        yield
    finally:
        faults.install_plan(None)
        set_cache_dir(previous_dir)
        runner._CACHE.clear()
        runner._CACHE.update(saved)


@pytest.fixture(scope="module")
def baselines():
    """Fault-free digests: both workloads (predecoded) + go (interpreter)."""
    saved = dict(runner._CACHE)
    runner._CACHE.clear()
    try:
        clean = run_suite(_CHAOS, names=_NAMES)
        interp = run_suite(_INTERP, names=("go",))
        yield (
            {name: result_digest(result) for name, result in clean.items()},
            result_digest(interp["go"]),
        )
    finally:
        runner._CACHE.clear()
        runner._CACHE.update(saved)


class TestWorkerCrash:
    def test_partial_results_with_terminal_crash(self, baselines, metrics_enabled):
        """Acceptance: crasher fails with attempts == retries + 1, the
        survivors are bit-identical to a fault-free run."""
        clean_digests, _ = baselines
        report = run_suite(
            _plan("worker.crash:go"),
            names=_NAMES,
            jobs=2,
            strict=False,
            retries=1,
        )
        assert isinstance(report, SuiteReport) and report.partial
        record = report.failures["go"]
        assert record.kind == KIND_WORKER_CRASH
        assert record.attempts == 1 + 1  # retries + 1
        assert "go" not in report
        assert result_digest(report["compress"]) == clean_digests["compress"]
        assert metrics_enabled.value("suite.partial_failures") == 1
        assert metrics_enabled.value("retry.attempts") >= 1

    def test_first_attempt_crash_recovers(self, baselines, metrics_enabled):
        clean_digests, _ = baselines
        report = run_suite(
            _plan("worker.crash:go@1"), names=_NAMES, jobs=2, strict=False
        )
        assert report.ok
        assert result_digest(report["go"]) == clean_digests["go"]
        assert result_digest(report["compress"]) == clean_digests["compress"]
        assert report["go"].manifest.attempts >= 2
        assert report["go"].manifest.failures  # the crash is on record
        assert metrics_enabled.value("retry.attempts") >= 1
        assert metrics_enabled.value("suite.partial_failures") == 0

    def test_recovered_telemetry_matches_serial(self, metrics_enabled):
        """Aggregated sim counters equal a clean serial run: the crashed
        attempt dies before simulating, so it pollutes nothing."""
        report = run_suite(
            _plan("worker.crash:go@1"), names=_NAMES, jobs=2, strict=False
        )
        assert report.ok
        chaos_sim = {
            k: v
            for k, v in metrics_enabled.snapshot()["counters"].items()
            if k.startswith("sim.")
        }
        metrics_enabled.reset()
        runner._CACHE.clear()
        serial = run_suite(_CHAOS, names=_NAMES)
        assert serial.ok
        clean_sim = {
            k: v
            for k, v in metrics_enabled.snapshot()["counters"].items()
            if k.startswith("sim.")
        }
        assert chaos_sim == clean_sim


class TestEngineDegradation:
    def test_serial_predecode_trap_degrades_to_interpreter(
        self, baselines, metrics_enabled
    ):
        """Acceptance: the fallback result is identical to a native
        interpreter run, flagged degraded, and the predecode cache key
        is never populated."""
        _, interp_digest = baselines
        config = _plan("engine.predecode_raise:go")
        report = run_suite(config, names=("go",), strict=False)
        assert report.ok
        manifest = report["go"].manifest
        assert manifest.degraded and manifest.degraded_from == "predecoded"
        assert manifest.engine == "interpreter"
        assert manifest.attempts == 2
        assert result_digest(report["go"]) == interp_digest
        assert metrics_enabled.value("degrade.engine_fallback") == 1
        assert metrics_enabled.value("fault.injected.engine.predecode_raise") == 1
        # Never promoted as a clean predecode entry.
        assert runner.cached_result(get_workload("go"), config) is None

    def test_parallel_predecode_trap_degrades(self, baselines, metrics_enabled):
        _, interp_digest = baselines
        report = run_suite(
            _plan("engine.predecode_raise:go"), names=_NAMES, jobs=2, strict=False
        )
        assert report.ok
        assert report["go"].manifest.degraded
        assert result_digest(report["go"]) == interp_digest
        assert metrics_enabled.value("degrade.engine_fallback") == 1

    def test_interpreter_trap_is_terminal(self, baselines):
        """No engine left to degrade to: sim-trap on the reference
        engine fails without burning retries."""
        clean_digests, _ = baselines
        report = run_suite(
            _plan("engine.interp_raise:go", engine="interpreter"),
            names=_NAMES,
            jobs=1,
            strict=False,
        )
        assert report.failures["go"].kind == KIND_SIM_TRAP
        assert report.failures["go"].attempts == 1
        assert result_digest(report["compress"]) == clean_digests["compress"]

    def test_strict_raises_the_trap(self):
        with pytest.raises(SimError, match="engine.predecode_raise"):
            run_suite(_plan("engine.predecode_raise:go"), names=("go",))


class TestAsmError:
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("engine", ["predecoded", "interpreter"])
    def test_compile_error_is_terminal_everywhere(
        self, jobs, engine, metrics_enabled
    ):
        report = run_suite(
            _plan("asm.error:go", engine=engine),
            names=("go",),
            jobs=jobs,
            strict=False,
            retries=3,
        )
        record = report.failures["go"]
        assert record.kind == KIND_COMPILE and record.injected
        assert record.attempts == 1  # permanent: no retries burned
        assert metrics_enabled.value("retry.attempts") == 0


class TestCacheFaults:
    def test_corrupt_entry_self_heals(self, tmp_path, baselines, metrics_enabled):
        clean_digests, _ = baselines
        set_cache_dir(str(tmp_path / "cache"))
        config = _plan("cache.corrupt:compress")
        first = run_suite(config, names=("compress",), strict=False)
        assert first.ok
        # The store was scribbled: a fresh process (cleared memory
        # layer) hits the corrupt entry, evicts it, and recomputes.
        runner._CACHE.clear()
        second = run_suite(config, names=("compress",), strict=False)
        assert second.ok
        assert result_digest(second["compress"]) == clean_digests["compress"]
        assert metrics_enabled.value("cache.disk.corrupt") == 1

    def test_torn_write_does_not_fail_the_run(self, tmp_path, metrics_enabled):
        """install_result swallows store errors: the computed result
        survives in memory even when the disk write dies mid-flight."""
        set_cache_dir(str(tmp_path / "cache"))
        config = _plan("cache.torn_write:compress")
        report = run_suite(config, names=("compress",), strict=False)
        assert report.ok
        assert metrics_enabled.value("cache.disk.store_errors") == 1
        assert metrics_enabled.value("fault.injected.cache.torn_write") == 1
        assert not list((tmp_path / "cache").glob("*.tmp"))


class TestWatchdog:
    def test_serial_timeout_is_a_terminal_failure(self, baselines):
        clean_digests, _ = baselines
        # No instruction limit: compress runs long enough (~190k steps)
        # for a 1ms watchdog to fire mid-simulation.
        config = SuiteConfig()
        report = run_suite(
            config, names=_NAMES, strict=False, timeout_s=0.001, retries=3
        )
        assert set(report.failures) == {"go", "compress"}
        for record in report.failures.values():
            assert record.kind == KIND_TIMEOUT
            assert record.attempts == 1  # serial timeouts are permanent

    def test_serial_timeout_strict_raises(self):
        with pytest.raises(WorkloadTimeout):
            run_suite(SuiteConfig(), names=("compress",), timeout_s=0.001)

    def test_parallel_hang_hits_parent_deadline(self, baselines, metrics_enabled):
        clean_digests, _ = baselines
        report = run_suite(
            _plan("worker.hang:go"),
            names=_NAMES,
            jobs=2,
            strict=False,
            retries=0,
            timeout_s=0.5,
        )
        record = report.failures["go"]
        assert record.kind == KIND_TIMEOUT
        assert record.attempts == 1  # retries=0
        assert result_digest(report["compress"]) == clean_digests["compress"]
        assert metrics_enabled.value("suite.partial_failures") == 1


class TestZeroFaultRuns:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_no_recovery_counters_without_faults(self, jobs, metrics_enabled):
        """CI gate twin: clean runs must show zero recovery activity."""
        report = run_suite(_CHAOS, names=_NAMES, jobs=jobs)
        assert report.ok and not report.history
        counters = metrics_enabled.snapshot()["counters"]
        assert metrics_enabled.value("retry.attempts") == 0
        assert metrics_enabled.value("degrade.engine_fallback") == 0
        assert metrics_enabled.value("suite.partial_failures") == 0
        assert not [k for k in counters if k.startswith("fault.injected")]
        for result in report.values():
            assert result.manifest.attempts == 1
            assert not result.manifest.degraded


class TestFailureSpans:
    def test_failures_emit_trace_spans(self, tracer):
        report = run_suite(_plan("asm.error:go"), names=("go",), strict=False)
        assert report.partial
        failure_events = [
            e for e in tracer.events if e.get("name") == "failure"
        ]
        assert failure_events
        args = failure_events[0].get("args", {})
        assert args.get("workload") == "go" and args.get("kind") == KIND_COMPILE
