"""End-to-end telemetry tests: aggregation, cache accounting, CLI flags.

Telemetry must be a pure observer — results are bit-identical with it
on or off, for both engines — and ``run_suite`` must report the same
aggregate metrics whether it ran serially, fanned out over a process
pool, or served everything from cache.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.repetition import RepetitionTracker
from repro.core.reuse_buffer import ReuseBuffer
from repro.harness import runner
from repro.harness.cli import main
from repro.harness.runner import (
    SuiteConfig,
    run_suite,
    run_workload,
    set_cache_dir,
)
from repro.obs import metrics as obs_metrics
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

_SMALL = SuiteConfig(limit_instructions=3_000)
_NAMES = ("compress", "go")


@pytest.fixture
def isolated_caches(tmp_path):
    """Fresh memory + disk cache layers; module state restored after."""
    saved_memory = dict(runner._CACHE)
    runner._CACHE.clear()
    directory = tmp_path / "result-cache"
    set_cache_dir(str(directory))
    try:
        yield directory
    finally:
        set_cache_dir(None)
        runner._CACHE.clear()
        runner._CACHE.update(saved_memory)


def _simulate(engine: str, limit: int = 2_000):
    workload = get_workload("compress")
    tracker = RepetitionTracker(2000)
    reuse = ReuseBuffer()
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[tracker, reuse],
        engine=engine,
    )
    run = simulator.run(limit=limit)
    return run, tracker.report(), reuse.report()


class TestTelemetryIsPureObserver:
    @pytest.mark.parametrize("engine", ("predecoded", "interpreter"))
    def test_results_identical_with_telemetry_on_and_off(self, engine, tracer):
        obs_metrics.disable()
        baseline = _simulate(engine)
        obs_metrics.enable()
        obs_metrics.REGISTRY.reset()
        try:
            telemetered = _simulate(engine)
        finally:
            obs_metrics.disable()
            obs_metrics.REGISTRY.reset()
        base_run, tele_run = baseline[0], telemetered[0]
        assert base_run.analyzed_instructions == tele_run.analyzed_instructions
        assert base_run.total_instructions == tele_run.total_instructions
        assert base_run.stop_reason == tele_run.stop_reason
        assert base_run.exit_code == tele_run.exit_code
        assert base_run.output == tele_run.output
        assert baseline[1] == telemetered[1]  # repetition report
        assert baseline[2] == telemetered[2]  # reuse report

    @pytest.mark.parametrize("engine", ("predecoded", "interpreter"))
    def test_sim_counters_match_the_run(self, engine, metrics_enabled):
        run, _, reuse_report = _simulate(engine)
        assert metrics_enabled.value("sim.instructions.total") == run.total_instructions
        assert metrics_enabled.value("sim.runs") == 1
        # Every instruction the reuse buffer saw was counted by the sim.
        assert (
            metrics_enabled.value("sim.branches")
            + metrics_enabled.value("sim.memory_ops")
            <= reuse_report.dynamic_total
        )
        assert metrics_enabled.value("sim.branches") > 0
        assert metrics_enabled.value("sim.memory_ops") > 0

    def test_engines_count_kinds_identically(self, metrics_enabled):
        _simulate("predecoded")
        predecoded = metrics_enabled.snapshot()["counters"]
        metrics_enabled.reset()
        _simulate("interpreter")
        interpreter = metrics_enabled.snapshot()["counters"]
        # Zero-valued counters are never published; default them to 0.
        for name in ("sim.branches", "sim.memory_ops", "sim.syscalls", "sim.calls"):
            assert predecoded.get(name, 0) == interpreter.get(name, 0), name
        assert predecoded.get("sim.branches", 0) > 0


class TestSuiteAggregation:
    def test_serial_suite_metrics(self, isolated_caches, metrics_enabled, tracer):
        results = run_suite(_SMALL, _NAMES)
        counters = metrics_enabled.snapshot()["counters"]
        assert counters["cache.misses"] == len(_NAMES)
        assert counters["sim.runs"] == len(_NAMES)
        assert counters["sim.instructions.total"] == sum(
            r.run.total_instructions for r in results.values()
        )
        assert metrics_enabled.timer("suite.workload_seconds").count == len(_NAMES)
        assert tracer.span_count("simulate") == len(_NAMES)
        assert tracer.span_count("assemble") == len(_NAMES)

    def test_parallel_suite_aggregates_like_serial(
        self, isolated_caches, metrics_enabled, tracer
    ):
        results = run_suite(_SMALL, _NAMES, jobs=2)
        counters = metrics_enabled.snapshot()["counters"]
        assert counters["parallel.tasks"] == len(_NAMES)
        worker_tasks = [
            value
            for name, value in counters.items()
            if name.startswith("parallel.worker.") and name.endswith(".tasks")
        ]
        assert sum(worker_tasks) == len(_NAMES)
        assert counters["sim.runs"] == len(_NAMES)
        assert counters["sim.instructions.total"] == sum(
            r.run.total_instructions for r in results.values()
        )
        # Worker trace events were spliced into the parent tracer.
        assert tracer.span_count("simulate") == len(_NAMES)

    def test_warm_cached_suite_reports_only_hits(self, isolated_caches):
        run_suite(_SMALL, _NAMES)  # populate both cache layers, telemetry off
        obs_metrics.enable()
        obs_metrics.REGISTRY.reset()
        from repro.obs import tracing as obs_tracing

        warm_tracer = obs_tracing.SpanTracer()
        obs_tracing.install_tracer(warm_tracer)
        try:
            results = run_suite(_SMALL, _NAMES)
            counters = obs_metrics.REGISTRY.snapshot()["counters"]
        finally:
            obs_tracing.install_tracer(None)
            obs_metrics.disable()
            obs_metrics.REGISTRY.reset()
        assert counters["cache.hits"] == len(_NAMES)
        assert "cache.misses" not in counters
        assert warm_tracer.span_count("simulate") == 0
        for result in results.values():
            assert result.manifest.cache == "memory-hit"

    def test_profile_publishes_per_analyzer_timers(
        self, isolated_caches, metrics_enabled
    ):
        run_workload(get_workload("compress"), _SMALL, profile=True)
        timers = metrics_enabled.snapshot()["timers"]
        step_timers = {k: v for k, v in timers.items() if k.endswith(".on_step")}
        assert "profile.RepetitionTracker.on_step" in step_timers
        steps = step_timers["profile.RepetitionTracker.on_step"]["count"]
        assert steps == _SMALL.limit_instructions

    def test_manifest_attached_to_computed_result(self, isolated_caches):
        result = run_workload(get_workload("compress"), _SMALL)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.workload == "compress"
        assert manifest.engine == _SMALL.engine
        assert manifest.cache == "computed"
        assert set(manifest.timing) == {"assemble", "simulate", "report", "total"}


class TestCorruptCacheEntries:
    def test_corrupt_entry_is_counted_warned_and_evicted(
        self, isolated_caches, metrics_enabled, caplog
    ):
        workload = get_workload("compress")
        run_workload(workload, _SMALL)
        disk = runner._disk_cache()
        path = disk.path_for(workload.name, _SMALL)
        assert path.exists()
        path.write_bytes(b"not a pickle")
        runner._CACHE.clear()
        with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
            assert disk.load(workload.name, _SMALL) is None
        assert metrics_enabled.value("cache.disk.corrupt") == 1
        assert not path.exists()  # evicted, not left to fail forever
        assert any(
            "corrupt result-cache entry" in record.message for record in caplog.records
        )


class TestCliTelemetryFlags:
    def test_flags_parse(self):
        from repro.harness.cli import build_parser

        args = build_parser().parse_args(
            ["--profile", "--metrics-out", "m.json", "--trace-out", "t.json"]
        )
        assert args.profile
        assert args.metrics_out == "m.json"
        assert args.trace_out == "t.json"

    def test_telemetry_only_run_allows_empty_experiments(
        self, isolated_caches, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "--workloads",
                "compress",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["metrics"]["counters"]["sim.runs"] == 1
        assert metrics["manifest"]["kind"] == "suite"
        trace = json.loads(trace_path.read_text())
        begins = [e for e in trace["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in trace["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) > 0
        # Global state was restored on the way out.
        assert not obs_metrics.REGISTRY.enabled
        from repro.obs import tracing as obs_tracing

        assert obs_tracing.current_tracer() is None

    def test_profile_prints_table(self, isolated_caches, capsys):
        code = main(["table2", "--workloads", "compress", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "== profile ==" in out
        assert "RepetitionTracker" in out
        assert "on_step" in out

    def test_markdown_gets_sidecar_manifest(self, isolated_caches, tmp_path, capsys):
        report = tmp_path / "report.md"
        code = main(["table2", "--workloads", "compress", "--markdown", str(report)])
        assert code == 0
        sidecar = tmp_path / "report.md.manifest.json"
        assert report.exists() and sidecar.exists()
        manifest = json.loads(sidecar.read_text())
        assert manifest["kind"] == "suite"
        assert "compress" in manifest["workloads"]
