"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pickle

import pytest

from repro.asm.errors import AsmError
from repro.harness import faults
from repro.harness.cache import ResultCache
from repro.harness.faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
)
from repro.harness.runner import SuiteConfig
from repro.obs import metrics as obs_metrics
from repro.sim.errors import SimError


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with no plan installed."""
    faults.install_plan(None)
    try:
        yield
    finally:
        faults.install_plan(None)


class TestSpecGrammar:
    def test_bare_site(self):
        spec = FaultSpec.parse("worker.crash")
        assert spec.site == "worker.crash"
        assert spec.workload == "*" and spec.attempt is None
        assert spec.times == 1 and spec.probability is None

    def test_workload_and_attempt(self):
        spec = FaultSpec.parse("worker.crash:go@2")
        assert spec.workload == "go" and spec.attempt == 2

    def test_times_bounds(self):
        assert FaultSpec.parse("asm.error:li:3").times == 3
        assert FaultSpec.parse("asm.error:li:*").times is None
        spec = FaultSpec.parse("asm.error:li:p0.5")
        assert spec.probability == 0.5 and spec.times is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec.parse("nonsense.site")

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultSpec.parse("worker.crash:go:1:extra")

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="empty fault plan"):
            FaultPlan.parse("  , ")

    def test_multi_spec_plan(self):
        plan = FaultPlan.parse("worker.crash:go, cache.corrupt:compress:2")
        assert len(plan.specs) == 2

    def test_every_catalog_site_parses(self):
        for site in SITES:
            assert FaultSpec.parse(site).site == site


class TestMatching:
    def test_workload_filter(self):
        spec = FaultSpec.parse("worker.crash:go")
        assert spec.matches("worker.crash", "go", 1)
        assert not spec.matches("worker.crash", "gcc", 1)
        assert not spec.matches("worker.hang", "go", 1)

    def test_attempt_filter(self):
        spec = FaultSpec.parse("worker.crash:go@1")
        assert spec.matches("worker.crash", "go", 1)
        assert not spec.matches("worker.crash", "go", 2)

    def test_times_exhaustion(self):
        plan = FaultPlan.parse("cache.torn_write:*:2")
        assert plan.should_fire("cache.torn_write", "go", 1)
        assert plan.should_fire("cache.torn_write", "go", 1)
        assert plan.should_fire("cache.torn_write", "go", 1) is None

    def test_unlimited_times(self):
        plan = FaultPlan.parse("cache.torn_write:*:*")
        for _ in range(10):
            assert plan.should_fire("cache.torn_write", None, None)

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan.parse("cache.torn_write:*:p0.5", seed=seed)
            return [
                plan.should_fire("cache.torn_write", None, None) is not None
                for _ in range(64)
            ]

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)
        assert any(firing_pattern(7)) and not all(firing_pattern(7))


class TestArming:
    def test_resolve_plan_prefers_explicit_spec(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.hang")
        plan = faults.resolve_plan("worker.crash:go")
        assert plan.specs[0].site == "worker.crash"

    def test_resolve_plan_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "asm.error:li")
        monkeypatch.setenv(FAULTS_SEED_ENV, "42")
        plan = faults.resolve_plan(None)
        assert plan.specs[0].site == "asm.error" and plan.seed == 42

    def test_resolve_plan_none_when_unarmed(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert faults.resolve_plan(None) is None

    def test_armed_plan_installs_and_disarms(self):
        assert not faults.armed()
        with faults.armed_plan("worker.crash:go") as plan:
            assert faults.armed() and plan is faults.active_plan()
        assert not faults.armed()

    def test_armed_plan_keeps_existing_plan(self):
        outer = FaultPlan.parse("asm.error:li")
        faults.install_plan(outer)
        with faults.armed_plan("worker.crash:go") as plan:
            assert plan is outer  # fired counts persist across workloads
        assert faults.active_plan() is outer

    def test_scope_merging(self):
        faults.install_plan(FaultPlan.parse("asm.error:go@2"))
        with faults.scope(workload="go", attempt=2):
            # Inner workload-only scope inherits the outer attempt.
            with faults.scope(workload="go"):
                assert faults.should_fire("asm.error") is not None

    def test_scope_restores_on_exit(self):
        faults.install_plan(FaultPlan.parse("asm.error:go"))
        with faults.scope(workload="gcc"):
            assert faults.should_fire("asm.error") is None
        with faults.scope(workload="go"):
            assert faults.should_fire("asm.error") is not None


class TestCheckActions:
    def test_engine_sites_raise_injected_sim_error(self):
        for site in ("engine.predecode_raise", "engine.interp_raise"):
            faults.install_plan(FaultPlan.parse(site))
            with pytest.raises(SimError) as excinfo:
                faults.check(site)
            assert excinfo.value.injected is True

    def test_asm_site_raises_injected_asm_error(self):
        faults.install_plan(FaultPlan.parse("asm.error"))
        with pytest.raises(AsmError) as excinfo:
            faults.check("asm.error")
        assert excinfo.value.injected is True

    def test_torn_write_site_raises_fault_injected(self):
        faults.install_plan(FaultPlan.parse("cache.torn_write"))
        with pytest.raises(FaultInjected) as excinfo:
            faults.check("cache.torn_write")
        assert excinfo.value.site == "cache.torn_write"

    def test_unarmed_check_is_noop(self):
        faults.check("asm.error")  # nothing armed, nothing raised

    def test_fault_injected_pickles(self):
        error = FaultInjected("cache.torn_write")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.site == "cache.torn_write" and clone.injected

    def test_injection_counter(self, metrics_enabled):
        faults.install_plan(FaultPlan.parse("cache.torn_write:*:2"))
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.check("cache.torn_write")
        assert metrics_enabled.value("fault.injected.cache.torn_write") == 2


class TestCacheFaultSites:
    def test_torn_write_leaves_previous_entry_intact(self, tmp_path):
        """Satellite: a writer killed mid-write can never tear an entry."""
        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        cache.store("go", config, {"generation": 1})
        faults.install_plan(FaultPlan.parse("cache.torn_write:go"))
        with pytest.raises(FaultInjected):
            cache.store("go", config, {"generation": 2})
        faults.install_plan(None)
        # The old entry survives untouched and no temp files leak.
        assert cache.load("go", config) == {"generation": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_torn_first_write_leaves_no_entry(self, tmp_path, metrics_enabled):
        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        faults.install_plan(FaultPlan.parse("cache.torn_write:go"))
        with pytest.raises(FaultInjected):
            cache.store("go", config, {"generation": 1})
        faults.install_plan(None)
        assert cache.load("go", config) is None
        assert list(tmp_path.glob("*")) == []
        # A clean miss, not a corrupt eviction.
        assert metrics_enabled.value("cache.disk.corrupt") == 0

    def test_corrupt_store_is_evicted_on_load(self, tmp_path, metrics_enabled):
        cache = ResultCache(tmp_path)
        config = SuiteConfig()
        faults.install_plan(FaultPlan.parse("cache.corrupt:go"))
        cache.store("go", config, {"generation": 1})
        faults.install_plan(None)
        assert cache.load("go", config) is None  # scribbled -> miss
        assert metrics_enabled.value("cache.disk.corrupt") == 1
        assert not cache.path_for("go", config).exists()  # evicted
