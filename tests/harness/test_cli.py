"""Tests for the repro-run CLI."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 1 and args.input == "primary"

    def test_experiment_list(self):
        args = build_parser().parse_args(["table1", "fig5"])
        assert args.experiments == ["table1", "fig5"]


class TestPerfFlags:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.engine == "predecoded"
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["table1", "--engine", "interpreter", "--jobs", "4", "--cache-dir", "/tmp/c"]
        )
        assert args.engine == "interpreter"
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"

    def test_cache_dir_wired_through_main(self, capsys, tmp_path):
        from repro.harness.runner import cache_directory, set_cache_dir

        cache = tmp_path / "cache"
        try:
            code = main(
                [
                    "table2",
                    "--workloads",
                    "compress",
                    "--cache-dir",
                    str(cache),
                ]
            )
            assert code == 0
            assert cache_directory() == str(cache)
            assert list(cache.glob("*.pkl"))
        finally:
            set_cache_dir(None)

    def test_no_cache_overrides(self, capsys, tmp_path):
        from repro.harness.runner import cache_directory, set_cache_dir

        set_cache_dir(str(tmp_path))
        try:
            code = main(["table2", "--workloads", "compress", "--no-cache"])
            assert code == 0
            assert cache_directory() is None
        finally:
            set_cache_dir(None)


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_no_selection_errors(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_errors(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_single_experiment_on_subset(self, capsys):
        code = main(["table2", "--workloads", "m88ksim"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "m88ksim" in out
