"""Tests for the repro-run CLI."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 1 and args.input == "primary"

    def test_experiment_list(self):
        args = build_parser().parse_args(["table1", "fig5"])
        assert args.experiments == ["table1", "fig5"]


class TestPerfFlags:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.engine == "predecoded"
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["table1", "--engine", "interpreter", "--jobs", "4", "--cache-dir", "/tmp/c"]
        )
        assert args.engine == "interpreter"
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"

    def test_cache_dir_wired_through_main(self, capsys, tmp_path):
        from repro.harness.runner import cache_directory, set_cache_dir

        cache = tmp_path / "cache"
        try:
            code = main(
                [
                    "table2",
                    "--workloads",
                    "compress",
                    "--cache-dir",
                    str(cache),
                ]
            )
            assert code == 0
            assert cache_directory() == str(cache)
            assert list(cache.glob("*.pkl"))
        finally:
            set_cache_dir(None)

    def test_no_cache_overrides(self, capsys, tmp_path):
        from repro.harness.runner import cache_directory, set_cache_dir

        set_cache_dir(str(tmp_path))
        try:
            code = main(["table2", "--workloads", "compress", "--no-cache"])
            assert code == 0
            assert cache_directory() is None
        finally:
            set_cache_dir(None)


class TestRobustnessFlags:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.strict is True
        assert args.retries == 2
        assert args.timeout_s is None
        assert args.faults is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "table1",
                "--no-strict",
                "--retries",
                "5",
                "--timeout-s",
                "2.5",
                "--faults",
                "worker.crash:go",
            ]
        )
        assert args.strict is False
        assert args.retries == 5
        assert args.timeout_s == 2.5
        assert args.faults == "worker.crash:go"

    def test_non_strict_faulted_run_exits_3_with_artifacts(self, capsys, tmp_path):
        """A partial run still writes the markdown + manifest, flags the
        failures in both, and exits non-zero."""
        markdown = tmp_path / "report.md"
        code = main(
            [
                "table1",
                "--workloads",
                "compress,go",
                "--no-strict",
                "--faults",
                "asm.error:go",
                "--markdown",
                str(markdown),
            ]
        )
        assert code == 3
        out = capsys.readouterr().out
        assert "== failures (1) ==" in out
        text = markdown.read_text()
        assert "## Failures" in text
        assert "compile-error" in text and "go" in text
        import json

        manifest = json.loads((tmp_path / "report.md.manifest.json").read_text())
        assert manifest["partial"] is True
        assert manifest["failures"]["go"]["kind"] == "compile-error"

    def test_strict_faulted_run_raises(self):
        from repro.asm.errors import AsmError

        with pytest.raises(AsmError):
            main(["table1", "--workloads", "go", "--faults", "asm.error:go"])

    def test_clean_run_with_flags_exits_0(self, capsys):
        code = main(
            ["table2", "--workloads", "compress", "--no-strict", "--retries", "1"]
        )
        assert code == 0


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_no_selection_errors(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_errors(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_single_experiment_on_subset(self, capsys):
        code = main(["table2", "--workloads", "m88ksim"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "m88ksim" in out
