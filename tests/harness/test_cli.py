"""Tests for the repro-run CLI."""

from __future__ import annotations

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 1 and args.input == "primary"

    def test_experiment_list(self):
        args = build_parser().parse_args(["table1", "fig5"])
        assert args.experiments == ["table1", "fig5"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig6" in out

    def test_no_selection_errors(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment_errors(self, capsys):
        assert main(["tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_single_experiment_on_subset(self, capsys):
        code = main(["table2", "--workloads", "m88ksim"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "m88ksim" in out
