"""Tests for the suite runner and its caching."""

from __future__ import annotations

import pytest

from repro.harness.runner import SuiteConfig, run_suite, run_workload
from repro.workloads import get_workload


class TestSuiteConfig:
    def test_defaults_follow_paper(self):
        config = SuiteConfig()
        assert config.buffer_capacity == 2000
        assert config.reuse_entries == 8192
        assert config.reuse_associativity == 4

    def test_input_selection(self):
        workload = get_workload("m88ksim")
        primary = SuiteConfig(input_kind="primary").input_for(workload)
        secondary = SuiteConfig(input_kind="secondary").input_for(workload)
        assert primary != secondary

    def test_bad_input_kind(self):
        with pytest.raises(ValueError):
            SuiteConfig(input_kind="tertiary").input_for(get_workload("go"))

    def test_hashable_for_caching(self):
        assert hash(SuiteConfig()) == hash(SuiteConfig())
        assert SuiteConfig() == SuiteConfig()
        assert SuiteConfig(scale=2) != SuiteConfig()


class TestRunWorkload:
    def test_results_cached_by_config(self):
        config = SuiteConfig(scale=1)
        workload = get_workload("m88ksim")
        first = run_workload(workload, config)
        second = run_workload(workload, config)
        assert first is second

    def test_limit_respected(self):
        config = SuiteConfig(limit_instructions=5_000)
        result = run_workload(get_workload("m88ksim"), config)
        assert result.run.analyzed_instructions == 5_000

    def test_all_reports_present(self, suite_results):
        result = suite_results["go"]
        assert result.repetition.dynamic_total > 0
        assert result.global_analysis.dynamic_total == result.repetition.dynamic_total
        assert result.local_analysis.dynamic_total == result.repetition.dynamic_total
        assert result.reuse.dynamic_total == result.repetition.dynamic_total
        assert result.function_analysis.dynamic_calls > 0
        assert result.static_program_instructions > 0


class TestRunSuite:
    def test_order_preserved(self, suite_results):
        assert list(suite_results) == [
            "go", "m88ksim", "ijpeg", "perl", "vortex", "li", "gcc", "compress",
        ]

    def test_subset_selection(self):
        results = run_suite(SuiteConfig(limit_instructions=2_000), names=["li", "go"])
        assert list(results) == ["li", "go"]
