"""Tests for the repro-cc compiler driver."""

from __future__ import annotations

import pytest

from repro.tools.cc import main

HELLO = """
int main() {
    print_str("hi\\n");
    return 0;
}
"""

SUMMER = """
int main() {
    int total = 0;
    int n = read_int();
    while (n >= 0) {
        total += n;
        n = read_int();
    }
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.mc"
    path.write_text(HELLO)
    return str(path)


class TestCompileOnly:
    def test_summary_line(self, hello_file, capsys):
        assert main([hello_file]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "functions" in out

    def test_assembly_output(self, hello_file, capsys):
        assert main([hello_file, "-S"]) == 0
        out = capsys.readouterr().out
        assert ".ent main" in out and "syscall" in out

    def test_disassemble(self, hello_file, capsys):
        assert main([hello_file, "--disassemble"]) == 0
        assert "main:" in capsys.readouterr().out

    def test_hex_dump(self, hello_file, capsys):
        assert main([hello_file, "--hex"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert all(":" in line for line in lines if line)

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.mc"]) == 1
        assert "repro-cc:" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.mc"
        bad.write_text("int main() { undeclared = 1; }")
        assert main([str(bad)]) == 1
        assert "undeclared" in capsys.readouterr().err


class TestRun:
    def test_run_program(self, hello_file, capsys):
        assert main([hello_file, "--run"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "hi\n"
        assert "stop=" in captured.err

    def test_run_with_input_file(self, tmp_path, capsys):
        src = tmp_path / "sum.mc"
        src.write_text(SUMMER)
        data = tmp_path / "input.txt"
        data.write_text("1 2 3 4 -1")
        assert main([str(src), "--run", "--input", str(data)]) == 0
        assert capsys.readouterr().out == "10\n"

    def test_profile_output(self, hello_file, capsys):
        assert main([hello_file, "--run", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "repetition:" in err and "mix:" in err

    def test_optimized_run_same_output(self, tmp_path, capsys):
        src = tmp_path / "sum.mc"
        src.write_text(SUMMER)
        data = tmp_path / "input.txt"
        data.write_text("5 6 -1")
        main([str(src), "--run", "--input", str(data)])
        plain = capsys.readouterr().out
        main([str(src), "-O", "--run", "--input", str(data)])
        assert capsys.readouterr().out == plain == "11\n"

    def test_exit_code_propagates(self, tmp_path, capsys):
        src = tmp_path / "exit3.mc"
        src.write_text("int main() { exit(3); return 0; }")
        assert main([str(src), "--run"]) == 3

    def test_limit(self, tmp_path, capsys):
        src = tmp_path / "loop.mc"
        src.write_text("int main() { while (1) { } return 0; }")
        assert main([str(src), "--run", "--limit", "500"]) == 0
        assert "stop=limit" in capsys.readouterr().err
