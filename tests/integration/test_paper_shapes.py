"""Qualitative reproduction checks: the paper's headline claims.

These tests assert the *shape* of every table/figure result — who wins,
rough magnitudes, orderings — not the paper's absolute numbers (our
substrate is a synthetic workload suite on a from-scratch simulator).
Each claim cites the paper section it reproduces.
"""

from __future__ import annotations

import pytest

from repro.analysis.coverage import contributors_for_fraction
from repro.core.local_analysis import CATEGORY_ORDER as LOCAL_CATEGORIES
from repro.workloads import WORKLOAD_ORDER


class TestTable1Shapes:
    def test_majority_of_instructions_repeat(self, suite_results):
        """Abstract: 'over 80% of the dynamic instructions ... are
        repeated' — suite-wide, most workloads repeat heavily."""
        repeated = [r.repetition.dynamic_repeated_pct for r in suite_results.values()]
        assert sum(p > 50.0 for p in repeated) == len(repeated)
        assert sum(p > 75.0 for p in repeated) >= 5

    def test_m88ksim_highest_compress_lowest(self, suite_results):
        """Table 1: the interpreter repeats most; compress least."""
        pcts = {n: r.repetition.dynamic_repeated_pct for n, r in suite_results.items()}
        assert max(pcts, key=pcts.get) == "m88ksim"
        assert min(pcts, key=pcts.get) == "compress"

    def test_most_executed_statics_repeat(self, suite_results):
        """Table 1: repetition is not confined to few static instructions."""
        for result in suite_results.values():
            assert result.repetition.static_repeated_pct > 50.0

    def test_only_part_of_program_executes(self, suite_results):
        for result in suite_results.values():
            assert result.repetition.static_executed <= result.static_program_instructions


class TestFigure1Shape:
    def test_few_statics_cover_most_repetition(self, suite_results):
        """Figure 1: a minority of repeated static instructions accounts
        for 90% of dynamic repetition."""
        for name, result in suite_results.items():
            weights = result.repetition.static_repeat_weights
            needed = contributors_for_fraction(weights, 0.9)
            fraction = needed / len(weights)
            assert fraction < 0.75, f"{name}: {fraction:.2f} of statics for 90%"


class TestTable2AndFigure4Shapes:
    def test_instances_repeat_many_times(self, suite_results):
        """Table 2: a unique repeatable instance repeats several times on
        average."""
        for result in suite_results.values():
            assert result.repetition.average_repeats > 2.0

    def test_minority_of_instances_cover_most_repetition(self, suite_results):
        """Figure 4: <30-ish% of repeatable instances cover 75%."""
        for name, result in suite_results.items():
            counts = result.repetition.instance_repeat_counts
            needed = contributors_for_fraction(counts, 0.75)
            assert needed / len(counts) < 0.5, name


class TestFigure3Shape:
    def test_repetition_not_limited_to_single_instance_instructions(self, suite_results):
        """Figure 3: instructions generating many unique instances still
        contribute visibly."""
        for name, result in suite_results.items():
            shares = result.repetition.bucket_shares()
            assert shares["1"] < 0.9, name
            multi = shares["2-10"] + shares["11-100"] + shares["101-1000"] + shares[">1000"]
            assert multi > 0.2, name


class TestTable3Shapes:
    def test_internals_plus_global_init_dominate(self, suite_results):
        """Section 5.1: most computation is on data internal or hardwired
        into the program."""
        for name, result in suite_results.items():
            report = result.global_analysis
            hardwired = report.overall_pct("internals") + report.overall_pct(
                "global init data"
            )
            assert hardwired > 55.0, name

    def test_repetition_mostly_on_hardwired_slices(self, suite_results):
        for name, result in suite_results.items():
            report = result.global_analysis
            hardwired = report.repeated_pct("internals") + report.repeated_pct(
                "global init data"
            )
            assert hardwired > 55.0, name

    def test_go_has_no_external_input_slices(self, suite_results):
        """Table 3: go shows 0.0% external input (at the paper's one
        decimal of precision — only the loop bounds are input-derived)."""
        assert suite_results["go"].global_analysis.overall_pct("external input") < 0.05

    def test_uninit_is_negligible(self, suite_results):
        for result in suite_results.values():
            assert result.global_analysis.overall_pct("uninit") < 1.0

    def test_category_breakdown_sums_to_100(self, suite_results):
        from repro.core.global_analysis import CATEGORY_ORDER

        for result in suite_results.values():
            total = sum(result.global_analysis.overall_pct(c) for c in CATEGORY_ORDER)
            assert total == pytest.approx(100.0, abs=0.01)


class TestTable4Shapes:
    def test_all_arg_repetition_far_exceeds_none(self, suite_results):
        """Section 5.2: strikingly many calls repeat all arguments; few
        repeat none."""
        for name, result in suite_results.items():
            report = result.function_analysis
            assert report.all_args_repeated_pct > report.no_args_repeated_pct, name

    def test_li_has_highest_no_arg_repetition(self, suite_results):
        """Table 4: li's fresh cons pointers give it the largest
        no-argument-repetition share (15.1% in the paper)."""
        shares = {
            n: r.function_analysis.no_args_repeated_pct for n, r in suite_results.items()
        }
        assert max(shares, key=shares.get) == "li"

    def test_substantial_all_arg_repetition(self, suite_results):
        values = [r.function_analysis.all_args_repeated_pct for r in suite_results.values()]
        assert sum(v > 50.0 for v in values) >= 5


class TestTables567Shapes:
    def test_local_breakdown_sums_to_100(self, suite_results):
        for result in suite_results.values():
            total = sum(result.local_analysis.overall_pct(c) for c in LOCAL_CATEGORIES)
            assert total == pytest.approx(100.0, abs=0.01)

    def test_prologue_epilogue_significant_for_call_heavy(self, suite_results):
        """Table 5: prologue+epilogue reaches double digits for the
        call-heavy benchmarks (vortex 24%, li 19% in the paper)."""
        for name in ("vortex", "li"):
            report = suite_results[name].local_analysis
            share = report.overall_pct("prologue") + report.overall_pct("epilogue")
            assert share > 8.0, name

    def test_prologue_equals_epilogue(self, suite_results):
        """Saves and restores pair up (Tables 5/6 show identical rows)."""
        for name, result in suite_results.items():
            report = result.local_analysis
            assert report.overall_pct("prologue") == pytest.approx(
                report.overall_pct("epilogue"), abs=1.0
            ), name

    def test_ijpeg_heap_dominates_global(self, suite_results):
        """Table 5: ijpeg's data lives on the heap (55.6% vs 3.1%)."""
        report = suite_results["ijpeg"].local_analysis
        assert report.overall_pct("heap") > report.overall_pct("global")

    def test_go_and_compress_are_global_heavy(self, suite_results):
        """Table 5: go (54%) and compress (56%) lead on global slices and
        use no heap at all."""
        for name in ("go", "compress"):
            report = suite_results[name].local_analysis
            assert report.overall_pct("global") > 10.0, name
            assert report.overall_pct("heap") == 0.0, name

    def test_every_category_amenable_to_repetition(self, suite_results):
        """Table 7: non-trivial categories show high propensity."""
        for name, result in suite_results.items():
            report = result.local_analysis
            for category in LOCAL_CATEGORIES:
                if report.overall_pct(category) > 5.0:
                    assert report.propensity_pct(category) > 20.0, (name, category)

    def test_returns_repeat_near_perfectly(self, suite_results):
        """Table 7: the return category shows ~100% propensity."""
        for name, result in suite_results.items():
            report = result.local_analysis
            if report.categories["return"].total > 100:
                assert report.propensity_pct("return") > 90.0, name


class TestTable8Shape:
    def test_almost_no_pure_functions(self, suite_results):
        """Section 6 / Table 8: almost all functions have side effects or
        implicit inputs; memoization candidates are scarce."""
        values = [r.function_analysis.pure_pct for r in suite_results.values()]
        assert sum(v < 5.0 for v in values) >= 6
        assert all(v < 35.0 for v in values)


class TestFigure5Shape:
    def test_top5_rarely_covers_everything(self, suite_results):
        """Figure 5: specializing for the top-5 argument sets does not
        cover most of the all-argument repetition for most benchmarks."""
        below_half = sum(
            1
            for r in suite_results.values()
            if r.function_analysis.top_k_coverage[4] < 50.0
        )
        assert below_half >= 3

    def test_coverage_monotone_in_k(self, suite_results):
        for result in suite_results.values():
            coverage = list(result.function_analysis.top_k_coverage)
            assert coverage == sorted(coverage)


class TestFigure6Shape:
    def test_coverage_monotone_and_partial(self, suite_results):
        """Figure 6: the most frequent value covers a sizeable share of a
        load's repetition, but several values are needed for most of it."""
        for name, result in suite_results.items():
            coverage = list(result.value_profile.top_k_coverage)
            assert coverage == sorted(coverage), name
            assert coverage[0] > 5.0, name
            assert coverage[0] < 100.0 or coverage[4] == 100.0


class TestTable10Shape:
    def test_reuse_buffer_captures_large_minority(self, suite_results):
        """Table 10 vs Table 1: the buffer captures much repetition but
        leaves clear room for improvement."""
        for name, result in suite_results.items():
            captured = result.reuse.repeated_share_pct(
                result.repetition.dynamic_repeated
            )
            assert 25.0 < captured < 98.0, f"{name}: {captured:.1f}%"

    def test_capture_below_total_repetition(self, suite_results):
        for name, result in suite_results.items():
            assert result.reuse.hit_pct <= result.repetition.dynamic_repeated_pct, name


class TestInputSensitivity:
    """Section 3: a second input set shows the same trends."""

    def test_repetition_trend_stable(self, suite_results, secondary_results):
        for name in WORKLOAD_ORDER:
            primary = suite_results[name].repetition.dynamic_repeated_pct
            secondary = secondary_results[name].repetition.dynamic_repeated_pct
            assert abs(primary - secondary) < 20.0, name

    def test_hardwired_dominance_stable(self, suite_results, secondary_results):
        for name in WORKLOAD_ORDER:
            report = secondary_results[name].global_analysis
            hardwired = report.overall_pct("internals") + report.overall_pct(
                "global init data"
            )
            assert hardwired > 55.0, name

    def test_argument_repetition_trend_stable(self, suite_results, secondary_results):
        for name in WORKLOAD_ORDER:
            report = secondary_results[name].function_analysis
            assert report.all_args_repeated_pct > report.no_args_repeated_pct, name
