"""Methodology-level integration tests.

These validate the experimental machinery itself: the paper's
skip-then-measure window, scaling behaviour, trace record/replay
equivalence on a full workload, and determinism of the whole pipeline.
"""

from __future__ import annotations

import pytest

from repro.core import RepetitionTracker
from repro.harness import SuiteConfig, run_workload
from repro.sim import Simulator, Trace, TraceRecorder
from repro.workloads import get_workload


class TestSkipWindow:
    """The paper skips initialization before measuring (Section 3)."""

    def test_skip_reduces_analyzed_count(self):
        workload = get_workload("compress")
        data = workload.primary_input(1)
        full = Simulator(workload.program(), input_data=data).run()
        tracker = RepetitionTracker()
        skipped = Simulator(
            workload.program(), input_data=data, analyzers=[tracker]
        ).run(skip=20_000)
        assert skipped.total_instructions == full.total_instructions
        assert skipped.analyzed_instructions == full.total_instructions - 20_000
        assert tracker.dynamic_total == skipped.analyzed_instructions

    def test_skip_excludes_initialization_effects(self):
        """Measured over the steady state only, repetition is still high —
        the paper's argument that windows are representative."""
        workload = get_workload("m88ksim")
        tracker = RepetitionTracker()
        Simulator(
            workload.program(),
            input_data=workload.primary_input(1),
            analyzers=[tracker],
        ).run(skip=30_000)
        assert tracker.dynamic_total > 10_000
        report = tracker.report()
        assert report.dynamic_repeated_pct > 80.0

    def test_harness_skip_config(self):
        config = SuiteConfig(skip_instructions=10_000, limit_instructions=20_000)
        result = run_workload(get_workload("go"), config)
        assert result.run.analyzed_instructions <= 20_000
        assert result.repetition.dynamic_total == result.run.analyzed_instructions


class TestScaling:
    def test_scale_grows_dynamic_count(self):
        small = run_workload(get_workload("li"), SuiteConfig(scale=1))
        large = run_workload(get_workload("li"), SuiteConfig(scale=2))
        assert (
            large.run.analyzed_instructions > 1.5 * small.run.analyzed_instructions
        )

    def test_repetition_stable_across_scale(self):
        """Longer runs must not change the qualitative picture."""
        small = run_workload(get_workload("li"), SuiteConfig(scale=1))
        large = run_workload(get_workload("li"), SuiteConfig(scale=2))
        assert abs(
            small.repetition.dynamic_repeated_pct
            - large.repetition.dynamic_repeated_pct
        ) < 15.0


class TestTraceEquivalence:
    def test_workload_trace_replay_matches_live(self):
        """Record once, replay into a fresh tracker: identical totals."""
        workload = get_workload("compress")
        data = workload.primary_input(1)

        recorder = TraceRecorder()
        live = RepetitionTracker()
        Simulator(
            workload.program(), input_data=data, analyzers=[recorder, live]
        ).run(limit=40_000)

        replayed = RepetitionTracker()
        recorder.trace().replay([replayed])
        assert replayed.dynamic_total == live.dynamic_total
        assert replayed.dynamic_repeated == live.dynamic_repeated
        assert (
            replayed.report().unique_repeatable_instances
            == live.report().unique_repeatable_instances
        )

    def test_trace_serialization_on_workload(self, tmp_path):
        import io

        workload = get_workload("li")
        recorder = TraceRecorder()
        program = workload.program()
        Simulator(
            program, input_data=workload.primary_input(1), analyzers=[recorder]
        ).run(limit=20_000)
        trace = recorder.trace()
        buffer = io.BytesIO()
        trace.save(buffer)
        buffer.seek(0)
        loaded = Trace.load(buffer, program)
        a, b = RepetitionTracker(), RepetitionTracker()
        trace.replay([a])
        loaded.replay([b])
        assert a.dynamic_repeated == b.dynamic_repeated


class TestDeterminism:
    def test_full_pipeline_bit_identical(self):
        """Two complete runs of a workload under the full analyzer stack
        produce identical reports (the repo's reproducibility guarantee)."""
        from repro.harness.runner import clear_cache

        config = SuiteConfig(scale=1, limit_instructions=30_000)
        first = run_workload(get_workload("perl"), config)
        clear_cache()
        second = run_workload(get_workload("perl"), config)
        assert first.repetition.dynamic_repeated == second.repetition.dynamic_repeated
        assert first.run.output == second.run.output
        assert (
            first.local_analysis.categories["arguments"].total
            == second.local_analysis.categories["arguments"].total
        )
        assert first.reuse.reuse_hits == second.reuse.reuse_hits
