"""Tests for trace segmentation and dataflow summarization."""

from __future__ import annotations

from repro.isa.convention import DATA_BASE, TEXT_BASE
from repro.traces.builder import (
    REASON_CALL,
    REASON_OVERLAP,
    REASON_RETURN,
    REASON_SYSCALL,
    REASON_UNTRACKED_STORE,
    TraceBuilder,
    step_next_pc,
)
from repro.traces.trace import (
    BOUNDARY_END,
    BOUNDARY_EXCLUDE,
    BOUNDARY_NONE,
    CLASS_ALU,
    CLASS_BRANCH,
    CLASS_LOAD,
    CLASS_STORE,
    boundary_kind,
)

from tests.helpers import make_instruction, make_step

PC = TEXT_BASE


def alu(pc, rd, rs, rt, a, b):
    return make_step(
        pc=pc, op="addu", inputs=(a, b), outputs=((a + b) & 0xFFFFFFFF,),
        dest_reg=rd, dest_value=(a + b) & 0xFFFFFFFF, rd=rd, rs=rs, rt=rt,
    )


def load(pc, rt, rs, addr, value):
    return make_step(
        pc=pc, op="lw", inputs=(addr,), outputs=(value,), dest_reg=rt,
        dest_value=value, mem_addr=addr, rt=rt, rs=rs,
    )


def store(pc, rt, rs, addr, value):
    return make_step(
        pc=pc, op="sw", inputs=(value, addr), outputs=(), mem_addr=addr,
        store_value=value, rt=rt, rs=rs,
    )


def branch(pc, rs, rt, a, b, taken, target):
    return make_step(
        pc=pc, op="beq", inputs=(a, b), outputs=(1,) if taken else (0,),
        rs=rs, rt=rt, target=target,
    )


class TestBoundaries:
    def test_straight_line_is_interior(self):
        assert boundary_kind(make_instruction("addu", rd=8, rs=9, rt=10)) == BOUNDARY_NONE
        assert boundary_kind(make_instruction("lw", rt=8, rs=9)) == BOUNDARY_NONE

    def test_branches_and_jumps_end_traces(self):
        assert boundary_kind(make_instruction("beq", rs=8, rt=9)) == BOUNDARY_END
        assert boundary_kind(make_instruction("j", target=PC)) == BOUNDARY_END
        # Computed jump through a non-return register ends a trace too.
        assert boundary_kind(make_instruction("jr", rs=8)) == BOUNDARY_END

    def test_calls_returns_syscalls_are_excluded(self):
        assert boundary_kind(make_instruction("jal", target=PC)) == BOUNDARY_EXCLUDE
        assert boundary_kind(make_instruction("jalr", rd=31, rs=8)) == BOUNDARY_EXCLUDE
        assert boundary_kind(make_instruction("jr", rs=31)) == BOUNDARY_EXCLUDE
        assert boundary_kind(make_instruction("syscall")) == BOUNDARY_EXCLUDE


class TestStepNextPc:
    def test_fallthrough(self):
        assert step_next_pc(alu(PC, 8, 9, 10, 1, 2)) == PC + 4

    def test_branch_direction(self):
        assert step_next_pc(branch(PC, 8, 9, 5, 5, True, PC + 64)) == PC + 64
        assert step_next_pc(branch(PC, 8, 9, 5, 6, False, PC + 64)) == PC + 4

    def test_computed_jump_uses_observed_target(self):
        record = make_step(pc=PC, op="jr", inputs=(PC + 128,), rs=8)
        assert step_next_pc(record) == PC + 128


class TestDataflow:
    def test_live_in_and_live_out_registers(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(alu(PC, 8, 9, 10, a=5, b=7))          # r8 = r9 + r10
        builder.feed(alu(PC + 4, 12, 8, 9, a=12, b=5))     # r12 = r8 + r9
        builder.feed(branch(PC + 8, 12, 11, 17, 0, False, PC))
        trace = builder.build(PC + 12)
        # r8/r12 are produced in-trace; r9, r10, r11 come from outside.
        assert trace.reg_in == ((9, 5), (10, 7), (11, 0))
        assert dict(trace.reg_out) == {8: 12, 12: 17}
        assert trace.length == 3
        assert trace.end_pc == PC + 12

    def test_class_counts(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(alu(PC, 8, 9, 10, 1, 2))
        builder.feed(load(PC + 4, 8, 9, DATA_BASE, 42))
        builder.feed(store(PC + 8, 8, 9, DATA_BASE, 42))
        builder.feed(branch(PC + 12, 8, 9, 1, 1, True, PC))
        trace = builder.build(PC)
        assert trace.class_counts[CLASS_ALU] == 1
        assert trace.class_counts[CLASS_LOAD] == 1
        assert trace.class_counts[CLASS_STORE] == 1
        assert trace.class_counts[CLASS_BRANCH] == 1

    def test_load_from_untouched_memory_is_live_in(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(load(PC, 8, 9, DATA_BASE, 42))
        trace = builder.build(PC + 4)
        assert trace.mem_in == ((DATA_BASE, 4, 42),)

    def test_load_covered_by_in_trace_store_is_internal(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(store(PC, 8, 9, DATA_BASE, 7))
        builder.feed(load(PC + 4, 10, 9, DATA_BASE, 7))
        trace = builder.build(PC + 8)
        assert trace.mem_in == ()
        assert builder.unsafe is None

    def test_partially_covered_load_poisons(self):
        builder = TraceBuilder(PC, max_len=16)
        # Store one byte, then load the word containing it.
        builder.feed(
            make_step(
                pc=PC, op="sb", inputs=(7, DATA_BASE), mem_addr=DATA_BASE,
                store_value=7, rt=8, rs=9,
            )
        )
        builder.feed(load(PC + 4, 10, 9, DATA_BASE, 0x0000_0007))
        assert builder.unsafe == REASON_OVERLAP

    def test_duplicate_loads_recorded_once(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(load(PC, 8, 9, DATA_BASE, 42))
        builder.feed(load(PC + 4, 10, 9, DATA_BASE, 42))
        assert builder.mem_live_ins == ((DATA_BASE, 4, 42),)

    def test_signed_byte_load_records_raw_byte(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(
            make_step(
                pc=PC, op="lb", inputs=(DATA_BASE,), outputs=(0xFFFFFFFF,),
                dest_reg=8, dest_value=0xFFFFFFFF, mem_addr=DATA_BASE, rt=8, rs=9,
            )
        )
        # The live-in holds the unextended memory byte, 0xFF.
        assert builder.mem_live_ins == ((DATA_BASE, 1, 0xFF),)

    def test_hi_lo_tracking(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(make_step(pc=PC, op="mfhi", inputs=(3,), outputs=(3,),
                               dest_reg=8, dest_value=3, rd=8))
        builder.feed(make_step(pc=PC + 4, op="mult", inputs=(2, 5),
                               outputs=(0, 10), rs=9, rt=10))
        builder.feed(make_step(pc=PC + 8, op="mflo", inputs=(10,), outputs=(10,),
                               dest_reg=11, dest_value=10, rd=11))
        trace = builder.build(PC + 12)
        # mfhi before the mult reads external hi; mflo after it does not.
        assert trace.hi_lo_in == ((True, 3),)
        assert trace.hi_lo_out == (0, 10)


class TestUnsafeMarkers:
    def test_syscall_marks_unsafe(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(make_step(pc=PC, op="syscall", inputs=(1, 42)))
        assert builder.unsafe == REASON_SYSCALL

    def test_call_marks_unsafe(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(make_step(pc=PC, op="jal", target=PC + 64,
                               dest_reg=31, dest_value=PC + 4))
        assert builder.unsafe == REASON_CALL

    def test_return_marks_unsafe(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(make_step(pc=PC, op="jr", inputs=(PC + 4,), rs=31))
        assert builder.unsafe == REASON_RETURN

    def test_store_outside_tracked_segments_marks_unsafe(self):
        builder = TraceBuilder(PC, max_len=16)
        # A store into the text segment: self-modifying-code adjacent.
        builder.feed(store(PC, 8, 9, TEXT_BASE + 0x100, 1))
        assert builder.unsafe == REASON_UNTRACKED_STORE

    def test_tracked_store_stays_safe(self):
        builder = TraceBuilder(PC, max_len=16)
        builder.feed(store(PC, 8, 9, DATA_BASE, 1))
        assert builder.unsafe is None
        assert builder.build(PC + 4).stores == ((DATA_BASE, 4, 1),)
