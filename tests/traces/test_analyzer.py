"""Tests for the analyzer-only trace reuse characterization."""

from __future__ import annotations

from repro.isa.convention import DATA_BASE, TEXT_BASE
from repro.traces.analyzer import TraceReuseAnalyzer, length_bucket
from repro.traces.builder import REASON_SYSCALL, REASON_TOO_SHORT

from tests.helpers import make_step

PC = TEXT_BASE


def alu(pc, rd=8, rs=9, rt=10, a=5, b=7):
    total = (a + b) & 0xFFFFFFFF
    return make_step(pc=pc, op="addu", inputs=(a, b), outputs=(total,),
                     dest_reg=rd, dest_value=total, rd=rd, rs=rs, rt=rt)


def branch(pc, taken=False, target=None, rs=9, rt=10, a=5, b=7):
    return make_step(
        pc=pc, op="beq", inputs=(a, b), outputs=(1,) if taken else (0,),
        rs=rs, rt=rt, target=target if target is not None else pc + 32,
    )


def load(pc, addr, value, rt=8, rs=9, base=0):
    return make_step(pc=pc, op="lw", inputs=(addr - base,), outputs=(value,),
                     dest_reg=rt, dest_value=value, mem_addr=addr, rt=rt, rs=rs)


def store(pc, addr, value, rt=8, rs=9):
    return make_step(pc=pc, op="sw", inputs=(value, addr), outputs=(),
                     mem_addr=addr, store_value=value, rt=rt, rs=rs)


def region(base=PC):
    """A 3-instruction region: two ALU ops then an untaken branch."""
    return [
        alu(base, rd=8, rs=9, rt=10, a=5, b=7),
        alu(base + 4, rd=11, rs=8, rt=9, a=12, b=5),
        branch(base + 8, taken=False, rs=11, rt=10, a=17, b=7),
    ]


def feed(analyzer, records):
    for record in records:
        analyzer.on_step(record)


class TestLengthBucket:
    def test_buckets(self):
        assert length_bucket(1) == "1"
        assert length_bucket(3) == "3"
        assert length_bucket(5) == "4-7"
        assert length_bucket(15) == "8-15"
        assert length_bucket(16) == "16+"
        assert length_bucket(100) == "16+"


class TestAccounting:
    def test_repeated_region_hits_exactly_once(self):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, region())
        feed(analyzer, region())
        report = analyzer.report()
        assert report.dynamic_total == 6
        assert report.probes == 2
        assert report.misses == 1
        assert report.hits == 1
        assert report.covered_instructions == 3
        assert report.traces_recorded == 1
        assert report.coverage_pct == 50.0
        assert report.hit_rate_pct == 50.0
        assert report.mean_hit_length == 3.0
        assert report.hit_length_hist["3"] == 1
        assert report.hit_length_pct("3") == 100.0
        # Two ALU + one branch instruction covered.
        assert report.class_coverage_pct("alu") == 100.0 * 2 / 3
        assert report.class_coverage_pct("branch") == 100.0 * 1 / 3

    def test_changed_live_in_misses(self):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, region())
        # An intervening region rewrites live-in r9, so revisiting the
        # same pcs must miss even though the trace is resident.
        feed(analyzer, [
            alu(PC + 0x100, rd=9, rs=4, rt=5, a=4, b=2),
            branch(PC + 0x104, taken=True, target=PC, rs=9, rt=5, a=6, b=2),
        ])
        feed(analyzer, [
            alu(PC, rd=8, rs=9, rt=10, a=6, b=7),
            alu(PC + 4, rd=11, rs=8, rt=9, a=13, b=6),
            branch(PC + 8, taken=False, rs=11, rt=10, a=19, b=7),
        ])
        report = analyzer.report()
        assert report.hits == 0
        assert report.misses == 3
        assert report.traces_recorded == 3

    def test_unknown_shadow_value_conservatively_misses(self):
        analyzer = TraceReuseAnalyzer()
        # Install a trace whose live-in r20 the shadow will forget about
        # after a fresh analyzer starts.
        feed(analyzer, [
            alu(PC, rd=8, rs=20, rt=21, a=1, b=2),
            branch(PC + 4, rs=8, rt=21, a=3, b=2),
        ])
        fresh = TraceReuseAnalyzer()
        fresh.table = analyzer.table
        feed(fresh, [branch(PC + 100, rs=22, rt=23, a=0, b=0)])
        # Probe at PC with unknown r20 must miss even though the trace is
        # resident with r20=1 recorded.
        fresh.on_step(alu(PC, rd=8, rs=20, rt=21, a=1, b=2))
        assert fresh.hits == 0


class TestBoundaries:
    def test_syscall_cuts_region_before_itself(self):
        analyzer = TraceReuseAnalyzer()
        records = [
            alu(PC), alu(PC + 4),
            make_step(pc=PC + 8, op="syscall", inputs=(1, 42)),
        ]
        feed(analyzer, records)
        feed(analyzer, records)
        report = analyzer.report()
        # The 2-alu prefix is recorded and later hit; the syscall itself
        # is neither probed nor part of any trace.
        assert report.traces_recorded == 1
        assert report.hits == 1
        assert report.covered_instructions == 2
        assert report.rejections == {}

    def test_lone_syscall_region_records_nothing(self):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, [
            branch(PC, taken=False),
            make_step(pc=PC + 4, op="syscall", inputs=(1, 42)),
            branch(PC + 8, taken=False),
        ])
        report = analyzer.report()
        assert report.probes == 2  # the two branches; not the syscall
        assert REASON_SYSCALL not in report.rejections

    def test_single_instruction_region_rejected_too_short(self):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, [branch(PC, taken=False)])
        assert analyzer.report().rejections == {REASON_TOO_SHORT: 1}

    def test_max_len_splits_region(self):
        analyzer = TraceReuseAnalyzer(max_trace_len=4)
        records = [alu(PC + 4 * i, rd=8, rs=0, rt=0, a=0, b=0) for i in range(10)]
        records.append(branch(PC + 40, taken=True, target=PC, rs=0, rt=0, a=0, b=0))
        feed(analyzer, records)
        feed(analyzer, records)
        report = analyzer.report()
        # 11 straight-line steps split into 4+4+3; the second pass hits
        # all three pieces.
        assert report.traces_recorded == 3
        assert report.hits == 3
        assert report.covered_instructions == 11


class TestInvalidation:
    def test_store_invalidates_memory_dependent_trace(self):
        analyzer = TraceReuseAnalyzer()
        loads = [
            load(PC, DATA_BASE, 7),
            branch(PC + 4, rs=8, rt=10, a=7, b=9),
        ]
        feed(analyzer, loads)
        feed(analyzer, loads)
        assert analyzer.hits == 1
        # A store to the live-in word evicts the trace; the next visit
        # must miss and re-record.  The store's own region ends with a
        # branch over registers the load region does not read.
        feed(analyzer, [
            store(PC + 36, DATA_BASE, 99, rt=11, rs=12),
            branch(PC + 40, rs=12, rt=13, a=0, b=1),
        ])
        feed(analyzer, loads)
        report = analyzer.report()
        assert report.invalidations == 1
        assert report.hits == 1
        assert report.misses == 3
        assert report.probes == 4


class TestMetrics:
    def test_on_finish_publishes_counters(self, metrics_enabled):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, region())
        feed(analyzer, region())
        analyzer.on_finish()
        assert metrics_enabled.value("trace.probes") == 2
        assert metrics_enabled.value("trace.hits") == 1
        assert metrics_enabled.value("trace.covered_instructions") == 3
        assert metrics_enabled.value("trace.recorded") == 1
        assert metrics_enabled.value("trace.rejected") == 0
        assert metrics_enabled.snapshot()["gauges"]["trace.occupancy"] == 1

    def test_disabled_registry_stays_silent(self):
        analyzer = TraceReuseAnalyzer()
        feed(analyzer, region())
        analyzer.on_finish()  # must not raise, must not record
