"""Tests for the associative trace reuse table."""

from __future__ import annotations

import pytest

from repro.isa.convention import DATA_BASE, TEXT_BASE
from repro.traces.builder import TraceBuilder
from repro.traces.table import TraceReuseTable

from tests.helpers import make_step

PC = TEXT_BASE
NUM_REGS = 32


def make_trace(start_pc, reg=9, value=5, mem_addr=None):
    """A two-instruction trace reading ``reg`` (and optionally memory)."""
    builder = TraceBuilder(start_pc, max_len=16)
    if mem_addr is not None:
        builder.feed(
            make_step(pc=start_pc, op="lw", inputs=(mem_addr,), outputs=(7,),
                      dest_reg=8, dest_value=7, mem_addr=mem_addr, rt=8, rs=reg)
        )
    else:
        builder.feed(
            make_step(pc=start_pc, op="addu", inputs=(value, 1),
                      outputs=(value + 1,), dest_reg=8, dest_value=value + 1,
                      rd=8, rs=reg, rt=10)
        )
    builder.feed(
        make_step(pc=start_pc + 4, op="addu", inputs=(value, value),
                  outputs=(2 * value,), dest_reg=11, dest_value=2 * value,
                  rd=11, rs=reg, rt=reg)
    )
    return builder.build(start_pc + 8)


def regs_for(trace):
    regs = [0] * NUM_REGS
    for reg, value in trace.reg_in:
        regs[reg] = value
    return regs


class TestGeometry:
    def test_capacity_must_divide_by_ways(self):
        with pytest.raises(ValueError):
            TraceReuseTable(capacity=10, ways=4)

    def test_max_trace_len_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceReuseTable(max_trace_len=0)

    def test_defaults(self):
        table = TraceReuseTable()
        assert table.capacity == 1024
        assert table.ways == 4
        assert table.num_sets == 256


class TestLookup:
    def test_install_then_hit(self):
        table = TraceReuseTable()
        trace = make_trace(PC)
        table.install(trace)
        assert table.lookup(PC, regs_for(trace), 0, 0) is trace
        assert table.installs == 1

    def test_miss_on_stale_register(self):
        table = TraceReuseTable()
        trace = make_trace(PC, value=5)
        table.install(trace)
        regs = regs_for(trace)
        regs[9] += 1
        assert table.lookup(PC, regs, 0, 0) is None

    def test_miss_on_unknown_pc(self):
        table = TraceReuseTable()
        table.install(make_trace(PC))
        assert table.lookup(PC + 0x100, [0] * NUM_REGS, 0, 0) is None
        assert table.entries_at(PC + 0x100) is None

    def test_hit_promotes_to_mru(self):
        table = TraceReuseTable(capacity=8, ways=2)
        # Same set, same start pc, different live-in values.
        first = make_trace(PC, value=5)
        second = make_trace(PC, value=6)
        table.install(first)
        table.install(second)  # second is now MRU
        table.lookup(PC, regs_for(first), 0, 0)
        assert table.entries_at(PC)[0] is first


class TestEviction:
    def test_lru_evicted_when_set_full(self):
        table = TraceReuseTable(capacity=2, ways=2)
        traces = [make_trace(PC, value=v) for v in (5, 6, 7)]
        for trace in traces:
            table.install(trace)
        assert table.evictions == 1
        assert table.occupancy == 2
        # The value=5 trace was LRU and is gone; the others remain.
        assert table.lookup(PC, regs_for(traces[0]), 0, 0) is None
        assert table.lookup(PC, regs_for(traces[2]), 0, 0) is traces[2]

    def test_same_signature_replaces_in_place(self):
        table = TraceReuseTable(capacity=2, ways=2)
        first = make_trace(PC, value=5)
        clone = make_trace(PC, value=5)
        table.install(first)
        table.install(clone)
        assert table.occupancy == 1
        assert table.evictions == 0
        assert table.lookup(PC, regs_for(clone), 0, 0) is clone


class TestInvalidation:
    def test_store_kills_traces_with_touched_live_ins(self):
        table = TraceReuseTable()
        dependent = make_trace(PC, mem_addr=DATA_BASE)
        bystander = make_trace(PC + 0x40)
        table.install(dependent)
        table.install(bystander)
        assert table.invalidate_store(DATA_BASE, 4) == 1
        assert table.invalidations == 1
        assert table.lookup(PC, regs_for(dependent), 0, 0) is None
        assert table.lookup(PC + 0x40, regs_for(bystander), 0, 0) is bystander

    def test_word_granularity(self):
        table = TraceReuseTable()
        # Live-in at DATA_BASE+4; a byte store at DATA_BASE+6 shares its word.
        table.install(make_trace(PC, mem_addr=DATA_BASE + 4))
        assert table.invalidate_store(DATA_BASE + 6, 1) == 1
        # A store to the neighbouring word touches nothing.
        assert table.invalidate_store(DATA_BASE + 8, 4) == 0
        assert table.occupancy == 0

    def test_memory_validation_in_lookup(self):
        table = TraceReuseTable()
        trace = make_trace(PC, mem_addr=DATA_BASE)
        table.install(trace)

        class Memory:
            def __init__(self, value):
                self.value = value

            def read_word(self, address):
                return self.value

        assert table.lookup(PC, regs_for(trace), 0, 0, Memory(7)) is trace
        assert table.lookup(PC, regs_for(trace), 0, 0, Memory(8)) is None
