"""Tests for the trace safety filter."""

from __future__ import annotations

from repro.isa.convention import DATA_BASE, STACK_TOP, TEXT_BASE
from repro.traces.builder import (
    REASON_IMPLICIT_INPUT,
    REASON_SYSCALL,
    REASON_TOO_LONG,
    REASON_TOO_SHORT,
    TraceBuilder,
)
from repro.traces.safety import SafetyPolicy, check_candidate

from tests.helpers import make_step

PC = TEXT_BASE


def _alu(pc):
    return make_step(pc=pc, op="addu", inputs=(1, 2), outputs=(3,),
                     dest_reg=8, dest_value=3, rd=8, rs=9, rt=10)


def _load(pc, addr):
    return make_step(pc=pc, op="lw", inputs=(addr,), outputs=(7,),
                     dest_reg=8, dest_value=7, mem_addr=addr, rt=8, rs=9)


def _fed(records, max_len=16):
    builder = TraceBuilder(records[0].pc, max_len=max_len)
    for record in records:
        builder.feed(record)
    return builder


class TestCheckCandidate:
    def test_clean_candidate_passes(self):
        builder = _fed([_alu(PC), _alu(PC + 4)])
        assert check_candidate(builder) is None

    def test_unsafe_marker_wins_over_length(self):
        # A single syscall is both unsafe and too short; the structural
        # violation is the reported reason.
        builder = _fed([make_step(pc=PC, op="syscall", inputs=(1, 42))])
        assert check_candidate(builder) == REASON_SYSCALL

    def test_too_short(self):
        builder = _fed([_alu(PC)])
        assert check_candidate(builder) == REASON_TOO_SHORT

    def test_min_len_configurable(self):
        builder = _fed([_alu(PC)])
        assert check_candidate(builder, SafetyPolicy(min_len=1)) is None

    def test_too_long(self):
        builder = _fed([_alu(PC + 4 * i) for i in range(3)], max_len=2)
        assert check_candidate(builder) == REASON_TOO_LONG

    def test_strict_policy_rejects_global_live_in(self):
        builder = _fed([_alu(PC), _load(PC + 4, DATA_BASE)])
        assert check_candidate(builder) is None
        strict = SafetyPolicy(allow_memory_live_ins=False)
        assert check_candidate(builder, strict) == REASON_IMPLICIT_INPUT

    def test_strict_policy_admits_stack_live_in(self):
        # Stack loads are explicit inputs in the paper's §5.2 sense.
        builder = _fed([_alu(PC), _load(PC + 4, STACK_TOP - 64)])
        strict = SafetyPolicy(allow_memory_live_ins=False)
        assert check_candidate(builder, strict) is None
