"""Shared test utilities: synthetic step records and run helpers."""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from repro.asm import Program, assemble
from repro.isa.instructions import Instruction, OPCODES
from repro.lang import compile_source
from repro.sim import Simulator, StepRecord
from repro.sim.simulator import RunResult

_INDEX = itertools.count(1)


def make_instruction(op: str = "addu", **fields: int) -> Instruction:
    """Build a decoded instruction directly (no assembler round trip)."""
    return Instruction(OPCODES[op], **fields)


def make_step(
    pc: int = 0x0040_0000,
    op: str = "addu",
    inputs: Tuple[int, ...] = (),
    outputs: Tuple[int, ...] = (),
    dest_reg: Optional[int] = None,
    dest_value: int = 0,
    mem_addr: Optional[int] = None,
    store_value: Optional[int] = None,
    index: Optional[int] = None,
    instr: Optional[Instruction] = None,
    **instr_fields: int,
) -> StepRecord:
    """Build a synthetic StepRecord for feeding analyzers directly."""
    if instr is None:
        instr = make_instruction(op, addr=pc, **instr_fields)
    return StepRecord(
        index=index if index is not None else next(_INDEX),
        pc=pc,
        instr=instr,
        inputs=inputs,
        outputs=outputs,
        dest_reg=dest_reg,
        dest_value=dest_value,
        mem_addr=mem_addr,
        store_value=store_value,
    )


def run_asm(source: str, input_data: bytes = b"", analyzers: Sequence = ()) -> RunResult:
    """Assemble and run an assembly program."""
    program = assemble(source)
    return Simulator(program, input_data=input_data, analyzers=list(analyzers)).run()


def run_minic(
    source: str, input_data: bytes = b"", analyzers: Sequence = ()
) -> RunResult:
    """Compile and run a MiniC program."""
    program = compile_source(source)
    return Simulator(program, input_data=input_data, analyzers=list(analyzers)).run()


def minic_output(source: str, input_data: bytes = b"") -> str:
    """Compile, run, and return printed output (asserting a clean stop)."""
    result = run_minic(source, input_data)
    assert result.stop_reason in ("halt", "exit"), result
    return result.output


def asm_program(source: str) -> Program:
    return assemble(source)


WRAP_MAIN = """
int main() {{
    {body}
    return 0;
}}
"""


def expr_program(expression: str, setup: str = "") -> str:
    """A MiniC program printing one integer expression."""
    body = f"{setup}\n    print_int({expression});\n    putchar('\\n');"
    return WRAP_MAIN.format(body=body)


def eval_expr(expression: str, setup: str = "", input_data: bytes = b"") -> int:
    """Compile and run a tiny program, returning the printed integer."""
    output = minic_output(expr_program(expression, setup), input_data)
    return int(output.strip())
