"""Tests for the MiniC tokenizer."""

from __future__ import annotations

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


class TestBasics:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo while bar")
        assert [t.kind for t in tokens[:4]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
        ]

    def test_numbers(self):
        tokens = tokenize("12 0x1f 0")
        assert [t.value for t in tokens[:3]] == [12, 31, 0]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\'")
        assert [t.value for t in tokens[:4]] == [97, 10, 0, 92]

    def test_string_literal(self):
        token = tokenize(r'"hi\tthere"')[0]
        assert token.kind == TokenKind.STRING
        assert token.value == "hi\tthere"

    def test_operators_longest_match(self):
        tokens = tokenize("a <<= b << c <= d < e")
        ops = [t.text for t in tokens if t.kind == TokenKind.OP]
        assert ops == ["<<=", "<<", "<=", "<"]

    def test_compound_assignment_ops(self):
        ops = [t.text for t in tokenize("+= -= *= /= %= &= |= ^=") if t.kind == TokenKind.OP]
        assert ops == ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == TokenKind.EOF


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'ab'")
