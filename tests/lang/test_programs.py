"""End-to-end program corpus: classic algorithms through the full stack.

Each program is compiled, simulated, and its output checked against a
Python reference implementation — differential testing of the compiler,
assembler, and simulator together.
"""

from __future__ import annotations

import pytest

from tests.helpers import minic_output


class TestSorting:
    BUBBLE = """
int data[12];

void sort(int *a, int n) {
    int i; int j;
    for (i = 0; i < n - 1; i += 1) {
        for (j = 0; j < n - 1 - i; j += 1) {
            if (a[j] > a[j + 1]) {
                int tmp = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
}

int main() {
    int i;
    int seed = 7;
    for (i = 0; i < 12; i += 1) {
        seed = (seed * 1103515245 + 12345) & 2147483647;
        data[i] = seed % 100;
    }
    sort(data, 12);
    for (i = 0; i < 12; i += 1) {
        print_int(data[i]);
        putchar(' ');
    }
    return 0;
}
"""

    def reference(self):
        seed = 7
        values = []
        for _ in range(12):
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF
            values.append(seed % 100)
        return sorted(values)

    def test_bubble_sort(self):
        output = minic_output(self.BUBBLE)
        assert [int(x) for x in output.split()] == self.reference()


class TestNumberTheory:
    def test_gcd(self):
        source = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
int main() {
    print_int(gcd(1071, 462)); putchar(' ');
    print_int(gcd(17, 5)); putchar(' ');
    print_int(gcd(100, 100));
    return 0;
}
"""
        assert minic_output(source) == "21 1 100"

    def test_sieve_of_eratosthenes(self):
        source = """
int is_composite[100];
int main() {
    int i; int j; int count = 0;
    for (i = 2; i < 100; i += 1) {
        if (!is_composite[i]) {
            count += 1;
            for (j = i * i; j < 100; j += i) {
                is_composite[j] = 1;
            }
        }
    }
    print_int(count);
    return 0;
}
"""
        primes_below_100 = sum(
            1
            for n in range(2, 100)
            if all(n % d for d in range(2, int(n**0.5) + 1))
        )
        assert int(minic_output(source)) == primes_below_100 == 25

    def test_collatz(self):
        source = """
int steps(int n) {
    int count = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        count += 1;
    }
    return count;
}
int main() { print_int(steps(27)); return 0; }
"""
        def collatz(n):
            count = 0
            while n != 1:
                n = n // 2 if n % 2 == 0 else 3 * n + 1
                count += 1
            return count

        assert int(minic_output(source)) == collatz(27) == 111

    def test_binary_exponentiation(self):
        source = """
int power_mod(int base, int exp, int mod) {
    int result = 1;
    base = base % mod;
    while (exp > 0) {
        if (exp & 1) { result = (result * base) % mod; }
        base = (base * base) % mod;
        exp = exp >> 1;
    }
    return result;
}
int main() { print_int(power_mod(7, 20, 10007)); return 0; }
"""
        assert int(minic_output(source)) == pow(7, 20, 10007)


class TestStrings:
    def test_string_reverse(self):
        source = """
char buf[32];
int main() {
    int n = 0;
    int c = getchar();
    int i;
    while (c >= 0 && n < 31) {
        buf[n] = c;
        n += 1;
        c = getchar();
    }
    for (i = n - 1; i >= 0; i -= 1) {
        putchar(buf[i]);
    }
    return 0;
}
"""
        assert minic_output(source, b"hello world") == "dlrow olleh"

    def test_naive_substring_search(self):
        source = """
char text[32] = "the cat sat on the mat";
char pattern[4] = "at";
int main() {
    int hits = 0;
    int i;
    for (i = 0; text[i] != 0; i += 1) {
        int j = 0;
        while (pattern[j] != 0 && text[i + j] == pattern[j]) {
            j += 1;
        }
        if (pattern[j] == 0) { hits += 1; }
    }
    print_int(hits);
    return 0;
}
"""
        assert int(minic_output(source)) == "the cat sat on the mat".count("at")

    def test_atoi(self):
        source = """
int atoi_(char *s) {
    int value = 0;
    int sign = 1;
    int i = 0;
    if (s[0] == '-') { sign = -1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + (s[i] - '0');
        i += 1;
    }
    return value * sign;
}
int main() {
    print_int(atoi_("-12345") + atoi_("678"));
    return 0;
}
"""
        assert int(minic_output(source)) == -12345 + 678


class TestMatrix:
    def test_matrix_multiply(self):
        source = """
int a[16];
int b[16];
int c[16];
int main() {
    int i; int j; int k;
    for (i = 0; i < 16; i += 1) {
        a[i] = i + 1;
        b[i] = 16 - i;
    }
    for (i = 0; i < 4; i += 1) {
        for (j = 0; j < 4; j += 1) {
            int sum = 0;
            for (k = 0; k < 4; k += 1) {
                sum += a[i * 4 + k] * b[k * 4 + j];
            }
            c[i * 4 + j] = sum;
        }
    }
    print_int(c[0]); putchar(' ');
    print_int(c[5]); putchar(' ');
    print_int(c[15]);
    return 0;
}
"""
        a = [[i * 4 + j + 1 for j in range(4)] for i in range(4)]
        b = [[16 - (i * 4 + j) for j in range(4)] for i in range(4)]
        c = [
            [sum(a[i][k] * b[k][j] for k in range(4)) for j in range(4)]
            for i in range(4)
        ]
        expected = f"{c[0][0]} {c[1][1]} {c[3][3]}"
        assert minic_output(source) == expected


class TestDataStructures:
    def test_stack_machine(self):
        source = """
int stack[32];
int sp_ = 0;
void push(int v) { stack[sp_] = v; sp_ += 1; }
int pop() { sp_ -= 1; return stack[sp_]; }
int main() {
    /* (3 + 4) * (10 - 8) */
    push(3); push(4);
    push(pop() + pop());
    push(10); push(8);
    {
        int b = pop();
        int a = pop();
        push(a - b);
    }
    {
        int y = pop();
        int x = pop();
        print_int(x * y);
    }
    return 0;
}
"""
        assert int(minic_output(source)) == (3 + 4) * (10 - 8)

    def test_linked_list_on_heap(self):
        source = """
int *nodes;
int node_count = 0;

int new_node(int value, int next) {
    int id = node_count;
    nodes[id * 2] = value;
    nodes[id * 2 + 1] = next;
    node_count += 1;
    return id;
}

int main() {
    int head = -1;
    int i; int sum = 0;
    nodes = (sbrk(1024));
    for (i = 1; i <= 10; i += 1) {
        head = new_node(i * i, head);
    }
    while (head >= 0) {
        sum += nodes[head * 2];
        head = nodes[head * 2 + 1];
    }
    print_int(sum);
    return 0;
}
"""
        assert int(minic_output(source)) == sum(i * i for i in range(1, 11))

    def test_fibonacci_memoized(self):
        source = """
int memo[40];
int fib(int n) {
    if (n < 2) { return n; }
    if (memo[n] != 0) { return memo[n]; }
    memo[n] = fib(n - 1) + fib(n - 2);
    return memo[n];
}
int main() { print_int(fib(30)); return 0; }
"""
        assert int(minic_output(source)) == 832040
