"""Differential testing: random expressions through the full stack.

Hypothesis generates random arithmetic expressions; each is compiled by
MiniC, assembled, simulated, and the printed value compared against a
Python evaluator implementing C's 32-bit semantics — covering the whole
compiler/assembler/simulator pipeline in one property.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.bits import to_s32
from tests.helpers import eval_expr


def _wrap(value: int) -> int:
    return to_s32(value & 0xFFFFFFFF)


class _Node:
    """Expression tree with a MiniC rendering and a Python evaluation."""

    def __init__(self, text: str, value: int) -> None:
        self.text = text
        self.value = value


def _leaf(value: int) -> _Node:
    return _Node(str(value), value)


def _combine(op: str, left: _Node, right: _Node) -> _Node:
    lv, rv = left.value, right.value
    if op == "+":
        value = _wrap(lv + rv)
    elif op == "-":
        value = _wrap(lv - rv)
    elif op == "*":
        value = _wrap(lv * rv)
    elif op == "/":
        if rv == 0:
            value = 0  # machine-defined
        else:
            quotient = abs(lv) // abs(rv)
            value = _wrap(-quotient if (lv < 0) != (rv < 0) else quotient)
    elif op == "%":
        if rv == 0:
            value = 0
        else:
            quotient = abs(lv) // abs(rv)
            if (lv < 0) != (rv < 0):
                quotient = -quotient
            value = _wrap(lv - quotient * rv)
    elif op == "&":
        value = _wrap(lv & rv)
    elif op == "|":
        value = _wrap(lv | rv)
    elif op == "^":
        value = _wrap(lv ^ rv)
    elif op == "<<":
        value = _wrap((lv & 0xFFFFFFFF) << (rv & 31))
    elif op == ">>":
        value = _wrap(to_s32(lv & 0xFFFFFFFF) >> (rv & 31))
    elif op == "<":
        value = int(lv < rv)
    else:
        raise AssertionError(op)
    # Mask shift amounts in the source too, so MiniC sees the same shift.
    if op in ("<<", ">>"):
        text = f"({left.text} {op} ({right.text} & 31))"
    else:
        text = f"({left.text} {op} {right.text})"
    return _Node(text, value)


_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<")


@st.composite
def expressions(draw, max_depth=4):
    depth = draw(st.integers(0, max_depth))

    def build(level: int) -> _Node:
        if level == 0 or draw(st.booleans()) and level < max_depth:
            return _leaf(draw(st.integers(-1000, 1000)))
        op = draw(st.sampled_from(_OPS))
        return _combine(op, build(level - 1), build(level - 1))

    return build(depth)


class TestRandomExpressions:
    @settings(max_examples=60, deadline=None)
    @given(expressions())
    def test_minic_matches_python_semantics(self, node):
        assert eval_expr(node.text) == node.value

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1))
    def test_any_constant_roundtrips(self, value):
        assert eval_expr(str(value)) == value

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
    def test_shift_semantics(self, value, amount):
        expected = _wrap(to_s32(value & 0xFFFFFFFF) >> amount)
        assert eval_expr(f"({value}) >> {amount}") == expected
