"""Execution tests for the switch statement."""

from __future__ import annotations

import pytest

from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import minic_output


def classify_source(body: str) -> str:
    return f"""
int classify(int v) {{
    int r = 0;
    {body}
    return r;
}}
int main() {{
    int i;
    for (i = 0; i < 6; i++) {{
        print_int(classify(i));
    }}
    return 0;
}}
"""


class TestDispatch:
    def test_basic_cases_with_breaks(self):
        body = """
    switch (v) {
        case 0: r = 10; break;
        case 1: r = 11; break;
        case 2: r = 12; break;
        default: r = 99; break;
    }
"""
        assert minic_output(classify_source(body)) == "101112999999"

    def test_no_default_falls_past(self):
        body = """
    r = 7;
    switch (v) {
        case 1: r = 1; break;
    }
"""
        assert minic_output(classify_source(body)) == "717777"

    def test_fallthrough(self):
        body = """
    switch (v) {
        case 0:
        case 1:
            r += 1;     /* 0 and 1 share the arm */
        case 2:
            r += 10;    /* 0,1,2 all run this */
            break;
        default:
            r = 50;
    }
"""
        # v=0: 11, v=1: 11, v=2: 10, v=3..5: 50.
        assert minic_output(classify_source(body)) == "111110505050"

    def test_default_in_middle(self):
        body = """
    switch (v) {
        case 0: r = 1; break;
        default: r = 8; break;
        case 2: r = 3; break;
    }
"""
        assert minic_output(classify_source(body)) == "183888"

    def test_negative_and_char_case_values(self):
        source = """
int main() {
    int v = -2;
    switch (v) {
        case -2: print_int(1); break;
        case 'a': print_int(2); break;
        default: print_int(3);
    }
    switch ('a') {
        case 'a': print_int(4); break;
        default: print_int(5);
    }
    return 0;
}
"""
        assert minic_output(source) == "14"

    def test_break_binds_to_switch_continue_to_loop(self):
        source = """
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 6; i++) {
        switch (i % 3) {
            case 0: continue;      /* next loop iteration */
            case 1: s += 1; break; /* leaves the switch only */
            default: s += 10;
        }
        s += 100;                  /* runs for i%3 != 0 */
    }
    print_int(s);
    return 0;
}
"""
        # i=1,4: +1 +100 each; i=2,5: +10 +100 each; i=0,3: skipped.
        assert minic_output(source) == str(2 * 101 + 2 * 110)

    def test_switch_in_interpreter_style_loop(self):
        source = """
int run(int op, int a, int b) {
    switch (op) {
        case 0: return a + b;
        case 1: return a - b;
        case 2: return a * b;
        case 3: return b == 0 ? 0 : a / b;
        default: return -1;
    }
}
int main() {
    print_int(run(0, 6, 2));
    print_int(run(1, 6, 2));
    print_int(run(2, 6, 2));
    print_int(run(3, 6, 2));
    print_int(run(9, 6, 2));
    return 0;
}
"""
        assert minic_output(source) == "84123-1"

    def test_optimizer_preserves_switch(self):
        from repro.lang import compile_source
        from repro.sim import Simulator

        source = classify_source(
            """
    switch (v * 1 + 0) {
        case 0: r = 2 + 3; break;
        case 1: r = 10; break;
        default: r = 0;
    }
"""
        )
        plain = Simulator(compile_source(source)).run()
        optimized = Simulator(compile_source(source, optimize=True)).run()
        assert plain.output == optimized.output


class TestSemaRules:
    def test_duplicate_case_rejected(self):
        with pytest.raises(SemaError, match="duplicate case"):
            analyze(
                parse(
                    "int main() { switch (1) { case 2: break; case 2: break; } return 0; }"
                )
            )

    def test_multiple_defaults_rejected(self):
        with pytest.raises(SemaError, match="default"):
            analyze(
                parse(
                    "int main() { switch (1) { default: break; default: break; } return 0; }"
                )
            )

    def test_continue_inside_bare_switch_rejected(self):
        with pytest.raises(SemaError, match="continue"):
            analyze(
                parse(
                    "int main() { switch (1) { case 1: continue; } return 0; }"
                )
            )

    def test_break_inside_switch_allowed_outside_loop(self):
        analyze(parse("int main() { switch (1) { case 1: break; } return 0; }"))

    def test_pointer_selector_rejected(self):
        with pytest.raises(SemaError, match="arithmetic"):
            analyze(
                parse(
                    "int main() { int *p = 0; switch (p) { case 0: break; } return 0; }"
                )
            )
