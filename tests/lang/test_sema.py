"""Tests for MiniC semantic analysis: typing rules and error detection."""

from __future__ import annotations

import pytest

from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lang.types import INT, PointerType


def check(source):
    return analyze(parse(source))


def check_body(body, prelude=""):
    return check(f"{prelude}\nint main() {{ {body} return 0; }}")


class TestPrograms:
    def test_main_required(self):
        with pytest.raises(SemaError, match="main"):
            check("int f() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemaError, match="redefinition"):
            check("int f() { return 0; } int f() { return 1; } int main() { return 0; }")

    def test_duplicate_global(self):
        with pytest.raises(SemaError, match="redefinition"):
            check("int x; int x; int main() { return 0; }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemaError, match="redefinition"):
            check("int getchar() { return 1; } int main() { return 0; }")

    def test_max_four_parameters(self):
        with pytest.raises(SemaError, match="parameters"):
            check("int f(int a, int b, int c, int d, int e) { return 0; } int main() { return 0; }")

    def test_four_parameters_allowed(self):
        check("int f(int a, int b, int c, int d) { return a; } int main() { return 0; }")


class TestScoping:
    def test_undeclared_identifier(self):
        with pytest.raises(SemaError, match="undeclared"):
            check_body("x = 1;")

    def test_block_scoping(self):
        with pytest.raises(SemaError, match="undeclared"):
            check_body("{ int x = 1; } x = 2;")

    def test_shadowing_in_nested_block(self):
        check_body("int x = 1; { int x = 2; x = 3; } x = 4;")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemaError, match="redeclaration"):
            check_body("int x = 1; int x = 2;")

    def test_param_visible_in_body(self):
        check("int f(int n) { return n + 1; } int main() { return f(1); }")


class TestTypes:
    def test_assign_annotates_types(self):
        sema = check_body("int x = 1; x = x + 2;")
        assert sema.functions["main"].ftype.ret == INT

    def test_pointer_arith_allowed(self):
        check_body("int *p = 0; p = p + 1; p += 2;")

    def test_pointer_plus_pointer_rejected(self):
        with pytest.raises(SemaError):
            check_body("int *p = 0; int *q = 0; p = p + q;")

    def test_pointer_difference_same_type(self):
        check_body("int *p = 0; int *q = 0; int d = p - q;")

    def test_pointer_difference_mixed_rejected(self):
        with pytest.raises(SemaError):
            check_body("int *p = 0; char *q = 0; int d = p - q;")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(SemaError, match="non-pointer"):
            check_body("int x = 1; x = *x;")

    def test_index_non_array_rejected(self):
        with pytest.raises(SemaError, match="non-array"):
            check_body("int x = 1; x = x[0];")

    def test_mul_on_pointer_rejected(self):
        with pytest.raises(SemaError):
            check_body("int *p = 0; p = p * 2;")

    def test_assign_to_rvalue_rejected(self):
        with pytest.raises(SemaError, match="lvalue"):
            check_body("1 = 2;")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemaError):
            check_body("int a[4]; int b[4]; a = b;")

    def test_addrof_rvalue_rejected(self):
        with pytest.raises(SemaError, match="lvalue"):
            check_body("int *p = &1;")

    def test_addrof_marks_address_taken(self):
        sema = check_body("int x = 1; int *p = &x;")
        info = sema.function_info["main"]
        x = next(s for s in info.locals if s.name == "x")
        assert x.address_taken

    def test_arrays_always_address_taken(self):
        sema = check_body("int buf[4]; buf[0] = 1;")
        info = sema.function_info["main"]
        buf = next(s for s in info.locals if s.name == "buf")
        assert buf.address_taken

    def test_local_array_initializer_rejected(self):
        with pytest.raises(SemaError):
            check_body("int a[2] = 5;")

    def test_void_variable_rejected(self):
        with pytest.raises(SemaError):
            check_body("void x;")


class TestCalls:
    def test_wrong_arg_count(self):
        with pytest.raises(SemaError, match="arguments"):
            check("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_call_undeclared(self):
        with pytest.raises(SemaError, match="undeclared"):
            check_body("nosuch();")

    def test_calling_variable_rejected(self):
        with pytest.raises(SemaError, match="not a function"):
            check("int x; int main() { return x(); }")

    def test_function_as_value_rejected(self):
        with pytest.raises(SemaError, match="used as a value"):
            check("int f() { return 1; } int main() { return f + 1; }")

    def test_builtin_signatures(self):
        check_body("int c = getchar(); putchar(c); print_int(5); exit(0);")

    def test_builtin_wrong_args(self):
        with pytest.raises(SemaError, match="arguments"):
            check_body("putchar();")

    def test_void_in_expression_rejected(self):
        with pytest.raises(SemaError):
            check_body("int x = putchar(65) + 1;")

    def test_makes_calls_tracked(self):
        sema = check(
            "int leaf(int a) { return a; } int main() { return leaf(2); }"
        )
        assert not sema.function_info["leaf"].makes_calls
        assert sema.function_info["main"].makes_calls

    def test_builtins_do_not_mark_makes_calls(self):
        sema = check("int main() { print_int(1); return 0; }")
        assert not sema.function_info["main"].makes_calls


class TestControlFlow:
    def test_break_outside_loop(self):
        with pytest.raises(SemaError, match="break"):
            check_body("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(SemaError, match="continue"):
            check_body("continue;")

    def test_break_inside_loop_ok(self):
        check_body("while (1) { break; } for (;;) { continue; }")

    def test_void_return_value_rejected(self):
        with pytest.raises(SemaError):
            check("void f() { return 1; } int main() { return 0; }")

    def test_missing_return_value_rejected(self):
        with pytest.raises(SemaError):
            check("int f() { return; } int main() { return 0; }")


class TestGlobals:
    def test_initializer_too_long(self):
        with pytest.raises(SemaError, match="initializer"):
            check("int a[2] = {1, 2, 3}; int main() { return 0; }")

    def test_brace_on_scalar_rejected(self):
        with pytest.raises(SemaError):
            check("int x = {1}; int main() { return 0; }")

    def test_string_into_int_array_rejected(self):
        with pytest.raises(SemaError):
            check('int a[4] = "abc"; int main() { return 0; }')

    def test_char_pointer_string_ok(self):
        check('char *s = "abc"; int main() { return 0; }')
