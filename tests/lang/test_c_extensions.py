"""Execution tests for the extended C features: do-while, ++/--, ?:."""

from __future__ import annotations

import pytest

from repro.lang.errors import SemaError
from repro.lang.parser import parse
from repro.lang.sema import analyze

from tests.helpers import eval_expr, minic_output


class TestDoWhile:
    def test_runs_body_at_least_once(self):
        setup = "int n = 0; do { n += 1; } while (0);"
        assert eval_expr("n", setup=setup) == 1

    def test_loops_until_false(self):
        setup = "int i = 0; int s = 0; do { s += i; i += 1; } while (i < 5);"
        assert eval_expr("s", setup=setup) == 10

    def test_break_and_continue(self):
        setup = """
    int i = 0; int s = 0;
    do {
        i += 1;
        if (i == 3) { continue; }
        if (i >= 6) { break; }
        s += i;
    } while (1);
"""
        assert eval_expr("s", setup=setup) == 1 + 2 + 4 + 5

    def test_optimized_matches(self):
        from tests.helpers import run_minic
        from repro.lang import compile_source
        from repro.sim import Simulator

        source = """
int main() {
    int i = 10; int s = 0;
    do { s += i; i -= 1; } while (i > 0);
    print_int(s);
    return 0;
}
"""
        plain = run_minic(source)
        optimized = Simulator(compile_source(source, optimize=True)).run()
        assert plain.output == optimized.output == "55"


class TestIncDec:
    def test_prefix_value(self):
        assert eval_expr("++x", setup="int x = 5;") == 6
        assert eval_expr("--x", setup="int x = 5;") == 4

    def test_postfix_value(self):
        assert eval_expr("x++", setup="int x = 5;") == 5
        assert eval_expr("x--", setup="int x = 5;") == 5

    def test_side_effect_applies(self):
        assert eval_expr("x", setup="int x = 5; x++;") == 6
        assert eval_expr("x", setup="int x = 5; --x;") == 4

    def test_postfix_in_expression(self):
        setup = "int x = 5; int y = x++ * 2;"
        assert eval_expr("y * 100 + x", setup=setup) == 10 * 100 + 6

    def test_loop_idiom(self):
        setup = "int i; int s = 0; for (i = 0; i < 10; i++) { s += i; }"
        assert eval_expr("s", setup=setup) == 45

    def test_array_element(self):
        setup = "int a[3]; a[1] = 7; a[1]++; ++a[1];"
        assert eval_expr("a[1]", setup=setup) == 9

    def test_pointer_increment_scales(self):
        source = """
int data[4] = {10, 20, 30, 40};
int main() {
    int *p = data;
    int s = 0;
    s += *p++;
    s += *p++;
    s += *p;
    print_int(s);
    return 0;
}
"""
        assert minic_output(source) == "60"

    def test_deref_target(self):
        setup = "int x = 3; int *p = &x; (*p)++;"
        assert eval_expr("x", setup=setup) == 4

    def test_global_target(self):
        source = """
int counter = 10;
int main() {
    counter++;
    ++counter;
    print_int(counter--);
    print_int(counter);
    return 0;
}
"""
        assert minic_output(source) == "1211"

    def test_char_target(self):
        source = """
char c = 'a';
int main() { c++; putchar(c); return 0; }
"""
        assert minic_output(source) == "b"

    def test_requires_lvalue(self):
        with pytest.raises(SemaError, match="lvalue"):
            analyze(parse("int main() { 5++; return 0; }"))

    def test_rejects_array(self):
        with pytest.raises(SemaError):
            analyze(parse("int main() { int a[3]; a++; return 0; }"))


class TestTernary:
    def test_basic_selection(self):
        assert eval_expr("x > 0 ? 1 : -1", setup="int x = 5;") == 1
        assert eval_expr("x > 0 ? 1 : -1", setup="int x = -5;") == -1

    def test_only_selected_arm_evaluated(self):
        source = """
int calls = 0;
int bump() { calls += 1; return 9; }
int main() {
    int r = 1 ? 3 : bump();
    print_int(r); putchar(' '); print_int(calls);
    return 0;
}
"""
        assert minic_output(source) == "3 0"

    def test_nested(self):
        setup = "int x = 15;"
        expr = "x < 10 ? 1 : x < 20 ? 2 : 3"
        assert eval_expr(expr, setup=setup) == 2

    def test_in_argument_position(self):
        source = """
int pick(int v) { return v * 10; }
int main() { print_int(pick(0 ? 7 : 4)); return 0; }
"""
        assert minic_output(source) == "40"

    def test_pointer_arms(self):
        source = """
int a = 1;
int b = 2;
int main() {
    int flag = 1;
    int *p = flag ? &a : &b;
    print_int(*p);
    return 0;
}
"""
        assert minic_output(source) == "1"

    def test_constant_cond_folds_under_optimizer(self):
        from repro.lang.compiler import compile_to_assembly

        plain = compile_to_assembly("int main() { print_int(1 ? 5 : 6); return 0; }")
        optimized = compile_to_assembly(
            "int main() { print_int(1 ? 5 : 6); return 0; }", optimize=True
        )
        assert len(optimized.splitlines()) < len(plain.splitlines())

    def test_incompatible_arms_rejected(self):
        with pytest.raises(SemaError, match="incompatible"):
            analyze(
                parse(
                    "int main() { int *p; int q; p = 1 ? p : &p; return 0; }"
                )
            )

    def test_optimizer_preserves_semantics(self):
        from repro.lang import compile_source
        from repro.sim import Simulator

        source = """
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 8; i++) {
        s += (i % 2 == 0) ? i : -i;
    }
    print_int(s);
    return 0;
}
"""
        plain = Simulator(compile_source(source)).run()
        optimized = Simulator(compile_source(source, optimize=True)).run()
        assert plain.output == optimized.output == "-4"
