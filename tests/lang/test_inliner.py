"""Tests for small-function inlining."""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.lang.inliner import Inliner
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.sim import Simulator


def run_both(source, input_data=b""):
    plain = Simulator(compile_source(source), input_data=input_data).run()
    inlined = Simulator(compile_source(source, inline=True), input_data=input_data).run()
    return plain, inlined


class TestCandidates:
    def analyze_candidates(self, source):
        sema = analyze(parse(source))
        return Inliner(sema).candidate_names

    def test_single_return_expression_is_candidate(self):
        names = self.analyze_candidates(
            """
int double_(int x) { return x + x; }
int main() { return double_(2); }
"""
        )
        assert names == ["double_"]

    def test_main_never_candidate(self):
        names = self.analyze_candidates("int main() { return 1; }")
        assert names == []

    def test_multi_statement_body_excluded(self):
        names = self.analyze_candidates(
            """
int f(int x) { int y = x; return y; }
int main() { return f(1); }
"""
        )
        assert names == []

    def test_impure_body_excluded(self):
        names = self.analyze_candidates(
            """
int g;
int f(int x) { return g = x; }
int main() { return f(1); }
"""
        )
        assert names == []

    def test_global_reads_allowed(self):
        names = self.analyze_candidates(
            """
int scale = 3;
int f(int x) { return x * scale; }
int main() { return f(1); }
"""
        )
        assert names == ["f"]


class TestSemantics:
    CASES = [
        (
            """
int add(int a, int b) { return a + b; }
int main() { print_int(add(3, add(4, 5))); return 0; }
""",
            b"",
        ),
        (
            """
int scale = 7;
int weigh(int x) { return x * scale; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 10; i++) { s += weigh(i); }
    print_int(s);
    return 0;
}
""",
            b"",
        ),
        (
            """
int table[4] = {5, 6, 7, 8};
int at(int i) { return table[i & 3]; }
int main() { print_int(at(read_int()) + at(2)); return 0; }
""",
            b"1",
        ),
        (
            """
int min_(int a, int b) { return a < b ? a : b; }
int max_(int a, int b) { return a > b ? a : b; }
int clamp(int v, int lo, int hi) { return min_(max_(v, lo), hi); }
int main() {
    print_int(clamp(15, 0, 10));
    print_int(clamp(-3, 0, 10));
    print_int(clamp(5, 0, 10));
    return 0;
}
""",
            b"",
        ),
    ]

    @pytest.mark.parametrize("index", range(len(CASES)))
    def test_output_unchanged(self, index):
        source, data = self.CASES[index]
        plain, inlined = run_both(source, data)
        assert plain.output == inlined.output

    def test_inlining_removes_calls(self):
        source = """
int add(int a, int b) { return a + b; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 50; i++) { s += add(s, i); }
    print_int(s);
    return 0;
}
"""
        plain, inlined = run_both(source)
        assert inlined.total_instructions < plain.total_instructions

    def test_impure_argument_blocks_inlining(self):
        """getchar() as an argument must still be called exactly once even
        though the parameter appears twice in the body."""
        source = """
int double_(int x) { return x + x; }
int main() {
    print_int(double_(getchar()));
    print_int(getchar());
    return 0;
}
"""
        plain, inlined = run_both(source, b"AB")
        # 'A' = 65 doubled, then 'B' = 66 — in both builds.
        assert plain.output == inlined.output == "13066"

    def test_chained_expression_functions_collapse(self):
        source = """
int twice(int x) { return x * 2; }
int quad(int x) { return twice(twice(x)); }
int main() { print_int(quad(5)); return 0; }
"""
        plain, inlined = run_both(source)
        assert plain.output == inlined.output == "20"
        assert inlined.total_instructions < plain.total_instructions

    def test_composes_with_optimizer(self):
        source = """
int mul4(int x) { return x * 4; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 20; i++) { s += mul4(i) + 0; }
    print_int(s);
    return 0;
}
"""
        plain = Simulator(compile_source(source)).run()
        full = Simulator(compile_source(source, optimize=True, inline=True)).run()
        assert plain.output == full.output
        assert full.total_instructions < plain.total_instructions


class TestEffectOnWorkloads:
    def test_workload_outputs_survive_inlining(self):
        """All eight workloads compute the same results fully inlined —
        the strongest end-to-end check of substitution correctness."""
        from repro.workloads import WORKLOADS

        for workload in WORKLOADS.values():
            data = workload.primary_input(1)
            plain = Simulator(workload.program(), input_data=data).run()
            inlined = Simulator(
                compile_source(workload.source(), inline=True), input_data=data
            ).run()
            assert plain.output == inlined.output, workload.name
            assert inlined.total_instructions <= plain.total_instructions, workload.name
