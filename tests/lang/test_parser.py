"""Tests for the MiniC parser."""

from __future__ import annotations

import pytest

from repro.lang import astnodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang.types import INT, ArrayType, CHAR, PointerType


class TestTopLevel:
    def test_global_scalar(self):
        unit = parse("int x = 5; int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.name == "x" and decl.declared_type == INT and decl.init == 5

    def test_global_array_with_braces(self):
        unit = parse("int a[3] = {1, 2, 3}; int main() { return 0; }")
        decl = unit.globals[0]
        assert decl.declared_type == ArrayType(INT, 3)
        assert decl.init == [1, 2, 3]

    def test_global_string(self):
        unit = parse('char s[8] = "hi"; int main() { return 0; }')
        assert unit.globals[0].init == "hi"

    def test_const_expression_sizes(self):
        unit = parse("int a[4 * 8]; int main() { return 0; }")
        assert unit.globals[0].declared_type.length == 32

    def test_pointer_types(self):
        unit = parse("int **pp; int main() { return 0; }")
        assert unit.globals[0].declared_type == PointerType(PointerType(INT))

    def test_function_params(self):
        unit = parse("int f(int a, char *b) { return a; } int main() { return 0; }")
        func = unit.functions[0]
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.params[1].declared_type == PointerType(CHAR)

    def test_void_param_list(self):
        unit = parse("int f(void) { return 1; } int main() { return 0; }")
        assert unit.functions[0].params == []

    def test_array_param_decays(self):
        unit = parse("int f(int a[]) { return a[0]; } int main() { return 0; }")
        assert unit.functions[0].params[0].declared_type == PointerType(INT)


class TestStatements:
    def parse_body(self, body):
        return parse(f"int main() {{ {body} }}").functions[0].body.statements

    def test_if_else(self):
        stmt = self.parse_body("if (1) { } else { }")[0]
        assert isinstance(stmt, ast.If) and stmt.else_body is not None

    def test_dangling_else_binds_inner(self):
        stmt = self.parse_body("if (1) if (2) ; else ;")[0]
        assert stmt.else_body is None
        assert isinstance(stmt.then_body, ast.If)
        assert stmt.then_body.else_body is not None

    def test_while(self):
        stmt = self.parse_body("while (x) { }")[0]
        assert isinstance(stmt, ast.While)

    def test_for_clauses_optional(self):
        stmt = self.parse_body("for (;;) break;")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_local_decl_with_init(self):
        stmt = self.parse_body("int x = 3;")[0]
        assert isinstance(stmt, ast.VarDecl) and stmt.name == "x"

    def test_local_array(self):
        stmt = self.parse_body("int buf[10];")[0]
        assert stmt.declared_type == ArrayType(INT, 10)

    def test_return_void(self):
        stmt = self.parse_body("return;")[0]
        assert isinstance(stmt, ast.Return) and stmt.value is None


class TestExpressions:
    def expr(self, text):
        return parse(f"int main() {{ x = {text}; }}").functions[0].body.statements[0].expr.value

    def test_precedence_mul_over_add(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        node = self.expr("a < b && c > d")
        assert node.op == "&&"
        assert node.left.op == "<" and node.right.op == ">"

    def test_shift_precedence(self):
        node = self.expr("1 << 2 + 3")
        assert node.op == "<<"
        assert node.right.op == "+"

    def test_right_associative_assignment(self):
        stmt = parse("int main() { a = b = 1; }").functions[0].body.statements[0]
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_unary_chain(self):
        node = self.expr("- -x")  # unary minus applied twice
        assert isinstance(node, ast.Unary) and isinstance(node.operand, ast.Unary)

    def test_decrement_tokenizes_as_incdec(self):
        node = self.expr("--x")
        assert isinstance(node, ast.IncDec) and node.op == "--" and node.is_prefix

    def test_postfix_increment(self):
        node = self.expr("x++")
        assert isinstance(node, ast.IncDec) and node.op == "++" and not node.is_prefix

    def test_ternary(self):
        node = self.expr("a ? b : c")
        assert isinstance(node, ast.Conditional)

    def test_nested_ternary_right_associative(self):
        node = self.expr("a ? b : c ? d : e")
        assert isinstance(node, ast.Conditional)
        assert isinstance(node.else_value, ast.Conditional)

    def test_do_while(self):
        stmt = parse("int main() { do { x = 1; } while (x < 3); }").functions[0].body.statements[0]
        assert isinstance(stmt, ast.DoWhile)

    def test_deref_and_addrof(self):
        node = self.expr("*&y")
        assert isinstance(node, ast.Deref) and isinstance(node.operand, ast.AddrOf)

    def test_index_chain(self):
        node = self.expr("a[1]")
        assert isinstance(node, ast.Index)

    def test_call_with_args(self):
        node = self.expr("f(1, g(2))")
        assert isinstance(node, ast.Call) and len(node.args) == 2
        assert isinstance(node.args[1], ast.Call)

    def test_parenthesized(self):
        node = self.expr("(1 + 2) * 3")
        assert node.op == "*" and node.left.op == "+"

    def test_compound_assignment(self):
        stmt = parse("int main() { x += 2; }").functions[0].body.statements[0]
        assert stmt.expr.op == "+="


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int main() { if 1 { } }",  # missing parens
            "int main() { return 1 }",  # missing semicolon
            "int main() { int x = ; }",
            "int f(int a, int b,) { return 0; }",
            "int main() { }  junk",
            "int a[] = {1};  int main() { }",  # missing size
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("int main() { while (1) {")
