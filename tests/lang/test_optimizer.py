"""Tests for the MiniC optimizer.

The key property: optimization never changes program output — verified
by running a corpus of programs both ways.  Individual transformations
are checked by counting dynamic instructions.
"""

from __future__ import annotations

import pytest

from repro.lang import compile_source
from repro.lang.compiler import compile_to_assembly
from repro.lang.optimizer import peephole_assembly
from repro.sim import Simulator


def run_both(source: str, input_data: bytes = b""):
    plain = Simulator(compile_source(source), input_data=input_data).run()
    optimized = Simulator(
        compile_source(source, optimize=True), input_data=input_data
    ).run()
    return plain, optimized


CORPUS = [
    """
int main() {
    print_int(2 * 3 + 4 * (5 - 1));
    putchar('\\n');
    return 0;
}
""",
    """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main() { print_int(fib(12)); return 0; }
""",
    """
int data[16];
int main() {
    int i;
    for (i = 0; i < 16; i += 1) { data[i] = i * 8; }
    print_int(data[7] + data[15] * 1 + 0);
    return 0;
}
""",
    """
int main() {
    int x = read_int();
    if (1) { print_int(x * 4); } else { print_int(99); }
    while (0) { print_int(123); }
    if (0) { print_int(456); }
    return 0;
}
""",
    """
int square(int x) { return x * x; }
int main() {
    int i; int s = 0;
    for (i = 0; i < 20; i += 1) { s += square(i) - 0 + (i << 0); }
    print_int(s);
    return 0;
}
""",
]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("index", range(len(CORPUS)))
    def test_same_output(self, index):
        plain, optimized = run_both(CORPUS[index], input_data=b"21")
        assert plain.output == optimized.output
        assert plain.stop_reason == optimized.stop_reason

    def test_workloads_unchanged_by_optimization(self):
        """All eight workloads must produce identical results at -O1."""
        from repro.workloads import WORKLOADS

        for workload in WORKLOADS.values():
            data = workload.primary_input(1)
            plain = Simulator(workload.program(), input_data=data).run()
            optimized = Simulator(
                compile_source(workload.source(), optimize=True), input_data=data
            ).run()
            assert plain.output == optimized.output, workload.name


class TestTransformations:
    def test_constant_folding_reduces_instructions(self):
        source = """
int main() {
    int i; int s = 0;
    for (i = 0; i < 50; i += 1) { s += 2 * 3 + 4 - 1; }
    print_int(s);
    return 0;
}
"""
        plain, optimized = run_both(source)
        assert optimized.total_instructions < plain.total_instructions

    def test_mul_by_power_of_two_becomes_shift(self):
        text = compile_to_assembly(
            "int main() { int x = read_int(); print_int(x * 8); return 0; }",
            optimize=True,
        )
        assert "sllv" in text or "sll" in text
        assert "mult" not in text

    def test_dead_if_removed(self):
        text = compile_to_assembly(
            "int main() { if (0) { print_int(1); } return 0; }", optimize=True
        )
        plain = compile_to_assembly(
            "int main() { if (0) { print_int(1); } return 0; }", optimize=False
        )
        assert len(text.splitlines()) < len(plain.splitlines())

    def test_dead_while_removed(self):
        plain, optimized = run_both(
            "int main() { while (0) { print_int(9); } print_int(1); return 0; }"
        )
        assert optimized.total_instructions < plain.total_instructions
        assert optimized.output == "1"

    def test_pure_statement_dropped(self):
        plain, optimized = run_both(
            "int main() { int x = 5; x + 3; print_int(x); return 0; }"
        )
        assert optimized.output == "5"
        assert optimized.total_instructions < plain.total_instructions

    def test_impure_subexpression_kept(self):
        # x * 0 must NOT drop the call inside x.
        source = """
int calls = 0;
int bump() { calls += 1; return 7; }
int main() {
    int r = bump() * 0;
    print_int(r); putchar(' '); print_int(calls);
    return 0;
}
"""
        plain, optimized = run_both(source)
        assert plain.output == optimized.output == "0 1"

    def test_for_with_constant_false_keeps_impure_init(self):
        source = """
int main() {
    int x = 0;
    for (x = 5; 0; x += 1) { print_int(9); }
    print_int(x);
    return 0;
}
"""
        plain, optimized = run_both(source)
        assert plain.output == optimized.output == "5"

    def test_division_by_zero_not_folded(self):
        # 1/0 stays a runtime operation (defined as 0 by the machine).
        plain, optimized = run_both("int main() { print_int(1 / 0); return 0; }")
        assert plain.output == optimized.output


class TestPeephole:
    def test_self_move_removed(self):
        text = "  move $t0, $t0\n  move $t1, $t2\n"
        cleaned = peephole_assembly(text)
        assert "move $t0, $t0" not in cleaned
        assert "move $t1, $t2" in cleaned

    def test_branch_to_next_line_removed(self):
        text = "  b L1\nL1:\n  nop\n"
        cleaned = peephole_assembly(text)
        assert "b L1" not in cleaned
        assert "L1:" in cleaned

    def test_branch_elsewhere_kept(self):
        text = "  b L2\nL1:\n  nop\nL2:\n"
        assert "b L2" in peephole_assembly(text)
