"""Execution-based tests for MiniC code generation.

Each test compiles a snippet and runs it on the simulator, asserting
printed output — validating codegen end to end against the language's
C-subset semantics.
"""

from __future__ import annotations

import pytest

from tests.helpers import eval_expr, minic_output


class TestArithmetic:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 + 2", 3),
            ("10 - 25", -15),
            ("7 * 6", 42),
            ("17 / 5", 3),
            ("-17 / 5", -3),  # C truncation toward zero
            ("17 % 5", 2),
            ("-17 % 5", -2),
            ("6 & 3", 2),
            ("6 | 3", 7),
            ("6 ^ 3", 5),
            ("1 << 10", 1024),
            ("-32 >> 2", -8),
            ("~0", -1),
            ("-(3 + 4)", -7),
            ("!5", 0),
            ("!0", 1),
            ("2147483647 + 1", -2147483648),  # 32-bit wraparound
        ],
    )
    def test_constant_expressions(self, expression, expected):
        assert eval_expr(expression) == expected

    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("a + b", 30),
            ("a * b - b / a", 198),
            ("(a < b) + (b < a)", 1),
            ("a == 10", 1),
            ("a != 10", 0),
            ("a <= 10", 1),
            ("b >= 21", 0),
            ("a < b && b < 100", 1),
            ("a > b || b > 100", 0),
        ],
    )
    def test_variable_expressions(self, expression, expected):
        assert eval_expr(expression, setup="int a = 10; int b = 20;") == expected

    def test_large_constants_synthesized(self):
        assert eval_expr("0x12345678") == 0x12345678
        assert eval_expr("0x12340000 + 0x5678") == 0x12345678

    def test_division_by_variable(self):
        assert eval_expr("100 / d", setup="int d = 7;") == 14


class TestShortCircuit:
    def test_and_skips_rhs(self):
        source = """
int calls = 0;
int bump() { calls += 1; return 1; }
int main() {
    int r = 0 && bump();
    print_int(r); putchar(' ');
    print_int(calls); putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "0 0\n"

    def test_or_skips_rhs(self):
        source = """
int calls = 0;
int bump() { calls += 1; return 0; }
int main() {
    int r = 1 || bump();
    print_int(r); putchar(' ');
    print_int(calls); putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "1 0\n"

    def test_chained_conditions(self):
        assert eval_expr("1 && 2 && 3") == 1
        assert eval_expr("0 || 0 || 7") == 1


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
int grade(int score) {
    if (score >= 90) { return 4; }
    else if (score >= 80) { return 3; }
    else if (score >= 70) { return 2; }
    else { return 0; }
}
int main() {
    print_int(grade(95)); print_int(grade(85)); print_int(grade(75)); print_int(grade(5));
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "4320\n"

    def test_while_loop(self):
        setup = "int i = 0; int s = 0; while (i < 10) { s += i; i += 1; }"
        assert eval_expr("s", setup=setup) == 45

    def test_for_loop_with_break_continue(self):
        setup = """
    int i; int s = 0;
    for (i = 0; i < 100; i += 1) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        s += i;
    }
"""
        assert eval_expr("s", setup=setup) == 1 + 3 + 5 + 7 + 9

    def test_nested_loops(self):
        setup = """
    int i; int j; int s = 0;
    for (i = 0; i < 5; i += 1) {
        for (j = 0; j < i; j += 1) {
            s += 1;
        }
    }
"""
        assert eval_expr("s", setup=setup) == 10


class TestFunctions:
    def test_four_args(self):
        source = """
int combine(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
int main() { print_int(combine(1, 2, 3, 4)); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "1234\n"

    def test_recursion(self):
        source = """
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int main() { print_int(fact(10)); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "3628800\n"

    def test_mutual_recursion(self):
        source = """
int is_odd(int n);
int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}
int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}
int main() { print_int(is_even(10)); print_int(is_odd(7)); putchar('\\n'); return 0; }
"""
        # MiniC has no prototypes; both orders work because declaration is
        # two-phase.  Strip the stray prototype-looking line.
        source = source.replace("int is_odd(int n);\n", "")
        assert minic_output(source) == "11\n"

    def test_nested_calls_preserve_temporaries(self):
        source = """
int add(int a, int b) { return a + b; }
int main() {
    print_int(add(add(1, 2), add(3, add(4, 5))));
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "15\n"

    def test_call_in_condition(self):
        source = """
int positive(int x) { return x > 0; }
int main() {
    if (positive(5) && positive(-3) == 0) { print_int(1); } else { print_int(0); }
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "1\n"

    def test_void_function(self):
        source = """
int count = 0;
void bump() { count += 1; }
void twice() { bump(); bump(); }
int main() { twice(); twice(); print_int(count); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "4\n"

    def test_deep_recursion_stack(self):
        source = """
int depth(int n) {
    int local = n * 2;
    if (n == 0) { return 0; }
    return depth(n - 1) + 1;
}
int main() { print_int(depth(200)); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "200\n"


class TestArraysAndPointers:
    def test_local_array(self):
        setup = """
    int a[5]; int i; int s = 0;
    for (i = 0; i < 5; i += 1) { a[i] = i * i; }
    for (i = 0; i < 5; i += 1) { s += a[i]; }
"""
        assert eval_expr("s", setup=setup) == 30

    def test_global_array_initialized(self):
        source = """
int primes[5] = {2, 3, 5, 7, 11};
int main() {
    print_int(primes[0] + primes[4]);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "13\n"

    def test_partial_initializer_zero_fills(self):
        source = """
int a[5] = {9};
int main() { print_int(a[0] + a[1] + a[4]); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "9\n"

    def test_pointer_walk(self):
        source = """
int data[4] = {10, 20, 30, 40};
int main() {
    int *p = data;
    int s = 0;
    while (p < data + 4) {
        s += *p;
        p += 1;
    }
    print_int(s);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "100\n"

    def test_pointer_difference(self):
        source = """
int data[8];
int main() {
    int *a = data + 1;
    int *b = data + 6;
    print_int(b - a);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "5\n"

    def test_addrof_local(self):
        setup = "int x = 5; int *p = &x; *p = 42;"
        assert eval_expr("x", setup=setup) == 42

    def test_pointer_argument_mutation(self):
        source = """
void set(int *p, int v) { *p = v; }
int main() {
    int x = 0;
    set(&x, 99);
    print_int(x);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "99\n"

    def test_array_argument(self):
        source = """
int sum(int a[], int n) {
    int i; int s = 0;
    for (i = 0; i < n; i += 1) { s += a[i]; }
    return s;
}
int table[3] = {7, 8, 9};
int main() { print_int(sum(table, 3)); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "24\n"

    def test_char_array_and_signs(self):
        source = """
int main() {
    char buf[4];
    buf[0] = 200;    /* stores as byte; loads back signed */
    buf[1] = 'a';
    print_int(buf[0]);
    putchar(' ');
    print_int(buf[1]);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "-56 97\n"

    def test_global_char_scalar(self):
        source = """
char flag = 'x';
int main() { print_int(flag); flag = 'y'; print_int(flag); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "120121\n"

    def test_string_literal(self):
        source = """
int main() {
    char *s = "ok";
    print_int(s[0]);
    putchar(s[1]);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "111k\n"

    def test_string_deduplication(self):
        source = """
int main() {
    char *a = "same";
    char *b = "same";
    print_int(a == b);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "1\n"


class TestCompoundAssignment:
    @pytest.mark.parametrize(
        "op,start,operand,expected",
        [
            ("+=", 10, 3, 13),
            ("-=", 10, 3, 7),
            ("*=", 10, 3, 30),
            ("/=", 10, 3, 3),
            ("%=", 10, 3, 1),
            ("&=", 12, 10, 8),
            ("|=", 12, 10, 14),
            ("^=", 12, 10, 6),
            ("<<=", 3, 2, 12),
            (">>=", 12, 2, 3),
        ],
    )
    def test_scalar_compound(self, op, start, operand, expected):
        assert eval_expr("x", setup=f"int x = {start}; x {op} {operand};") == expected

    def test_array_element_compound(self):
        setup = "int a[3]; a[1] = 5; a[1] += 7;"
        assert eval_expr("a[1]", setup=setup) == 12

    def test_deref_compound(self):
        setup = "int x = 5; int *p = &x; *p *= 3;"
        assert eval_expr("x", setup=setup) == 15

    def test_assignment_is_expression(self):
        setup = "int a; int b; a = (b = 21) + 1;"
        assert eval_expr("a + b", setup=setup) == 43

    def test_global_compound(self):
        source = """
int total = 5;
int main() { total += 37; print_int(total); putchar('\\n'); return 0; }
"""
        assert minic_output(source) == "42\n"


class TestHeapAndIo:
    def test_sbrk_allocation(self):
        source = """
int main() {
    int *a = (sbrk(40));
    int i;
    for (i = 0; i < 10; i += 1) { a[i] = i; }
    print_int(a[9]);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "9\n"

    def test_getchar_eof(self):
        source = """
int main() {
    int n = 0;
    while (getchar() >= 0) { n += 1; }
    print_int(n);
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source, input_data=b"abcde") == "5\n"

    def test_read_int(self):
        source = """
int main() {
    print_int(read_int() + read_int());
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source, input_data=b"40 2") == "42\n"

    def test_print_str(self):
        source = """
int main() { print_str("hello\\n"); return 0; }
"""
        assert minic_output(source) == "hello\n"

    def test_exit_code(self):
        from tests.helpers import run_minic

        result = run_minic("int main() { exit(3); return 0; }")
        assert result.stop_reason == "exit" and result.exit_code == 3


class TestExpressionDepth:
    def test_deep_expression_spills(self):
        # Depth > 8 forces value-stack spilling to memory slots.
        expression = "1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + 11)))))))))"
        assert eval_expr(expression) == 66

    def test_wide_call_arguments_with_spill(self):
        source = """
int f(int a, int b, int c, int d) { return a + b * 10 + c * 100 + d * 1000; }
int main() {
    print_int(f(1 + 1, f(1, 0, 0, 0) - 1, 3, 4) );
    putchar('\\n');
    return 0;
}
"""
        assert minic_output(source) == "4302\n"
