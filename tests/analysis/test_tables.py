"""Tests for ASCII table rendering."""

from __future__ import annotations

from repro.analysis.tables import format_cell, format_table


class TestFormatCell:
    def test_float_one_decimal(self):
        assert format_cell(3.14159) == "3.1"

    def test_int_thousands(self):
        assert format_cell(1234567) == "1,234,567"

    def test_string_passthrough(self):
        assert format_cell("go") == "go"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("Name", "Value"), [("a", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        assert len(lines) == 4
        # Numeric column is right-aligned.
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_separator_row(self):
        text = format_table(("A",), [(1,)])
        assert set(text.splitlines()[1]) <= {"-", " "}

    def test_empty_rows(self):
        text = format_table(("A", "B"), [])
        assert "A" in text and len(text.splitlines()) == 2

    def test_mixed_types(self):
        text = format_table(("W", "pct"), [("go", 85.25)])
        assert "85.2" in text or "85.3" in text
