"""Tests for the dynamic call-graph profiler."""

from __future__ import annotations

import pytest

from repro.analysis.callgraph import UNKNOWN, CallGraphProfiler
from repro.lang import compile_source
from repro.sim import Simulator


def profile(source, input_data=b""):
    profiler = CallGraphProfiler()
    result = Simulator(
        compile_source(source), input_data=input_data, analyzers=[profiler]
    ).run()
    return profiler.report(), result


SOURCE = """
int leaf(int x) { return x * 2; }
int middle(int x) { return leaf(x) + leaf(x + 1); }
int main() {
    int i; int s = 0;
    for (i = 0; i < 5; i++) { s += middle(i); }
    print_int(s);
    return 0;
}
"""


class TestCounts:
    def test_call_counts(self):
        report, _ = profile(SOURCE)
        assert report.functions["main"].calls == 1
        assert report.functions["middle"].calls == 5
        assert report.functions["leaf"].calls == 10

    def test_edges(self):
        report, _ = profile(SOURCE)
        assert report.edges[("main", "middle")] == 5
        assert report.edges[("middle", "leaf")] == 10
        assert (UNKNOWN, "main") in report.edges

    def test_exclusive_sums_to_total(self):
        report, result = profile(SOURCE)
        total = sum(f.exclusive for f in report.functions.values())
        assert total == result.analyzed_instructions == report.total_instructions

    def test_inclusive_at_least_exclusive(self):
        report, _ = profile(SOURCE)
        for function in report.functions.values():
            assert function.inclusive >= function.exclusive

    def test_main_inclusive_covers_everything(self):
        report, result = profile(SOURCE)
        assert report.functions["main"].inclusive == result.analyzed_instructions

    def test_caller_callee_queries(self):
        report, _ = profile(SOURCE)
        assert report.callers_of("leaf") == [("middle", 10)]
        assert report.callees_of("main") == [("middle", 5)]


class TestRecursion:
    def test_recursive_function(self):
        source = """
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int main() { print_int(fact(6)); return 0; }
"""
        report, result = profile(source)
        assert report.functions["fact"].calls == 6
        assert report.edges[("fact", "fact")] == 5
        total = sum(f.exclusive for f in report.functions.values())
        assert total == result.analyzed_instructions


class TestRanking:
    def test_flat_profile_order(self):
        report, _ = profile(SOURCE)
        ranked = report.flat_profile(3)
        assert ranked == sorted(ranked, key=lambda f: f.exclusive, reverse=True)

    def test_exclusive_share(self):
        report, _ = profile(SOURCE)
        share = report.exclusive_share_pct("main")
        assert 0.0 < share < 100.0
        assert report.exclusive_share_pct("nosuch") == 0.0


class TestExitHandling:
    def test_exit_mid_call_flushes_frames(self):
        source = """
int deep(int n) {
    if (n == 0) { exit(0); }
    return deep(n - 1);
}
int main() { return deep(4); }
"""
        report, result = profile(source)
        total = sum(f.exclusive for f in report.functions.values())
        assert total == result.analyzed_instructions

    def test_workload_profile(self):
        from repro.workloads import get_workload

        workload = get_workload("vortex")
        profiler = CallGraphProfiler()
        Simulator(
            workload.program(),
            input_data=workload.primary_input(1),
            analyzers=[profiler],
        ).run(limit=30_000)
        report = profiler.report()
        names = {f.name for f in report.flat_profile(5)}
        # The deep layering shows up in the flat profile.
        assert names & {"Chunk_GetField", "Chunk_SetField", "Mem_GetWord", "Tm_Transaction", "Db_LookupKey", "Tm_FetchObject", "rand_next", "main", "Obj_Create", "Chunk_Addr", "Mem_PutWord"}
