"""Unit and property tests for coverage-curve math."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.coverage import (
    INSTANCE_BUCKETS,
    bucket_label,
    bucket_shares,
    contributors_for_fraction,
    coverage_curve,
    cumulative_share_curve,
)

weights = st.lists(st.integers(min_value=0, max_value=1000), max_size=50)


class TestContributorsForFraction:
    def test_simple(self):
        assert contributors_for_fraction([50, 30, 20], 0.5) == 1
        assert contributors_for_fraction([50, 30, 20], 0.8) == 2
        assert contributors_for_fraction([50, 30, 20], 1.0) == 3

    def test_unsorted_input(self):
        assert contributors_for_fraction([20, 50, 30], 0.5) == 1

    def test_zero_weights_ignored(self):
        assert contributors_for_fraction([0, 0, 10], 1.0) == 1

    def test_empty_and_zero(self):
        assert contributors_for_fraction([], 0.5) == 0
        assert contributors_for_fraction([0, 0], 0.9) == 0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            contributors_for_fraction([1], 1.5)

    @given(weights, st.floats(min_value=0.0, max_value=1.0))
    def test_bounds(self, values, fraction):
        needed = contributors_for_fraction(values, fraction)
        positive = [v for v in values if v > 0]
        assert 0 <= needed <= len(positive)

    @given(weights)
    def test_monotone_in_fraction(self, values):
        results = [contributors_for_fraction(values, f) for f in (0.25, 0.5, 0.75, 1.0)]
        assert results == sorted(results)

    @given(weights.filter(lambda v: sum(v) > 0))
    def test_covers_claimed_fraction(self, values):
        needed = contributors_for_fraction(values, 0.75)
        top = sorted((v for v in values if v > 0), reverse=True)[:needed]
        assert sum(top) >= 0.75 * sum(values) - 1e-6


class TestCoverageCurve:
    def test_basic_shape(self):
        curve = coverage_curve([90, 5, 5], [0.5, 0.9, 1.0])
        assert curve[0] == (0.5, pytest.approx(1 / 3))
        assert curve[2] == (1.0, pytest.approx(1.0))

    def test_empty(self):
        assert coverage_curve([], [0.5]) == [(0.5, 0.0)]


class TestCumulativeShareCurve:
    def test_endpoints(self):
        curve = cumulative_share_curve([10, 5, 1], points=10)
        assert curve[-1] == (1.0, 1.0)

    @given(weights.filter(lambda v: sum(v) > 0))
    def test_monotone(self, values):
        curve = cumulative_share_curve(values, points=20)
        xs = [x for x, _ in curve]
        ys = [y for _, y in curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)


class TestBuckets:
    @pytest.mark.parametrize(
        "count,label",
        [(1, "1"), (2, "2-10"), (10, "2-10"), (11, "11-100"), (100, "11-100"),
         (101, "101-1000"), (1000, "101-1000"), (1001, ">1000"), (10**6, ">1000")],
    )
    def test_bucket_label(self, count, label):
        assert bucket_label(count) == label

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            bucket_label(0)

    def test_bucket_shares_normalized(self):
        shares = bucket_shares({"1": 30, "2-10": 70})
        assert shares["1"] == pytest.approx(0.3)
        assert shares["2-10"] == pytest.approx(0.7)
        assert shares[">1000"] == 0.0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_bucket_shares_empty(self):
        shares = bucket_shares({})
        assert all(v == 0.0 for v in shares.values())
        assert set(shares) == {label for _, _, label in INSTANCE_BUCKETS}
