"""Tests for the markdown report builder and its CLI hookup."""

from __future__ import annotations

import pytest

from repro.analysis.report import build_markdown_report
from repro.harness.cli import main


class TestBuilder:
    def test_full_report(self, suite_results):
        text = build_markdown_report(suite_results)
        assert text.startswith("# Instruction repetition")
        for ref in ("Table 1", "Table 10", "Figure 6"):
            assert ref in text
        # Every workload shows up in the body.
        for name in suite_results:
            assert name in text

    def test_subset(self, suite_results):
        text = build_markdown_report(suite_results, ["table1"])
        assert "Table 1" in text
        assert "Table 10" not in text

    def test_unknown_id_rejected(self, suite_results):
        with pytest.raises(KeyError):
            build_markdown_report(suite_results, ["tableX"])


class TestCliIntegration:
    def test_markdown_flag_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["table2", "--workloads", "m88ksim", "--markdown", str(out)])
        assert code == 0
        text = out.read_text()
        assert "Table 2" in text and "m88ksim" in text
