"""Tests for CFG construction and basic-block profiling."""

from __future__ import annotations

import pytest

from repro.analysis.cfg import BasicBlockProfiler, ControlFlowGraph
from repro.asm import assemble
from repro.isa.convention import TEXT_BASE
from repro.lang import compile_source
from repro.sim import Simulator

BRANCHY = """
        .text
        .ent main, 0
main:   li $t0, 0
        li $t1, 0
loop:   addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        blt $t0, 10, loop
        beq $t1, $zero, never
        jr $ra
never:  li $t2, 1
        jr $ra
        .end main
"""


class TestCfgConstruction:
    def test_block_boundaries(self):
        program = assemble(BRANCHY)
        cfg = ControlFlowGraph(program)
        # Leaders: main, loop, post-branch fallthrough(s), never.
        assert program.symbols["loop"] in cfg.blocks
        assert program.symbols["never"] in cfg.blocks
        assert TEXT_BASE in cfg.blocks

    def test_blocks_partition_text(self):
        program = assemble(BRANCHY)
        cfg = ControlFlowGraph(program)
        covered = sum(block.size for block in cfg.blocks.values())
        assert covered == len(program.text)
        # Blocks are disjoint and ordered.
        starts = sorted(cfg.blocks)
        for a, b in zip(starts, starts[1:]):
            assert cfg.blocks[a].end <= b

    def test_branch_successors(self):
        program = assemble(BRANCHY)
        cfg = ControlFlowGraph(program)
        loop = cfg.blocks[program.symbols["loop"]]
        # Conditional back-edge: successors = {loop, fallthrough}.
        assert program.symbols["loop"] in loop.successors
        assert len(loop.successors) == 2

    def test_jr_has_no_static_successors(self):
        program = assemble(BRANCHY)
        cfg = ControlFlowGraph(program)
        # Block ending with jr $ra: no static successors.
        jr_blocks = [
            b
            for b in cfg.blocks.values()
            if program.instruction_at(b.end - 4).op.name == "jr"
        ]
        assert jr_blocks
        assert all(b.successors == () for b in jr_blocks)

    def test_function_membership(self):
        program = compile_source(
            """
int helper(int x) { if (x > 0) { return x; } return -x; }
int main() { print_int(helper(-3)); return 0; }
"""
        )
        cfg = ControlFlowGraph(program)
        helper_blocks = cfg.blocks_of_function("helper")
        assert len(helper_blocks) >= 2  # branchy function: several blocks
        assert all(b.function == "helper" for b in helper_blocks)

    def test_block_at_lookup(self):
        program = assemble(BRANCHY)
        cfg = ControlFlowGraph(program)
        loop_start = program.symbols["loop"]
        assert cfg.block_at(loop_start).start == loop_start
        assert cfg.block_at(loop_start + 4).start == loop_start
        with pytest.raises(KeyError):
            cfg.block_at(TEXT_BASE - 4)

    def test_call_block_splits_at_return_point(self):
        program = compile_source(
            """
int f(int a) { return a + 1; }
int main() { print_int(f(1) + f(2)); return 0; }
"""
        )
        cfg = ControlFlowGraph(program)
        # jal ends a block whose successors include both the callee and
        # the return continuation.
        call_blocks = [
            b
            for b in cfg.blocks.values()
            if program.instruction_at(b.end - 4).op.name == "jal"
        ]
        assert call_blocks
        for block in call_blocks:
            assert len(block.successors) == 2


class TestProfiling:
    def test_loop_block_hotter_than_entry(self):
        profiler = BasicBlockProfiler()
        program = assemble(BRANCHY)
        Simulator(program, analyzers=[profiler]).run()
        profile = profiler.report()
        loop_count = profile.counts[program.symbols["loop"]]
        entry_count = profile.counts[program.text_base]
        assert loop_count == 10
        assert entry_count == 1

    def test_never_taken_block_unexecuted(self):
        profiler = BasicBlockProfiler()
        program = assemble(BRANCHY)
        Simulator(program, analyzers=[profiler]).run()
        profile = profiler.report()
        assert program.symbols["never"] not in profile.counts

    def test_hottest_ranking(self):
        profiler = BasicBlockProfiler()
        program = assemble(BRANCHY)
        Simulator(program, analyzers=[profiler]).run()
        top = profiler.report().hottest(1)
        assert top[0][0].start == program.symbols["loop"]

    def test_dynamic_instruction_reconstruction(self):
        profiler = BasicBlockProfiler()
        program = assemble(BRANCHY)
        result = Simulator(program, analyzers=[profiler]).run()
        profile = profiler.report()
        assert profile.dynamic_instructions() == result.analyzed_instructions

    def test_unattached_profiler_rejects_report(self):
        with pytest.raises(RuntimeError):
            BasicBlockProfiler().report()

    def test_on_workload(self):
        from repro.workloads import get_workload

        workload = get_workload("m88ksim")
        profiler = BasicBlockProfiler()
        Simulator(
            workload.program(), input_data=workload.primary_input(1), analyzers=[profiler]
        ).run(limit=20_000)
        profile = profiler.report()
        assert profile.executed_blocks > 10
        hottest = profile.hottest(3)
        assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]
