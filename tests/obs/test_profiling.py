"""Analyzer-profiling proxy tests.

The critical property is fast-path preservation: the simulator decides
per hook whether an analyzer participates by inspecting its *type*
(``_hooks_for``), so a profiling proxy must override exactly the hooks
its inner analyzer overrides — no more, no less.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    HOOKS,
    format_profile_table,
    profiles_from_snapshot,
    wrap_all,
    wrap_profiled,
)
from repro.sim.observer import Analyzer
from repro.sim.simulator import _hooks_for


class StepOnly(Analyzer):
    def __init__(self):
        self.steps = 0

    def on_step(self, record):
        self.steps += 1


class CallsOnly(Analyzer):
    def __init__(self):
        self.calls = 0

    def on_call(self, event):
        self.calls += 1


class Failing(Analyzer):
    def on_step(self, record):
        raise ValueError("analyzer exploded")


class TestProxyShape:
    def test_proxy_overrides_exactly_the_inner_hooks(self):
        proxy, _ = wrap_profiled(StepOnly())
        cls = type(proxy)
        assert getattr(cls, "on_step") is not getattr(Analyzer, "on_step")
        for hook in HOOKS:
            if hook == "on_step":
                continue
            assert getattr(cls, hook) is getattr(Analyzer, hook)

    def test_hooks_for_sees_proxy_like_the_inner_analyzer(self):
        inner = CallsOnly()
        proxy, _ = wrap_profiled(inner)
        for hook in HOOKS:
            assert bool(_hooks_for([proxy], hook)) == bool(_hooks_for([inner], hook))

    def test_proxy_classes_are_cached_per_hook_set(self):
        a, _ = wrap_profiled(StepOnly())
        b, _ = wrap_profiled(StepOnly())
        c, _ = wrap_profiled(CallsOnly())
        assert type(a) is type(b)
        assert type(a) is not type(c)


class TestProfileCollection:
    def test_calls_forward_and_are_counted(self):
        inner = StepOnly()
        proxy, profile = wrap_profiled(inner)
        for _ in range(5):
            proxy.on_step(object())
        assert inner.steps == 5
        assert profile.calls == {"on_step": 5}
        assert profile.seconds["on_step"] >= 0.0
        assert profile.total_calls == 5

    def test_exception_propagates_but_is_still_timed(self):
        proxy, profile = wrap_profiled(Failing())
        with pytest.raises(ValueError):
            proxy.on_step(object())
        assert profile.calls == {"on_step": 1}

    def test_wrap_all_pairs_up(self):
        analyzers = [StepOnly(), CallsOnly()]
        proxies, profiles = wrap_all(analyzers)
        assert len(proxies) == len(profiles) == 2
        assert [p.name for p in profiles] == ["StepOnly", "CallsOnly"]


class TestPublishRoundTrip:
    def test_publish_then_rebuild_from_snapshot(self):
        proxy, profile = wrap_profiled(StepOnly())
        for _ in range(3):
            proxy.on_step(object())
        registry = MetricsRegistry(enabled=True)
        profile.publish(registry)
        rebuilt = profiles_from_snapshot(registry.snapshot())
        assert len(rebuilt) == 1
        assert rebuilt[0].name == "StepOnly"
        assert rebuilt[0].calls == {"on_step": 3}
        assert rebuilt[0].total_seconds == pytest.approx(profile.total_seconds)

    def test_non_profile_timers_are_ignored(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("suite.workload_seconds", 1.0)
        assert profiles_from_snapshot(registry.snapshot()) == []


class TestTable:
    def test_table_renders_phases_and_totals(self):
        proxy, profile = wrap_profiled(StepOnly())
        proxy.on_step(object())
        text = format_profile_table([profile], {"simulate": 1.25})
        assert "simulate" in text
        assert "StepOnly" in text
        assert "TOTAL" in text
