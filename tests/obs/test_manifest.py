"""Run-manifest tests: provenance fields, aggregation, serialization."""

from __future__ import annotations

import json
import pickle

from repro import __version__
from repro.harness.runner import SuiteConfig
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_suite_manifest,
    build_workload_manifest,
    write_manifest,
)


class _FakeResult:
    def __init__(self, manifest):
        self.manifest = manifest


def _manifest(name="compress", **config_kwargs):
    config = SuiteConfig(**config_kwargs)
    return build_workload_manifest(name, config, "digest123", {"total": 1.5})


class TestWorkloadManifest:
    def test_records_engine_config_digest_and_timing(self):
        manifest = _manifest(engine="interpreter", scale=2)
        assert manifest.engine == "interpreter"
        assert manifest.config["scale"] == 2
        assert manifest.source_digest == "digest123"
        assert manifest.cache == "computed"
        assert manifest.timing == {"total": 1.5}
        assert manifest.package_version == __version__
        assert manifest.schema == MANIFEST_SCHEMA

    def test_to_dict_is_json_serializable(self):
        assert json.loads(json.dumps(_manifest().to_dict()))["workload"] == "compress"

    def test_pickles_with_cached_results(self):
        manifest = _manifest()
        assert pickle.loads(pickle.dumps(manifest)).to_dict() == manifest.to_dict()


class TestSuiteManifest:
    def test_aggregates_dispositions(self):
        computed = _manifest("compress")
        hit = _manifest("go")
        hit.cache = "disk-hit"
        suite = build_suite_manifest(
            SuiteConfig(),
            {"compress": _FakeResult(computed), "go": _FakeResult(hit)},
            "digest123",
            timing={"simulate": 2.0},
            elapsed_seconds=3.0,
        )
        assert suite["cache_dispositions"] == {"computed": 1, "disk-hit": 1}
        assert suite["workloads"]["go"]["cache"] == "disk-hit"
        assert suite["engine"] == SuiteConfig().engine
        assert suite["elapsed_seconds"] == 3.0
        assert suite["timing"] == {"simulate": 2.0}

    def test_results_without_manifest_are_unknown(self):
        suite = build_suite_manifest(
            SuiteConfig(), {"gcc": _FakeResult(None)}, "digest123"
        )
        assert suite["cache_dispositions"] == {"unknown": 1}
        assert suite["workloads"]["gcc"]["cache"] == "unknown"

    def test_write_manifest_emits_json_file(self, tmp_path):
        suite = build_suite_manifest(SuiteConfig(), {}, "digest123")
        path = tmp_path / "suite.manifest.json"
        write_manifest(suite, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "suite"
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["source_digest"] == "digest123"
