"""Span tracer tests: nesting, exception safety, Chrome trace format."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing as obs_tracing
from repro.obs.tracing import SpanTracer


def _begins(tracer):
    return [e for e in tracer.events if e["ph"] == "B"]


def _ends(tracer):
    return [e for e in tracer.events if e["ph"] == "E"]


class TestSpans:
    def test_nested_spans_emit_matched_pairs(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert [e["name"] for e in tracer.events] == [
            "outer", "inner", "inner", "inner", "inner", "outer",
        ]
        assert tracer.span_count("inner") == 2
        assert len(_begins(tracer)) == len(_ends(tracer)) == 3

    def test_span_closes_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert len(_begins(tracer)) == len(_ends(tracer)) == 2
        assert tracer.events[-1]["name"] == "outer"

    def test_span_args_recorded_on_begin(self):
        tracer = SpanTracer()
        with tracer.span("simulate", workload="compress"):
            pass
        assert _begins(tracer)[0]["args"] == {"workload": "compress"}

    def test_durations_attribute_nested_time_to_both(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        durations = tracer.durations()
        assert set(durations) == {"outer", "inner"}
        assert durations["outer"] >= durations["inner"] >= 0.0

    def test_extend_splices_foreign_events(self):
        parent, worker = SpanTracer(), SpanTracer()
        with worker.span("simulate"):
            pass
        parent.extend(worker.events)
        assert parent.span_count("simulate") == 1


class TestChromeTraceFormat:
    def _trace(self):
        tracer = SpanTracer()
        with tracer.span("assemble"):
            pass
        with tracer.span("simulate", engine="predecoded"):
            with tracer.span("warmup"):
                pass
        return tracer

    def test_trace_is_valid_json_with_trace_events(self, tmp_path):
        tracer = self._trace()
        path = tmp_path / "trace.json"
        tracer.write(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"] == tracer.events

    def test_events_have_required_chrome_fields(self):
        for event in self._trace().events:
            assert event["ph"] in ("B", "E")
            assert isinstance(event["ts"], int)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["name"], str)

    def test_timestamps_are_monotonic(self):
        stamps = [e["ts"] for e in self._trace().events]
        assert stamps == sorted(stamps)

    def test_begin_end_pairs_balance_per_name(self):
        tracer = self._trace()
        for name in ("assemble", "simulate", "warmup"):
            begins = [e for e in tracer.events if e["ph"] == "B" and e["name"] == name]
            ends = [e for e in tracer.events if e["ph"] == "E" and e["name"] == name]
            assert len(begins) == len(ends) >= 1


class TestGlobalSlot:
    def test_module_span_is_noop_without_tracer(self):
        assert obs_tracing.current_tracer() is None
        with obs_tracing.span("anything"):
            pass  # must not raise, must not record anywhere

    def test_module_span_records_when_installed(self, tracer):
        with obs_tracing.span("phase", workload="go"):
            pass
        assert tracer.span_count("phase") == 1

    def test_install_and_uninstall(self):
        instance = SpanTracer()
        previous = obs_tracing.current_tracer()
        obs_tracing.install_tracer(instance)
        try:
            assert obs_tracing.current_tracer() is instance
        finally:
            obs_tracing.install_tracer(previous)
        assert obs_tracing.current_tracer() is previous
