"""Unit tests for the metrics registry."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.metrics import REGISTRY, MetricsRegistry, Timer


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.value("a") == 5

    def test_value_of_unknown_counter_is_zero(self):
        assert MetricsRegistry().value("never.touched") == 0

    def test_gauge_is_last_value_wins(self):
        registry = MetricsRegistry(enabled=True)
        registry.set_gauge("g", 7)
        registry.set_gauge("g", 3)
        assert registry.gauge("g").value == 3

    def test_timer_tracks_count_total_min_max_mean(self):
        timer = Timer()
        for seconds in (0.5, 0.1, 0.4):
            timer.observe(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(1.0)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.5)
        assert timer.mean == pytest.approx(1.0 / 3)

    def test_empty_timer_mean_is_zero(self):
        assert Timer().mean == 0.0

    def test_timed_context_manager_observes(self):
        registry = MetricsRegistry(enabled=True)
        with registry.timed("block"):
            pass
        assert registry.timer("block").count == 1

    def test_accessors_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.timer("t") is registry.timer("t")


class TestDisabledRegistry:
    def test_guarded_writes_are_noops(self):
        registry = MetricsRegistry()  # disabled by default
        registry.inc("a")
        registry.set_gauge("g", 1)
        registry.observe("t", 0.1)
        with registry.timed("block"):
            pass
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}}

    def test_global_registry_defaults_disabled(self):
        assert REGISTRY.enabled is False


class TestSnapshotMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.inc("c", 2)
        registry.set_gauge("g", 9)
        registry.observe("t", 0.2)
        registry.observe("t", 0.6)
        return registry

    def test_snapshot_round_trips_through_pickle(self):
        snap = self._populated().snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_adds_counters_and_timers(self):
        first, second = self._populated(), self._populated()
        first.merge(second.snapshot())
        assert first.value("c") == 4
        timer = first.timer("t")
        assert timer.count == 4
        assert timer.total == pytest.approx(1.6)
        assert timer.min == pytest.approx(0.2)
        assert timer.max == pytest.approx(0.6)

    def test_merge_overwrites_gauges(self):
        registry = self._populated()
        other = MetricsRegistry(enabled=True)
        other.set_gauge("g", 42)
        registry.merge(other.snapshot())
        assert registry.gauge("g").value == 42

    def test_merge_into_empty_registry(self):
        empty = MetricsRegistry(enabled=True)
        empty.merge(self._populated().snapshot())
        assert empty.value("c") == 2
        assert empty.timer("t").min == pytest.approx(0.2)

    def test_reset_drops_instruments_keeps_enablement(self):
        registry = self._populated()
        registry.reset()
        assert registry.enabled is True
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}
