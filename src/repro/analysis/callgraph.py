"""Dynamic call-graph profiling (a gprof-style view).

Builds the dynamic call graph from the simulator's call/return events:
per-function call counts, exclusive (self) and inclusive (self +
callees) instruction counts, and caller→callee edge weights.  The
per-function "flat profile" complements the paper's Table 9 (which ranks
functions by their prologue/epilogue repetition): here they are ranked
by where time actually goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.events import CallEvent, ReturnEvent, StepRecord
from repro.sim.observer import Analyzer

#: Name used for execution outside any known function.
UNKNOWN = "<unknown>"


@dataclass
class FunctionProfile:
    name: str
    calls: int = 0
    #: Instructions retired inside the function body itself.
    exclusive: int = 0
    #: Instructions retired in the function or anything it called.
    inclusive: int = 0

    @property
    def average_exclusive(self) -> float:
        return self.exclusive / self.calls if self.calls else 0.0


@dataclass
class CallGraphReport:
    functions: Dict[str, FunctionProfile]
    #: (caller, callee) -> dynamic call count.
    edges: Dict[Tuple[str, str], int]
    total_instructions: int

    def flat_profile(self, count: int = 10) -> List[FunctionProfile]:
        """Functions ranked by exclusive instruction count."""
        ranked = sorted(
            self.functions.values(), key=lambda f: f.exclusive, reverse=True
        )
        return ranked[:count]

    def exclusive_share_pct(self, name: str) -> float:
        profile = self.functions.get(name)
        if profile is None or not self.total_instructions:
            return 0.0
        return 100.0 * profile.exclusive / self.total_instructions

    def callers_of(self, name: str) -> List[Tuple[str, int]]:
        return sorted(
            ((caller, hits) for (caller, callee), hits in self.edges.items() if callee == name),
            key=lambda pair: pair[1],
            reverse=True,
        )

    def callees_of(self, name: str) -> List[Tuple[str, int]]:
        return sorted(
            ((callee, hits) for (caller, callee), hits in self.edges.items() if caller == name),
            key=lambda pair: pair[1],
            reverse=True,
        )


class _Frame:
    __slots__ = ("name", "exclusive", "inclusive")

    def __init__(self, name: str) -> None:
        self.name = name
        self.exclusive = 0
        self.inclusive = 0


class CallGraphProfiler(Analyzer):
    """Accumulates the dynamic call graph over the event stream.

    Recursion is handled naturally (each activation is its own frame);
    inclusive counts for recursive functions therefore count shared
    instructions once per live activation, as gprof-style profilers do.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionProfile] = {}
        self._edges: Dict[Tuple[str, str], int] = {}
        self._stack: List[_Frame] = [_Frame(UNKNOWN)]
        self.total_instructions = 0

    def _profile(self, name: str) -> FunctionProfile:
        profile = self._functions.get(name)
        if profile is None:
            profile = FunctionProfile(name)
            self._functions[name] = profile
        return profile

    def on_step(self, record: StepRecord) -> None:
        self.total_instructions += 1
        frame = self._stack[-1]
        frame.exclusive += 1
        frame.inclusive += 1

    def on_call(self, event: CallEvent) -> None:
        callee = event.function.name if event.function else UNKNOWN
        caller = self._stack[-1].name
        if not event.warmup:
            self._profile(callee).calls += 1
            key = (caller, callee)
            self._edges[key] = self._edges.get(key, 0) + 1
        self._stack.append(_Frame(callee))

    def on_return(self, event: ReturnEvent) -> None:
        if len(self._stack) <= 1:
            return
        frame = self._stack.pop()
        profile = self._profile(frame.name)
        profile.exclusive += frame.exclusive
        profile.inclusive += frame.inclusive
        # The callee's instructions are inclusive for the caller too.
        self._stack[-1].inclusive += frame.inclusive
        # Reset per-activation counters (they were just flushed).
        frame.exclusive = 0

    def on_finish(self) -> None:
        # Flush any frames still live at program end (main, or exit()).
        while len(self._stack) > 1:
            frame = self._stack.pop()
            profile = self._profile(frame.name)
            profile.exclusive += frame.exclusive
            profile.inclusive += frame.inclusive
            self._stack[-1].inclusive += frame.inclusive
        root = self._stack[0]
        if root.exclusive:
            profile = self._profile(UNKNOWN)
            profile.exclusive += root.exclusive
            profile.inclusive += root.inclusive
            root.exclusive = 0
            root.inclusive = 0

    def report(self) -> CallGraphReport:
        return CallGraphReport(
            functions=dict(self._functions),
            edges=dict(self._edges),
            total_instructions=self.total_instructions,
        )
