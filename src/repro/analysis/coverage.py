"""Coverage-curve math shared by the figure reproductions.

The paper's Figures 1 and 4 are cumulative coverage curves: sort the
contributors (static instructions / unique repeatable instances) by their
contribution to dynamic repetition, then ask what fraction of contributors
accounts for a given fraction of the total.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def contributors_for_fraction(weights: Sequence[int], fraction: float) -> int:
    """Smallest number of largest-weight contributors covering ``fraction``.

    ``weights`` need not be sorted; zero weights never count as
    contributors.  Returns 0 when the total weight is 0.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    positive = sorted((w for w in weights if w > 0), reverse=True)
    total = sum(positive)
    if total == 0:
        return 0
    target = total * fraction
    covered = 0
    for index, weight in enumerate(positive, start=1):
        covered += weight
        if covered >= target - 1e-9:
            return index
    return len(positive)


def coverage_curve(
    weights: Sequence[int], fractions: Sequence[float]
) -> List[Tuple[float, float]]:
    """For each target coverage fraction, the fraction of contributors needed.

    Returns ``[(coverage_fraction, contributor_fraction), ...]``.  This is
    the transposed view used by Figure 1 ("X% of repeated static
    instructions account for Y% of repetition").
    """
    positive = [w for w in weights if w > 0]
    count = len(positive)
    if count == 0:
        return [(f, 0.0) for f in fractions]
    return [
        (f, contributors_for_fraction(positive, f) / count) for f in fractions
    ]


def cumulative_share_curve(
    weights: Sequence[int], points: int = 100
) -> List[Tuple[float, float]]:
    """Sampled cumulative curve: top x% of contributors -> y% of weight."""
    positive = sorted((w for w in weights if w > 0), reverse=True)
    total = sum(positive)
    if total == 0 or not positive:
        return [(0.0, 0.0), (1.0, 0.0)]
    curve: List[Tuple[float, float]] = []
    covered = 0
    next_sample = 1
    for index, weight in enumerate(positive, start=1):
        covered += weight
        while index >= next_sample * len(positive) / points:
            curve.append((index / len(positive), covered / total))
            next_sample += 1
    if not curve or curve[-1][0] < 1.0:
        curve.append((1.0, 1.0))
    return curve


#: Figure 3's bucket boundaries for unique-repeatable-instance counts.
INSTANCE_BUCKETS: Tuple[Tuple[int, int, str], ...] = (
    (1, 1, "1"),
    (2, 10, "2-10"),
    (11, 100, "11-100"),
    (101, 1000, "101-1000"),
    (1001, 1 << 62, ">1000"),
)


def bucket_label(instance_count: int) -> str:
    """Figure 3 bucket for a static instruction's unique-instance count."""
    for low, high, label in INSTANCE_BUCKETS:
        if low <= instance_count <= high:
            return label
    raise ValueError(f"instance count must be >= 1, got {instance_count}")


def bucket_shares(per_static: Dict[str, int]) -> Dict[str, float]:
    """Normalize per-bucket weights into shares of the total."""
    total = sum(per_static.values())
    if total == 0:
        return {label: 0.0 for _, _, label in INSTANCE_BUCKETS}
    return {
        label: per_static.get(label, 0) / total for _, _, label in INSTANCE_BUCKETS
    }
