"""Static control-flow graphs and basic-block execution profiling.

Infrastructure layer under the repetition analyses: builds the static
CFG of a :class:`~repro.asm.program.Program` (basic blocks, successor
edges, function membership) and profiles block execution counts from the
simulator's event stream — the standard "hot block" view that complements
the paper's per-instruction repetition view.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Program
from repro.isa.instructions import Format, Kind
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    #: Address one past the last instruction.
    end: int
    #: Static successor block start addresses.
    successors: Tuple[int, ...] = ()
    function: Optional[str] = None

    @property
    def size(self) -> int:
        return (self.end - self.start) // 4

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end


class ControlFlowGraph:
    """The static CFG of a program's text segment."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: Dict[int, BasicBlock] = {}
        self._build()
        self._starts = sorted(self.blocks)

    def _build(self) -> None:
        program = self.program
        base = program.text_base
        end = program.text_end
        leaders = {base}

        for instr in program.text:
            kind = instr.op.kind
            next_addr = instr.addr + 4
            if kind == Kind.BRANCH or kind == Kind.JUMP:
                if base <= instr.target < end:
                    leaders.add(instr.target)
                if next_addr < end:
                    leaders.add(next_addr)
            elif kind in (Kind.CALL, Kind.JUMP_REG):
                # Calls return to the next instruction; jr targets are
                # dynamic.  Both end a block.
                if kind == Kind.CALL and instr.op.fmt == Format.J and base <= instr.target < end:
                    leaders.add(instr.target)
                if next_addr < end:
                    leaders.add(next_addr)
        for function in program.functions:
            leaders.add(function.entry)

        ordered = sorted(leaders)
        for i, start in enumerate(ordered):
            stop = ordered[i + 1] if i + 1 < len(ordered) else end
            if start >= end:
                continue
            last = self.program.instruction_at(stop - 4)
            successors: List[int] = []
            kind = last.op.kind
            if kind == Kind.BRANCH:
                successors.append(last.target)
                if stop < end:
                    successors.append(stop)
            elif kind == Kind.JUMP:
                successors.append(last.target)
            elif kind == Kind.CALL:
                if last.op.fmt == Format.J:
                    successors.append(last.target)
                if stop < end:
                    successors.append(stop)  # the return continuation
            elif kind == Kind.JUMP_REG:
                pass  # dynamic target
            else:
                if stop < end:
                    successors.append(stop)
            info = self.program.function_at(start)
            self.blocks[start] = BasicBlock(
                start, stop, tuple(dict.fromkeys(successors)), info.name if info else None
            )

    # -- queries ------------------------------------------------------------

    def block_at(self, address: int) -> BasicBlock:
        """The block containing ``address``."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            raise KeyError(f"address {address:#x} before text segment")
        block = self.blocks[self._starts[index]]
        if address not in block:
            raise KeyError(f"address {address:#x} outside text segment")
        return block

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def blocks_of_function(self, name: str) -> List[BasicBlock]:
        return [b for b in self.blocks.values() if b.function == name]


@dataclass
class BlockProfile:
    """Execution profile over basic blocks."""

    #: block start -> times its leader executed.
    counts: Dict[int, int]
    cfg: ControlFlowGraph

    def hottest(self, count: int = 10) -> List[Tuple[BasicBlock, int]]:
        ranked = sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)
        return [(self.cfg.blocks[start], hits) for start, hits in ranked[:count]]

    @property
    def executed_blocks(self) -> int:
        return len(self.counts)

    def dynamic_instructions(self) -> int:
        """Instructions implied by block counts (leader count x size is an
        overestimate under mid-block early exits; here blocks are exact
        because only leaders are counted on entry)."""
        return sum(
            self.cfg.blocks[start].size * hits for start, hits in self.counts.items()
        )


class BasicBlockProfiler(Analyzer):
    """Counts basic-block entries over the execution stream."""

    def __init__(self) -> None:
        self._cfg: Optional[ControlFlowGraph] = None
        self._leader_counts: Dict[int, int] = {}
        self._leaders: set = set()

    def on_start(self, program: Program) -> None:
        self._cfg = ControlFlowGraph(program)
        self._leaders = set(self._cfg.blocks)

    def on_step(self, record: StepRecord) -> None:
        if record.pc in self._leaders:
            self._leader_counts[record.pc] = self._leader_counts.get(record.pc, 0) + 1

    def report(self) -> BlockProfile:
        if self._cfg is None:
            raise RuntimeError("profiler was never attached to a run")
        return BlockProfile(dict(self._leader_counts), self._cfg)
