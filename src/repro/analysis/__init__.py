"""Analysis utilities: coverage math, table formatting, CFG profiling."""

from repro.analysis.callgraph import (
    CallGraphProfiler,
    CallGraphReport,
    FunctionProfile,
)
from repro.analysis.cfg import (
    BasicBlock,
    BasicBlockProfiler,
    BlockProfile,
    ControlFlowGraph,
)
from repro.analysis.coverage import (
    INSTANCE_BUCKETS,
    bucket_label,
    bucket_shares,
    contributors_for_fraction,
    coverage_curve,
    cumulative_share_curve,
)

__all__ = [
    "BasicBlock",
    "BasicBlockProfiler",
    "BlockProfile",
    "CallGraphProfiler",
    "CallGraphReport",
    "ControlFlowGraph",
    "FunctionProfile",
    "INSTANCE_BUCKETS",
    "bucket_label",
    "bucket_shares",
    "contributors_for_fraction",
    "coverage_curve",
    "cumulative_share_curve",
]
