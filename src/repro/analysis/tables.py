"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_cell(value: object) -> str:
    """Render one cell: floats get one decimal, everything else str()."""
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (first column left, rest right)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    rendered.extend([format_cell(cell) for cell in row] for row in rows)
    widths = [
        max(len(row[col]) for row in rendered) for col in range(len(headers))
    ]

    def render_row(row: List[str]) -> str:
        cells = [
            row[0].ljust(widths[0]),
            *(row[col].rjust(widths[col]) for col in range(1, len(widths))),
        ]
        return "  ".join(cells).rstrip()

    lines = [render_row(rendered[0])]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered[1:])
    return "\n".join(lines)


#: One titled section of a multi-panel table.
Panel = Tuple[str, Sequence[str], Sequence[Sequence[object]]]


def format_panels(panels: Sequence[Panel]) -> str:
    """Render titled tables stacked with blank lines between them.

    The multi-section layout used by Table 3-style experiments where one
    artifact is several views (overall / repeated / propensity) over the
    same columns.
    """
    return "\n\n".join(
        f"{title}\n{format_table(headers, rows)}" for title, headers, rows in panels
    )
