"""repro — reproduction of Sodani & Sohi, "An Empirical Analysis of
Instruction Repetition" (ASPLOS 1998).

Layers (bottom-up):

* :mod:`repro.isa` — MIPS-I-like instruction set and ABI.
* :mod:`repro.asm` — assembler and program image.
* :mod:`repro.lang` — the MiniC compiler used to build the workloads.
* :mod:`repro.sim` — functional simulator with an analyzer event stream.
* :mod:`repro.core` — the paper's analyses (repetition tracking, global /
  function / local slice analyses, reuse buffer, value profiles).
* :mod:`repro.workloads` — eight synthetic SPEC'95-like benchmarks.
* :mod:`repro.analysis` — coverage math and table formatting.
* :mod:`repro.harness` — per-table/figure experiment registry and runner.
"""

__version__ = "1.0.0"
