"""Metrics registry: counters, gauges, and timers for run telemetry.

One process-global :class:`MetricsRegistry` (``REGISTRY``) collects
counts from the simulator, the result cache, the reuse buffer, and the
parallel suite runner.  It is **disabled by default** and costs nothing
while disabled: instrumented code checks ``REGISTRY.enabled`` once per
run (never per step) and skips collection entirely, so the simulator hot
loop is byte-for-byte the code that ran before telemetry existed.

Names are dotted paths (``sim.branches``, ``cache.disk.corrupt``).
Three instrument kinds exist:

* :class:`Counter` — monotonically increasing integer (events, bytes);
* :class:`Gauge` — last-written value (occupancy at end of run);
* :class:`Timer` — duration accumulator (count / total / min / max).

``snapshot()`` serializes everything to plain dicts and ``merge()``
folds another snapshot in — the parallel runner ships worker snapshots
across the process boundary and merges them into the parent registry,
so ``run_suite(jobs=N)`` aggregates exactly like a serial run.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Optional


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """A duration accumulator (seconds)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges, and timers."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer()
        return instrument

    # -- guarded conveniences (no-ops while disabled) ------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        if self.enabled:
            self.timer(name).observe(seconds)

    @contextmanager
    def timed(self, name: str):
        """Time a block into ``name`` (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        started = perf_counter()
        try:
            yield
        finally:
            self.timer(name).observe(perf_counter() - started)

    # -- aggregation ---------------------------------------------------

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON/pickle friendly)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "timers": {
                k: {"count": t.count, "total": t.total, "min": t.min, "max": t.max}
                for k, t in sorted(self._timers.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counters/timers add, gauges overwrite."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            timer.count += stats["count"]
            timer.total += stats["total"]
            for bound, better in (("min", min), ("max", max)):
                theirs = stats.get(bound)
                if theirs is None:
                    continue
                ours = getattr(timer, bound)
                setattr(timer, bound, theirs if ours is None else better(ours, theirs))

    def reset(self) -> None:
        """Drop every instrument (enablement is unchanged)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()


#: The process-global registry all instrumented components report to.
REGISTRY = MetricsRegistry()


def enable() -> None:
    """Turn on metrics collection in the global registry."""
    REGISTRY.enabled = True


def disable() -> None:
    """Turn off metrics collection (existing values are kept)."""
    REGISTRY.enabled = False


def enabled() -> bool:
    return REGISTRY.enabled
