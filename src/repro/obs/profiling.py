"""Per-analyzer profiling: attribute run time to each attached Analyzer.

:func:`wrap_profiled` wraps an :class:`~repro.sim.observer.Analyzer` in
a transparent proxy that times every hook invocation into an
:class:`AnalyzerProfile`.  The proxy *class* is generated per set of
overridden hooks (and cached), because the simulator's fast path
decides per hook whether an analyzer participates by looking at the
analyzer's **type** (:func:`repro.sim.simulator._hooks_for`): a proxy
that blindly overrode ``on_step`` for a call-graph-only analyzer would
force step-record materialization and destroy the record-free fast
path.  Wrapping therefore preserves exactly the event stream — and the
event *costs* — the bare analyzer would have had, plus one timed call
frame per delivered event.

Profiling is opt-in (``--profile`` / ``run_suite(profile=True)``); the
measured hook times are published to the metrics registry under
``profile.<Analyzer>.<hook>`` and rendered by
:func:`format_profile_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Tuple, Type

from repro.sim.observer import Analyzer

#: Every hook the simulator can deliver.
HOOKS = ("on_start", "on_step", "on_call", "on_return", "on_syscall", "on_finish")


@dataclass
class AnalyzerProfile:
    """Call counts and cumulative seconds per hook for one analyzer."""

    name: str
    calls: Dict[str, int] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    def publish(self, registry) -> None:
        """Fold this profile into ``registry`` as ``profile.*`` timers."""
        for hook, count in self.calls.items():
            timer = registry.timer(f"profile.{self.name}.{hook}")
            timer.count += count
            timer.total += self.seconds.get(hook, 0.0)


def _make_hook(hook_name: str):
    def hook(self, *event):
        profile = self._profile
        started = perf_counter()
        try:
            return getattr(self._inner, hook_name)(*event)
        finally:
            elapsed = perf_counter() - started
            profile.calls[hook_name] = profile.calls.get(hook_name, 0) + 1
            profile.seconds[hook_name] = profile.seconds.get(hook_name, 0.0) + elapsed

    hook.__name__ = hook_name
    return hook


#: Proxy classes keyed by the tuple of hooks they forward.
_PROXY_CLASSES: Dict[Tuple[str, ...], Type[Analyzer]] = {}


def _overridden_hooks(analyzer: Analyzer) -> Tuple[str, ...]:
    cls = type(analyzer)
    return tuple(
        name for name in HOOKS if getattr(cls, name) is not getattr(Analyzer, name)
    )


def _proxy_class(hooks: Tuple[str, ...]) -> Type[Analyzer]:
    proxy = _PROXY_CLASSES.get(hooks)
    if proxy is None:
        namespace = {name: _make_hook(name) for name in hooks}
        namespace["__slots__"] = ("_inner", "_profile")

        def __init__(self, inner: Analyzer, profile: AnalyzerProfile) -> None:
            self._inner = inner
            self._profile = profile

        namespace["__init__"] = __init__
        proxy = type(f"Profiled[{','.join(hooks) or 'none'}]", (Analyzer,), namespace)
        _PROXY_CLASSES[hooks] = proxy
    return proxy


def wrap_profiled(analyzer: Analyzer) -> Tuple[Analyzer, AnalyzerProfile]:
    """A profiling proxy for ``analyzer`` plus its (live) profile."""
    profile = AnalyzerProfile(name=type(analyzer).__name__)
    proxy = _proxy_class(_overridden_hooks(analyzer))(analyzer, profile)
    return proxy, profile


def wrap_all(analyzers) -> Tuple[List[Analyzer], List[AnalyzerProfile]]:
    """Wrap a whole analyzer stack; returns (proxies, profiles)."""
    proxies: List[Analyzer] = []
    profiles: List[AnalyzerProfile] = []
    for analyzer in analyzers:
        proxy, profile = wrap_profiled(analyzer)
        proxies.append(proxy)
        profiles.append(profile)
    return proxies, profiles


def profiles_from_snapshot(snapshot: Dict) -> List[AnalyzerProfile]:
    """Rebuild per-analyzer profiles from a registry snapshot.

    Inverse of :meth:`AnalyzerProfile.publish` — folds every
    ``profile.<Analyzer>.<hook>`` timer back into an
    :class:`AnalyzerProfile`, so the CLI can render a table for runs
    whose profiles crossed a process boundary (or a cache) as metrics.
    Per-hook timing distributions are summarized (count/total only).
    """
    by_name: Dict[str, AnalyzerProfile] = {}
    for key, stats in snapshot.get("timers", {}).items():
        if not key.startswith("profile."):
            continue
        _, name, hook = key.split(".", 2)
        profile = by_name.setdefault(name, AnalyzerProfile(name=name))
        profile.calls[hook] = profile.calls.get(hook, 0) + stats["count"]
        profile.seconds[hook] = profile.seconds.get(hook, 0.0) + stats["total"]
    return list(by_name.values())


def format_profile_table(
    profiles: List[AnalyzerProfile], phases: Dict[str, float] = None
) -> str:
    """Render per-phase and per-analyzer timing as an aligned text table."""
    lines: List[str] = []
    if phases:
        lines.append("phase                      seconds")
        lines.append("-" * 35)
        for name, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<24s} {seconds:>10.4f}")
        lines.append("")
    lines.append("analyzer                   hook             calls     seconds")
    lines.append("-" * 62)
    for profile in sorted(profiles, key=lambda p: -p.total_seconds):
        for hook in HOOKS:
            if hook not in profile.calls:
                continue
            lines.append(
                f"{profile.name:<26s} {hook:<12s} {profile.calls[hook]:>9,d} "
                f"{profile.seconds.get(hook, 0.0):>11.4f}"
            )
        lines.append(
            f"{profile.name:<26s} {'TOTAL':<12s} {profile.total_calls:>9,d} "
            f"{profile.total_seconds:>11.4f}"
        )
    return "\n".join(lines)
