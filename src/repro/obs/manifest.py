"""Run manifests: provenance records for workload results and suites.

A :class:`RunManifest` answers "where did this number come from?" for a
:class:`~repro.harness.runner.WorkloadResult`: which engine executed
it, under which :class:`~repro.harness.runner.SuiteConfig`, over which
source tree (digest), whether it was simulated or served from a cache
layer, by which package version, and how long each phase took.  The
suite-level manifest (:func:`build_suite_manifest`) aggregates the
per-workload records and is serialized as JSON next to any ``--out``
artifact the CLI writes (and embedded in ``--metrics-out``).

Manifests are plain dataclasses of primitives so they pickle with the
result into the persistent cache; a cache hit updates only the
``cache`` disposition field (``computed`` → ``memory-hit`` /
``disk-hit``), preserving the original timing of the simulation that
produced the numbers.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Manifest schema version (bump on incompatible layout changes).
#: v2: recovery provenance (degraded / degraded_from / attempts /
#: failures) for fault-tolerant suite runs.
MANIFEST_SCHEMA = 2

#: Cache dispositions a result can carry.
DISPOSITIONS = ("computed", "memory-hit", "disk-hit")


def _package_version() -> str:
    from repro import __version__

    return __version__


def config_dict(config) -> Dict[str, object]:
    """A SuiteConfig (or any dataclass) as a JSON-ready dict."""
    return dataclasses.asdict(config)


@dataclass
class RunManifest:
    """Provenance for one WorkloadResult."""

    workload: str
    engine: str
    config: Dict[str, object]
    source_digest: str
    #: How this result reached the caller: computed / memory-hit / disk-hit.
    cache: str = "computed"
    #: Phase seconds measured when the result was simulated.
    timing: Dict[str, float] = field(default_factory=dict)
    package_version: str = field(default_factory=_package_version)
    schema: int = MANIFEST_SCHEMA
    #: Recovery provenance: True when this result came from an engine
    #: fallback (``degraded_from`` names the engine that failed).
    degraded: bool = False
    degraded_from: Optional[str] = None
    #: How many attempts the recovery loop made to produce this result.
    attempts: int = 1
    #: FailureRecord dicts for the failed attempts that preceded it.
    failures: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def build_workload_manifest(
    workload_name: str,
    config,
    source_digest: str,
    timing: Optional[Dict[str, float]] = None,
) -> RunManifest:
    """Manifest for a freshly simulated workload result."""
    return RunManifest(
        workload=workload_name,
        engine=getattr(config, "engine", "unknown"),
        config=config_dict(config),
        source_digest=source_digest,
        cache="computed",
        timing=dict(timing or {}),
    )


def build_suite_manifest(
    config,
    results,
    source_digest: str,
    timing: Optional[Dict[str, float]] = None,
    elapsed_seconds: Optional[float] = None,
    failures: Optional[Dict[str, object]] = None,
) -> dict:
    """Aggregate manifest for a whole suite run (JSON-ready dict).

    ``failures`` maps workload name -> terminal FailureRecord (or its
    dict form) for non-strict runs that completed partially.
    """
    workloads: Dict[str, dict] = {}
    dispositions: Dict[str, int] = {}
    for name, result in results.items():
        manifest = getattr(result, "manifest", None)
        if manifest is not None:
            workloads[name] = manifest.to_dict()
            dispositions[manifest.cache] = dispositions.get(manifest.cache, 0) + 1
        else:  # pre-telemetry cache entries carry no manifest
            workloads[name] = {"workload": name, "cache": "unknown"}
            dispositions["unknown"] = dispositions.get("unknown", 0) + 1
    failure_dicts: Dict[str, dict] = {}
    for name, record in (failures or {}).items():
        failure_dicts[name] = (
            record.to_dict() if hasattr(record, "to_dict") else dict(record)
        )
    return {
        "schema": MANIFEST_SCHEMA,
        "kind": "suite",
        "created_unix": time.time(),
        "package_version": _package_version(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "engine": getattr(config, "engine", "unknown"),
        "config": config_dict(config),
        "source_digest": source_digest,
        "cache_dispositions": dispositions,
        "timing": dict(timing or {}),
        "elapsed_seconds": elapsed_seconds,
        "workloads": workloads,
        "failures": failure_dicts,
        "partial": bool(failure_dicts),
    }


def write_manifest(manifest: dict, path: str) -> None:
    """Serialize a suite manifest as JSON."""
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
