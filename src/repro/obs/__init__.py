"""Observability: metrics registry, span tracing, profiling, manifests.

Three pillars, all opt-in and all near-zero-cost while disabled:

* :mod:`repro.obs.metrics` — process-global counters / gauges / timers
  fed by the simulator, the result cache, the reuse buffer, and the
  parallel runner; snapshots merge across worker processes.
* :mod:`repro.obs.tracing` — nested phase spans (assemble → warm-up →
  simulate → per-analyzer report) emitted as Chrome trace-event JSON
  for ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.profiling` + :mod:`repro.obs.manifest` — per-analyzer
  hook timing and provenance manifests attached to every result.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    build_suite_manifest,
    build_workload_manifest,
    write_manifest,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, disable, enable, enabled
from repro.obs.profiling import (
    AnalyzerProfile,
    format_profile_table,
    wrap_all,
    wrap_profiled,
)
from repro.obs.tracing import SpanTracer, current_tracer, install_tracer, span

__all__ = [
    "AnalyzerProfile",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "REGISTRY",
    "RunManifest",
    "SpanTracer",
    "build_suite_manifest",
    "build_workload_manifest",
    "current_tracer",
    "disable",
    "enable",
    "enabled",
    "format_profile_table",
    "install_tracer",
    "span",
    "wrap_all",
    "wrap_profiled",
    "write_manifest",
]
