"""Span tracer: nested run phases as Chrome trace-event JSON.

A :class:`SpanTracer` records begin/end pairs for the phases of a run
(assemble → warm-up → simulate → per-analyzer report) with microsecond
timestamps from ``perf_counter_ns``.  ``chrome_trace()`` emits the
`Chrome trace-event format`__ (``B``/``E`` duration events), so a
``--trace-out`` file loads directly in ``chrome://tracing`` or Perfetto.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Like the metrics registry, tracing is opt-in through a process-global
slot: components call :func:`span`, which returns a real span context
only while a tracer is installed and a shared no-op otherwise.  Spans
are context managers, so a failing analyzer (or a simulator fault)
still closes every open span on the way out — the emitted JSON always
has matched B/E pairs.

The parallel suite runner ships each worker's event list back to the
parent and splices it in with :meth:`SpanTracer.extend`; worker events
keep their own ``pid``, so a fanned-out suite renders as one process
lane per worker.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Dict, List, Optional


class SpanTracer:
    """Records nested spans as Chrome ``B``/``E`` trace events."""

    def __init__(self) -> None:
        self._origin_ns = time.perf_counter_ns()
        #: Chrome-format event dicts, in emission order.
        self.events: List[dict] = []
        self._depth = 0

    # -- recording -----------------------------------------------------

    def _now_us(self) -> int:
        return (time.perf_counter_ns() - self._origin_ns) // 1000

    def begin(self, name: str, **args) -> None:
        event = {
            "name": name,
            "ph": "B",
            "ts": self._now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            event["args"] = args
        self.events.append(event)
        self._depth += 1

    def end(self, name: str) -> None:
        self.events.append(
            {
                "name": name,
                "ph": "E",
                "ts": self._now_us(),
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
            }
        )
        self._depth -= 1

    @contextmanager
    def span(self, name: str, **args):
        """Record ``name`` around a block; exception-safe."""
        self.begin(name, **args)
        try:
            yield self
        finally:
            self.end(name)

    def extend(self, events: List[dict]) -> None:
        """Splice in events recorded by another tracer (e.g. a worker).

        Timestamps are kept as-is: Chrome/Perfetto render each ``pid``
        on its own lane, so cross-process clock skew only shifts lanes
        relative to each other.
        """
        self.events.extend(events)

    # -- summaries -----------------------------------------------------

    def span_count(self, name: str) -> int:
        """How many completed spans named ``name`` were recorded."""
        return sum(1 for e in self.events if e["ph"] == "B" and e["name"] == name)

    def durations(self) -> Dict[str, float]:
        """Total seconds per span name (summed over all instances).

        Nested spans are counted in full for both themselves and their
        parents (wall-clock attribution, not self-time).
        """
        totals: Dict[str, float] = {}
        stacks: Dict[tuple, List[dict]] = {}
        for event in self.events:
            key = (event["pid"], event["tid"])
            stack = stacks.setdefault(key, [])
            if event["ph"] == "B":
                stack.append(event)
            elif event["ph"] == "E" and stack:
                begin = stack.pop()
                totals[begin["name"]] = (
                    totals.get(begin["name"], 0.0)
                    + (event["ts"] - begin["ts"]) / 1e6
                )
        return totals

    # -- serialization -------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")


#: Installed tracer, or None (tracing off).
_TRACER: Optional[SpanTracer] = None

_NULL_SPAN = nullcontext()


def install_tracer(tracer: Optional[SpanTracer]) -> None:
    """Install ``tracer`` as the process-global tracer (None uninstalls)."""
    global _TRACER
    _TRACER = tracer


def current_tracer() -> Optional[SpanTracer]:
    return _TRACER


def span(name: str, **args):
    """A span context on the installed tracer, or a shared no-op."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)
