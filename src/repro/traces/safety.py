"""Trace safety filter: which candidates may be memoized at all.

A trace is only safe to skip if replaying its recorded live-outs is
indistinguishable from re-executing it.  That fails when the candidate

* contains a syscall (external state, events the simulator must raise),
* contains a call or return (call-stack events must fire),
* stores outside the tracked data/heap/stack segments (self-modifying-
  code adjacent or wild — cannot be re-validated or safely replayed),
* loads bytes partially written in-trace (the mixed value cannot be
  expressed as a single pre-trace live-in), or
* — in strict mode — has *implicit inputs* in the sense of the paper's
  §5.2 machinery (:func:`repro.core.function_analysis
  .classify_memory_access`): live-in loads from global/heap memory.
  This is the idempotent-slices criterion of Azevedo et al.; the default
  policy instead admits such loads and relies on validation (execution
  fast path) or store-based invalidation (analyzer) for freshness.

Length bounds also live here so every driver applies the same rule: a
trace shorter than ``min_len`` is not worth an entry (the instruction-
level reuse buffer already covers single instructions), and one longer
than the table's ``max_trace_len`` must have been split by the driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.function_analysis import classify_memory_access
from repro.traces.builder import (
    REASON_IMPLICIT_INPUT,
    REASON_TOO_LONG,
    REASON_TOO_SHORT,
    TraceBuilder,
)

#: Traces must cover at least this many instructions by default.
DEFAULT_MIN_TRACE_LEN = 2


@dataclass(frozen=True)
class SafetyPolicy:
    """Knobs for :func:`check_candidate`."""

    #: Candidates shorter than this are rejected (``too-short``).
    min_len: int = DEFAULT_MIN_TRACE_LEN
    #: When False, any global/heap memory live-in rejects the candidate
    #: (``implicit-input`` — the strict Azevedo-style criterion).
    allow_memory_live_ins: bool = True


def check_candidate(
    builder: TraceBuilder, policy: SafetyPolicy = SafetyPolicy()
) -> Optional[str]:
    """``None`` if the candidate is safe to install, else a reason string."""
    if builder.unsafe is not None:
        return builder.unsafe
    if builder.length < policy.min_len:
        return REASON_TOO_SHORT
    if builder.length > builder.max_len:
        return REASON_TOO_LONG
    if not policy.allow_memory_live_ins:
        for address, _width, _raw in builder.mem_live_ins:
            if classify_memory_access(address, is_store=False) == "implicit_input":
                return REASON_IMPLICIT_INPUT
    return None
