"""Analyzer-only trace reuse characterization (Table 10T).

Segments the observed dynamic stream into back-to-back regions at the
boundaries of :func:`~repro.traces.trace.boundary_kind`, probes the
trace table at every region start, and on a miss records the region as
a new candidate.  No execution is skipped — this is pure measurement,
the trace-level analogue of :class:`repro.core.reuse_buffer.ReuseBuffer`
so Table 10T can put both capture rates side by side on the same run.

Validation needs the machine state *at the region start*, which an
analyzer does not have direct access to — so a shadow register file
(plus hi/lo) is reconstructed from the record stream: every observed
operand read and register write lands in the shadow, with ``None``
marking still-unknown values (a probe against an unknown conservatively
misses).  Memory live-ins are not shadowed at all; instead every
observed store invalidates resident traces whose live-ins it touches
(word granularity), so a resident trace's memory live-ins are always
fresh and probes skip memory validation entirely.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instructions import Kind
from repro.isa.registers import A0, NUM_REGISTERS, V0
from repro.obs import metrics as obs_metrics
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer
from repro.traces.builder import TraceBuilder, step_next_pc
from repro.traces.safety import SafetyPolicy, check_candidate
from repro.traces.table import (
    DEFAULT_MAX_TRACE_LEN,
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_WAYS,
    TraceReuseTable,
)
from repro.traces.trace import (
    BOUNDARY_END,
    BOUNDARY_EXCLUDE,
    CLASS_NAMES,
    NUM_CLASSES,
    boundary_kind,
)

#: Fixed histogram buckets for the trace-length distribution panel.
LENGTH_BUCKETS: Tuple[Tuple[Optional[int], str], ...] = (
    (1, "1"),
    (2, "2"),
    (3, "3"),
    (7, "4-7"),
    (15, "8-15"),
    (None, "16+"),
)
LENGTH_BUCKET_LABELS: Tuple[str, ...] = tuple(label for _, label in LENGTH_BUCKETS)


def length_bucket(length: int) -> str:
    for bound, label in LENGTH_BUCKETS:
        if bound is None or length <= bound:
            return label
    return LENGTH_BUCKETS[-1][1]  # pragma: no cover - unreachable


@dataclass
class TraceReuseReport:
    """Table 10T numbers for one workload."""

    dynamic_total: int
    probes: int
    hits: int
    misses: int
    #: Dynamic instructions inside hit traces (the coverage numerator).
    covered_instructions: int
    traces_recorded: int
    rejections: Dict[str, int]
    invalidations: int
    evictions: int
    occupancy: int
    #: ``label -> hits`` over LENGTH_BUCKET_LABELS (hit-weighted).
    hit_length_hist: Dict[str, int] = field(default_factory=dict)
    #: Covered instructions per CLASS_NAMES slot.
    class_coverage: Tuple[int, ...] = (0,) * NUM_CLASSES
    recorded_length_total: int = 0
    recorded_length_max: int = 0

    @property
    def coverage_pct(self) -> float:
        """% of all dynamic instructions covered by trace hits — the
        trace-level counterpart of the buffer's ``hit_pct``."""
        if not self.dynamic_total:
            return 0.0
        return 100.0 * self.covered_instructions / self.dynamic_total

    @property
    def hit_rate_pct(self) -> float:
        """% of region-start probes that hit."""
        return 100.0 * self.hits / self.probes if self.probes else 0.0

    @property
    def mean_hit_length(self) -> float:
        return self.covered_instructions / self.hits if self.hits else 0.0

    @property
    def mean_recorded_length(self) -> float:
        if not self.traces_recorded:
            return 0.0
        return self.recorded_length_total / self.traces_recorded

    def class_coverage_pct(self, name: str) -> float:
        """% of trace-covered instructions in class ``name``."""
        if not self.covered_instructions:
            return 0.0
        index = CLASS_NAMES.index(name)
        return 100.0 * self.class_coverage[index] / self.covered_instructions

    def hit_length_pct(self, label: str) -> float:
        """% of hits whose trace length falls in bucket ``label``."""
        if not self.hits:
            return 0.0
        return 100.0 * self.hit_length_hist.get(label, 0) / self.hits


class TraceReuseAnalyzer(Analyzer):
    """Measures trace-level reuse over the observed step stream."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        ways: int = DEFAULT_TRACE_WAYS,
        max_trace_len: int = DEFAULT_MAX_TRACE_LEN,
        policy: Optional[SafetyPolicy] = None,
    ) -> None:
        self.table = TraceReuseTable(capacity, ways, max_trace_len)
        self.policy = policy if policy is not None else SafetyPolicy()
        self._shadow: list = [None] * NUM_REGISTERS
        self._shadow[0] = 0
        self._shadow_hi: Optional[int] = None
        self._shadow_lo: Optional[int] = None
        self._replaying = 0
        self._builder: Optional[TraceBuilder] = None
        self.dynamic_total = 0
        self.probes = 0
        self.hits = 0
        self.misses = 0
        self.covered_instructions = 0
        self.traces_recorded = 0
        self.rejections: Counter = Counter()
        self.hit_lengths: Counter = Counter()
        self.class_covered = [0] * NUM_CLASSES
        self.recorded_length_total = 0
        self.recorded_length_max = 0

    def on_step(self, record: StepRecord) -> None:
        self.dynamic_total += 1
        instr = record.instr

        # Store-based invalidation keeps resident memory live-ins fresh
        # (before the probe, mirroring the instruction buffer's order).
        if record.store_value is not None:
            self.table.invalidate_store(record.mem_addr, instr.op.mem_width)

        if self._replaying:
            # Inside a hit trace's body: already accounted at the probe.
            self._replaying -= 1
        else:
            builder = self._builder
            bk = boundary_kind(instr)
            if builder is not None:
                if bk == BOUNDARY_EXCLUDE:
                    # Region ends *before* this instruction.
                    self._finalize(builder, record.pc)
                    self._builder = None
                else:
                    builder.feed(record)
                    if bk == BOUNDARY_END or builder.length >= self.table.max_trace_len:
                        self._finalize(builder, step_next_pc(record))
                        self._builder = None
            elif bk != BOUNDARY_EXCLUDE:
                # Region start: probe, then start recording on a miss.
                self.probes += 1
                hit = self.table.lookup(
                    record.pc, self._shadow, self._shadow_hi, self._shadow_lo
                )
                if hit is not None:
                    self.hits += 1
                    self.covered_instructions += hit.length
                    self.hit_lengths[hit.length] += 1
                    covered = self.class_covered
                    for index, count in enumerate(hit.class_counts):
                        covered[index] += count
                    self._replaying = hit.length - 1
                else:
                    self.misses += 1
                    builder = self._builder = TraceBuilder(
                        record.pc, self.table.max_trace_len
                    )
                    builder.feed(record)
                    if bk == BOUNDARY_END or builder.length >= self.table.max_trace_len:
                        self._finalize(builder, step_next_pc(record))
                        self._builder = None
            # An excluded instruction at a region start is its own
            # (unprobeable) region; the next step starts fresh.

        self._update_shadow(record)

    def _finalize(self, builder: TraceBuilder, end_pc: int) -> None:
        reason = check_candidate(builder, self.policy)
        if reason is None:
            trace = builder.build(end_pc)
            self.table.install(trace)
            self.traces_recorded += 1
            self.recorded_length_total += trace.length
            if trace.length > self.recorded_length_max:
                self.recorded_length_max = trace.length
        else:
            self.rejections[reason] += 1

    def _update_shadow(self, record: StepRecord) -> None:
        shadow = self._shadow
        instr = record.instr
        kind = instr.op.kind
        inputs = record.inputs
        if kind is Kind.MFHILO:
            if instr.op.name == "mfhi":
                self._shadow_hi = inputs[0]
            else:
                self._shadow_lo = inputs[0]
        elif kind is Kind.SYSCALL:
            if len(inputs) >= 2:
                shadow[V0] = inputs[0]
                shadow[A0] = inputs[1]
        else:
            for reg, value in zip(instr.source_registers(), inputs):
                if reg:
                    shadow[reg] = value
        if kind is Kind.MULDIV:
            self._shadow_hi, self._shadow_lo = record.outputs
        dest = record.dest_reg
        if dest:
            shadow[dest] = record.dest_value

    def on_finish(self) -> None:
        registry = obs_metrics.REGISTRY
        if registry.enabled:
            registry.counter("trace.probes").inc(self.probes)
            registry.counter("trace.hits").inc(self.hits)
            registry.counter("trace.covered_instructions").inc(
                self.covered_instructions
            )
            registry.counter("trace.recorded").inc(self.traces_recorded)
            registry.counter("trace.rejected").inc(sum(self.rejections.values()))
            registry.counter("trace.invalidations").inc(self.table.invalidations)
            registry.counter("trace.evictions").inc(self.table.evictions)
            registry.gauge("trace.occupancy").set(self.table.occupancy)

    def report(self) -> TraceReuseReport:
        hist: Dict[str, int] = {label: 0 for label in LENGTH_BUCKET_LABELS}
        for length, count in self.hit_lengths.items():
            hist[length_bucket(length)] += count
        return TraceReuseReport(
            dynamic_total=self.dynamic_total,
            probes=self.probes,
            hits=self.hits,
            misses=self.misses,
            covered_instructions=self.covered_instructions,
            traces_recorded=self.traces_recorded,
            rejections=dict(self.rejections),
            invalidations=self.table.invalidations,
            evictions=self.table.evictions,
            occupancy=self.table.occupancy,
            hit_length_hist=hist,
            class_coverage=tuple(self.class_covered),
            recorded_length_total=self.recorded_length_total,
            recorded_length_max=self.recorded_length_max,
        )
