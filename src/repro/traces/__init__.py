"""Dynamic trace memoization (DTM).

Trace-level reuse on top of the paper's instruction-level reuse buffer:
straight-line fragments of the dynamic stream are recorded with their
live-in registers/memory and live-outs, kept in an associative table,
and — when live-ins validate — replayed wholesale instead of re-executed
(execution fast path) or counted as covered (analyzer mode, Table 10T).
See DESIGN.md §6d.
"""

from repro.traces.analyzer import (
    LENGTH_BUCKET_LABELS,
    TraceReuseAnalyzer,
    TraceReuseReport,
)
from repro.traces.builder import (
    REASON_CALL,
    REASON_IMPLICIT_INPUT,
    REASON_OVERLAP,
    REASON_RETURN,
    REASON_SYSCALL,
    REASON_TOO_LONG,
    REASON_TOO_SHORT,
    REASON_UNTRACKED_STORE,
    TraceBuilder,
    step_next_pc,
)
from repro.traces.engine import (
    DEFAULT_MAX_FUTILE_RECORDINGS,
    TraceExecutionEngine,
    TraceReuseConfig,
    TraceReuseState,
    anchor_candidates,
)
from repro.traces.safety import DEFAULT_MIN_TRACE_LEN, SafetyPolicy, check_candidate
from repro.traces.table import (
    DEFAULT_MAX_TRACE_LEN,
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_WAYS,
    TraceReuseTable,
)
from repro.traces.trace import (
    CLASS_NAMES,
    NUM_CLASSES,
    Trace,
    boundary_kind,
    class_of,
)

__all__ = [
    "CLASS_NAMES",
    "DEFAULT_MAX_FUTILE_RECORDINGS",
    "DEFAULT_MAX_TRACE_LEN",
    "DEFAULT_MIN_TRACE_LEN",
    "DEFAULT_TRACE_CAPACITY",
    "DEFAULT_TRACE_WAYS",
    "LENGTH_BUCKET_LABELS",
    "NUM_CLASSES",
    "REASON_CALL",
    "REASON_IMPLICIT_INPUT",
    "REASON_OVERLAP",
    "REASON_RETURN",
    "REASON_SYSCALL",
    "REASON_TOO_LONG",
    "REASON_TOO_SHORT",
    "REASON_UNTRACKED_STORE",
    "SafetyPolicy",
    "Trace",
    "TraceBuilder",
    "TraceExecutionEngine",
    "TraceReuseAnalyzer",
    "TraceReuseConfig",
    "TraceReuseReport",
    "TraceReuseState",
    "TraceReuseTable",
    "anchor_candidates",
    "boundary_kind",
    "check_candidate",
    "class_of",
    "step_next_pc",
]
