"""Execution fast path: replay memoized traces instead of re-executing.

This is the performance-mode counterpart of
:class:`~repro.traces.analyzer.TraceReuseAnalyzer`.  Where the analyzer
observes every region of the record stream, the execution engine plants
*wrappers* on a static set of **anchors** — instructions that can start a
region (branch targets, boundary successors, function entries) — inside
the simulator's predecoded fast-path code list.  At an anchor the wrapper
probes the trace table against live machine state (registers, hi/lo, and
the actual memory words — no invalidation shadowing is needed when the
real memory is one attribute away) and:

* on a **hit** hands the run loop a ``(end_pc, CTRL_TRACE_HIT, trace,
  inner)`` tuple; the loop applies the trace's live-outs and advances its
  instruction counters by the trace length without executing the body;
* on a **miss** hands back a constant ``(pc, CTRL_TRACE_REC, inner,
  index)`` tuple; the loop calls :meth:`TraceExecutionEngine.record_from`,
  which executes the region through the *record-building* closures,
  feeds a :class:`~repro.traces.builder.TraceBuilder`, and installs the
  candidate if the safety filter admits it.

Replay must be invisible in the architectural state *and* in the
simulator's instruction accounting, so both paths are budget-capped: a
hit is only taken when the whole trace fits before the next window
boundary (end of warm-up, or the analysis ``limit``), and a recording
truncated by a window boundary is discarded rather than installed.

Regions that never pay for themselves (e.g. a loop body carrying an
induction variable — every iteration has different live-ins, so every
probe misses and every recording is dead weight) are *banned*: after
``max_futile_recordings`` recordings at an anchor without an intervening
hit, the wrapper is removed and the original closure restored in place,
making the steady-state overhead at such anchors exactly zero.

The interpreter engine gets the same fast path through
:meth:`TraceExecutionEngine.interp_step`, called at the top of its loop
(gated off whenever step records are being consumed, since replay skips
record delivery by construction).
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import Format, Kind
from repro.sim import predecode
from repro.sim.predecode import CTRL_TRACE_HIT, CTRL_TRACE_REC
from repro.traces.builder import TraceBuilder
from repro.traces.safety import SafetyPolicy, check_candidate
from repro.traces.table import (
    DEFAULT_MAX_TRACE_LEN,
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_WAYS,
    TraceReuseTable,
)
from repro.traces.trace import (
    BOUNDARY_END,
    BOUNDARY_EXCLUDE,
    BOUNDARY_NONE,
    Trace,
    boundary_kind,
)

#: Recordings at one anchor without a hit before the anchor is banned.
DEFAULT_MAX_FUTILE_RECORDINGS = 4


@dataclass(frozen=True)
class TraceReuseConfig:
    """Knobs for the execution fast path (mirrors the analyzer's)."""

    capacity: int = DEFAULT_TRACE_CAPACITY
    ways: int = DEFAULT_TRACE_WAYS
    max_trace_len: int = DEFAULT_MAX_TRACE_LEN
    policy: SafetyPolicy = field(default_factory=SafetyPolicy)
    max_futile_recordings: int = DEFAULT_MAX_FUTILE_RECORDINGS


class TraceReuseState:
    """Mutable trace state shareable across simulator instances.

    Passing one state to several runs of the same program keeps the
    table (and the banned-anchor set) warm — the ablation benchmark uses
    this to measure steady-state replay rather than cold-table training.
    """

    def __init__(self, config: Optional[TraceReuseConfig] = None) -> None:
        self.config = config if config is not None else TraceReuseConfig()
        self.table = TraceReuseTable(
            self.config.capacity, self.config.ways, self.config.max_trace_len
        )
        #: Anchor pcs that stopped paying for themselves.
        self.banned: Set[int] = set()
        #: Recordings since the last hit, per anchor pc.
        self.futile: Dict[int, int] = {}


# Anchors are a property of the static program; cache like predecode's
# closure specs (id()-keyed, evicted when the program is collected).
_ANCHORS: "dict[int, FrozenSet[int]]" = {}


def anchor_candidates(program) -> FrozenSet[int]:
    """Text indices where a trace may begin.

    An instruction is an anchor when a region can start there — it is a
    branch/jump target, the successor of a trace boundary, a function
    entry, or the program entry — and it is not itself excluded from
    traces.  Computed-jump targets that are none of these are missed
    (statically unknowable), which only costs coverage, never safety.
    """
    key = id(program)
    anchors = _ANCHORS.get(key)
    if anchors is None:
        targets = set()
        for instr in program.text:
            kind = instr.op.kind
            if (
                kind is Kind.BRANCH
                or kind is Kind.JUMP
                or (kind is Kind.CALL and instr.op.fmt is Format.J)
            ):
                targets.add(instr.target)
        for function in program.functions:
            targets.add(function.entry)
        targets.add(program.entry)
        found = set()
        text_base = program.text_base
        after_boundary = True  # start of text
        for index, instr in enumerate(program.text):
            kind = boundary_kind(instr)
            if kind != BOUNDARY_EXCLUDE and (
                after_boundary or (text_base + (index << 2)) in targets
            ):
                found.add(index)
            after_boundary = kind != BOUNDARY_NONE
        anchors = _ANCHORS[key] = frozenset(found)
        weakref.finalize(program, _ANCHORS.pop, key, None)
    return anchors


class TraceExecutionEngine:
    """Per-simulator driver of the trace fast path."""

    def __init__(self, sim, state) -> None:
        if isinstance(state, TraceReuseConfig):
            state = TraceReuseState(state)
        self.sim = sim
        self.state = state
        self.anchors = anchor_candidates(sim.program)
        # Record-building closures, bound lazily on the first miss.
        self._record_code: Optional[list] = None
        # The live fast-path code list and the wrappers planted in it
        # (index -> original closure), so a ban can unwrap in place.
        self._code: Optional[list] = None
        self._wrapped: Dict[int, object] = {}
        self.hits = 0
        self.replayed_instructions = 0
        self.recordings = 0
        self.installs = 0
        self.rejections: Counter = Counter()
        self.truncated = 0
        self.bans = 0
        self._published: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Predecoded engine: anchor wrappers
    # ------------------------------------------------------------------

    def wrap_fast(self, code: list) -> None:
        """Plant probe wrappers at every (unbanned) anchor of ``code``."""
        sim = self.sim
        state = self.state
        by_pc_get = state.table._by_pc.get
        banned = state.banned
        text_base = sim.program.text_base
        regs = sim.regs
        memory = sim.memory
        self._code = code
        self._wrapped.clear()
        for index in self.anchors:
            pc = text_base + (index << 2)
            if pc in banned:
                continue
            inner = code[index]
            rec = (pc, CTRL_TRACE_REC, inner, index)

            def wrapped(_pc=pc, _inner=inner, _rec=rec):
                entries = by_pc_get(_pc)
                if entries:
                    hi = sim.hi
                    lo = sim.lo
                    for trace in entries:
                        if trace.matches(regs, hi, lo, memory):
                            return (trace.end_pc, CTRL_TRACE_HIT, trace, _inner)
                return _rec

            self._wrapped[index] = inner
            code[index] = wrapped

    def _ban(self, pc: int, index: int) -> None:
        self.state.banned.add(pc)
        self.state.futile.pop(pc, None)
        self.bans += 1
        inner = self._wrapped.pop(index, None)
        if inner is not None and self._code is not None:
            self._code[index] = inner

    def note_hit(self, trace: Trace) -> None:
        """Account a taken replay (called by the run loops)."""
        self.hits += 1
        self.replayed_instructions += trace.length
        state = self.state
        if state.futile:
            state.futile.pop(trace.start_pc, None)
        state.table.promote(trace)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record_from(self, index: int, pc: int, remaining: int) -> Tuple[int, int]:
        """Execute the region at ``pc`` while recording a candidate.

        Executes through the record-building closures (architecturally
        identical to the fast closures), feeding each step to a builder.
        Returns ``(instructions_executed, next_pc)``; the caller advances
        its counters by exactly that many steps.  ``remaining`` caps how
        many instructions may execute before the current window boundary;
        a recording cut short by it is discarded (the candidate is not a
        full region) without counting against the anchor's futile budget.
        """
        sim = self.sim
        code = self._record_code
        if code is None:
            counts = sim._kind_counts
            if counts is not None:
                code = self._record_code = predecode.bind_full_counted(sim, counts)
            else:
                code = self._record_code = predecode.bind_full(sim)
        program = sim.program
        text = program.text
        text_base = program.text_base
        text_len = len(text)
        max_len = self.state.table.max_trace_len
        budget = max_len if max_len <= remaining else remaining
        anchor_pc = pc

        builder = TraceBuilder(pc, max_len)
        executed = 0
        natural_end = False
        off_text = False
        while True:
            kind = boundary_kind(text[index])
            if kind == BOUNDARY_EXCLUDE:
                natural_end = True
                break
            if executed >= budget:
                natural_end = executed >= max_len
                break
            record, pc, _ctrl = code[index](0)  # ctrl is None: no EXCLUDE here
            builder.feed(record)
            executed += 1
            if kind == BOUNDARY_END:
                natural_end = True
                break
            index = (pc - text_base) >> 2
            if index < 0 or index >= text_len or pc & 3:
                # Fell off the text segment; the run loop raises on the
                # next dispatch.  Not a memoizable region.
                off_text = True
                break

        if natural_end:
            self.recordings += 1
            reason = check_candidate(builder, self.state.config.policy)
            if reason is None:
                self.state.table.install(builder.build(pc))
                self.installs += 1
            else:
                self.rejections[reason] += 1
            futile = self.state.futile
            count = futile.get(anchor_pc, 0) + 1
            if count >= self.state.config.max_futile_recordings:
                self._ban(anchor_pc, (anchor_pc - text_base) >> 2)
            else:
                futile[anchor_pc] = count
        elif not off_text:
            self.truncated += 1
        return executed, pc

    # ------------------------------------------------------------------
    # Interpreter engine hook
    # ------------------------------------------------------------------

    def interp_step(self, pc: int, index: int, remaining: int):
        """Fast-path attempt for the interpreter loop.

        Returns ``(instructions_consumed, next_pc)`` when the engine
        replayed or recorded at ``pc``, or ``None`` when the interpreter
        should execute the instruction normally.
        """
        if index not in self.anchors:
            return None
        state = self.state
        if pc in state.banned:
            return None
        sim = self.sim
        entries = state.table._by_pc.get(pc)
        if entries:
            regs = sim.regs
            hi = sim.hi
            lo = sim.lo
            memory = sim.memory
            for trace in entries:
                if trace.matches(regs, hi, lo, memory):
                    if trace.length <= remaining:
                        trace.apply(sim)
                        self.note_hit(trace)
                        return trace.length, trace.end_pc
                    return None
        return self.record_from(index, pc, remaining)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    _METRIC_NAMES = (
        "trace.exec.hits",
        "trace.exec.replayed_instructions",
        "trace.exec.recordings",
        "trace.exec.installs",
        "trace.exec.rejected",
        "trace.exec.truncated",
        "trace.exec.bans",
    )

    def publish(self, registry) -> None:
        """End-of-run counter snapshot (resume-safe deltas)."""
        published = self._published
        if published is None:
            published = self._published = [0] * len(self._METRIC_NAMES)
        values = (
            self.hits,
            self.replayed_instructions,
            self.recordings,
            self.installs,
            sum(self.rejections.values()),
            self.truncated,
            self.bans,
        )
        for index, name in enumerate(self._METRIC_NAMES):
            delta = values[index] - published[index]
            if delta:
                registry.counter(name).inc(delta)
                published[index] = values[index]
