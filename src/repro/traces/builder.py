"""Trace builder: fold a straight-line run of step records into a trace.

The builder is fed one executed instruction at a time (as the
:class:`~repro.sim.events.StepRecord`-shaped facts the engines already
produce) and maintains the dataflow summary a :class:`~repro.traces.trace
.Trace` needs:

* a register read whose value was not produced earlier in the trace is a
  register live-in; the last write to each register is its live-out;
* a load from bytes untouched by in-trace stores is a memory live-in
  (recorded raw, pre-extension); a load fully covered by in-trace stores
  is internal; a *partially* covered load poisons the candidate
  (``REASON_OVERLAP`` — the mixed value cannot be validated cheaply);
* stores are kept in order for replay, and a store outside the tracked
  data/heap/stack segments poisons the candidate (self-modifying-code
  adjacent, or a wild pointer — either way unsafe to memoize);
* hi/lo reads and writes are tracked like a two-register file.

Feeding an excluded instruction (syscall/call/return) does not execute
anything here — the builder is passive — but marks the candidate unsafe
so :func:`~repro.traces.safety.check_candidate` rejects it.  Normal
drivers finalize *before* excluded instructions; the marker exists so a
candidate assembled any other way still cannot slip through.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.isa.convention import segment_of
from repro.isa.instructions import Kind
from repro.isa.registers import A0, V0
from repro.traces.trace import NUM_CLASSES, Trace, class_of

#: Rejection reasons (shared with :mod:`repro.traces.safety`).
REASON_SYSCALL = "syscall"
REASON_CALL = "call"
REASON_RETURN = "return"
REASON_UNTRACKED_STORE = "untracked-store"
REASON_OVERLAP = "partial-overlap"
REASON_TOO_SHORT = "too-short"
REASON_TOO_LONG = "too-long"
REASON_IMPLICIT_INPUT = "implicit-input"

#: Segments a memoized store may legally target.
TRACKED_SEGMENTS = ("data", "heap", "stack")

_WIDTH_MASK = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF}


def step_next_pc(record) -> int:
    """Reconstruct the successor pc of an observed step record."""
    instr = record.instr
    kind = instr.op.kind
    if kind is Kind.BRANCH:
        return instr.target if record.outputs[0] else record.pc + 4
    if kind is Kind.JUMP:
        return instr.target
    if kind is Kind.JUMP_REG:
        return record.inputs[0]
    return record.pc + 4


class TraceBuilder:
    """Accumulates one trace candidate from consecutive step records."""

    def __init__(self, start_pc: int, max_len: int) -> None:
        self.start_pc = start_pc
        self.max_len = max_len
        self.length = 0
        #: First structural-safety violation seen, or ``None``.
        self.unsafe: Optional[str] = None
        self._reg_in: Dict[int, int] = {}
        self._reg_out: Dict[int, int] = {}
        self._written_regs: Set[int] = set()
        self._mem_in: List[Tuple[int, int, int]] = []
        self._mem_in_seen: Set[Tuple[int, int]] = set()
        self._written_bytes: Set[int] = set()
        self._stores: List[Tuple[int, int, int]] = []
        self._hi_lo_in: List[Tuple[bool, int]] = []
        self._hi_in_seen = False
        self._lo_in_seen = False
        self._hilo_written = False
        self._hi_out = 0
        self._lo_out = 0
        self._class_counts = [0] * NUM_CLASSES

    @property
    def mem_live_ins(self) -> Tuple[Tuple[int, int, int], ...]:
        return tuple(self._mem_in)

    def _note_reg_reads(self, pairs) -> None:
        reg_in = self._reg_in
        written = self._written_regs
        for reg, value in pairs:
            if reg and reg not in written and reg not in reg_in:
                reg_in[reg] = value

    def feed(self, record) -> None:
        """Fold one executed step into the candidate."""
        instr = record.instr
        op = instr.op
        kind = op.kind
        inputs = record.inputs

        if kind is Kind.SYSCALL:
            if self.unsafe is None:
                self.unsafe = REASON_SYSCALL
            if len(inputs) >= 2:
                self._note_reg_reads(((V0, inputs[0]), (A0, inputs[1])))
        elif kind is Kind.CALL:
            if self.unsafe is None:
                self.unsafe = REASON_CALL
            self._note_reg_reads(zip(instr.source_registers(), inputs))
        elif instr.is_return:
            if self.unsafe is None:
                self.unsafe = REASON_RETURN
            self._note_reg_reads(zip(instr.source_registers(), inputs))
        elif kind is Kind.MFHILO:
            if not self._hilo_written:
                from_hi = op.name == "mfhi"
                if from_hi and not self._hi_in_seen:
                    self._hi_in_seen = True
                    self._hi_lo_in.append((True, inputs[0]))
                elif not from_hi and not self._lo_in_seen:
                    self._lo_in_seen = True
                    self._hi_lo_in.append((False, inputs[0]))
        else:
            self._note_reg_reads(zip(instr.source_registers(), inputs))

        if kind is Kind.LOAD:
            address = record.mem_addr
            width = op.mem_width
            covered = sum(
                1 for b in range(address, address + width) if b in self._written_bytes
            )
            if covered == 0:
                key = (address, width)
                if key not in self._mem_in_seen:
                    self._mem_in_seen.add(key)
                    raw = record.outputs[0] & _WIDTH_MASK[width]
                    self._mem_in.append((address, width, raw))
            elif covered != width and self.unsafe is None:
                self.unsafe = REASON_OVERLAP
        elif kind is Kind.STORE:
            address = record.mem_addr
            width = op.mem_width
            if self.unsafe is None and segment_of(address) not in TRACKED_SEGMENTS:
                self.unsafe = REASON_UNTRACKED_STORE
            self._stores.append((address, width, record.store_value & _WIDTH_MASK[width]))
            self._written_bytes.update(range(address, address + width))
        elif kind is Kind.MULDIV:
            self._hilo_written = True
            self._hi_out, self._lo_out = record.outputs

        dest = record.dest_reg
        if dest:
            self._written_regs.add(dest)
            self._reg_out[dest] = record.dest_value

        self._class_counts[class_of(instr)] += 1
        self.length += 1

    def build(self, end_pc: int) -> Trace:
        """Materialize the finished candidate as an immutable trace."""
        return Trace(
            start_pc=self.start_pc,
            end_pc=end_pc,
            length=self.length,
            reg_in=tuple(sorted(self._reg_in.items())),
            mem_in=tuple(self._mem_in),
            hi_lo_in=tuple(self._hi_lo_in),
            reg_out=tuple(sorted(self._reg_out.items())),
            hi_lo_out=(self._hi_out, self._lo_out) if self._hilo_written else None,
            stores=tuple(self._stores),
            class_counts=tuple(self._class_counts),
        )
