"""Associative trace reuse table.

Mirrors the geometry API of :class:`repro.core.reuse_buffer.ReuseBuffer`
— ``capacity`` entries split into ``capacity // ways`` sets indexed by
``(start_pc >> 2) % num_sets``, MRU-first lists with LRU eviction — plus
two side indexes the trace level needs:

* ``start_pc -> entries`` for O(1) probes without touching the set (the
  execution fast path runs this on every anchor dispatch), and
* ``memory word -> entries`` so a store can invalidate every resident
  trace whose memory live-ins it touches (the analyzer's freshness
  mechanism, analogous to the buffer's scheme ``Sv``).

``max_trace_len`` is table geometry, not policy: it bounds the replay
payload per entry and every builder driving this table splits at it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.traces.trace import Trace

#: Default geometry: far smaller than the 8K-entry instruction buffer —
#: traces are scarcer (one per dynamic region, not per instruction).
DEFAULT_TRACE_CAPACITY = 1024
DEFAULT_TRACE_WAYS = 4
DEFAULT_MAX_TRACE_LEN = 16


class TraceReuseTable:
    """A start-pc-indexed, LRU, set-associative table of traces."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        ways: int = DEFAULT_TRACE_WAYS,
        max_trace_len: int = DEFAULT_MAX_TRACE_LEN,
    ) -> None:
        if capacity % ways:
            raise ValueError("capacity must be a multiple of ways")
        if max_trace_len < 1:
            raise ValueError("max_trace_len must be at least 1")
        self.capacity = capacity
        self.ways = ways
        self.max_trace_len = max_trace_len
        self.num_sets = capacity // ways
        self._sets: List[List[Trace]] = [[] for _ in range(self.num_sets)]
        self._by_pc: Dict[int, List[Trace]] = {}
        self._by_word: Dict[int, Set[Trace]] = {}
        self.installs = 0
        self.evictions = 0
        self.invalidations = 0

    def _set_for(self, pc: int) -> List[Trace]:
        return self._sets[(pc >> 2) % self.num_sets]

    def entries_at(self, pc: int) -> Optional[List[Trace]]:
        """Resident traces starting at ``pc`` (MRU-first), or ``None``."""
        return self._by_pc.get(pc)

    def lookup(self, pc: int, regs, hi, lo, memory=None) -> Optional[Trace]:
        """First resident trace at ``pc`` whose live-ins validate."""
        entries = self._by_pc.get(pc)
        if not entries:
            return None
        for trace in entries:
            if trace.matches(regs, hi, lo, memory):
                self.promote(trace)
                return trace
        return None

    def promote(self, trace: Trace) -> None:
        """Refresh ``trace``'s MRU position after a hit."""
        bucket = self._set_for(trace.start_pc)
        index = bucket.index(trace)
        if index:
            bucket.insert(0, bucket.pop(index))
        entries = self._by_pc[trace.start_pc]
        index = entries.index(trace)
        if index:
            entries.insert(0, entries.pop(index))

    def _unlink(self, trace: Trace) -> None:
        """Drop ``trace`` from the side indexes (not from its set)."""
        entries = self._by_pc.get(trace.start_pc)
        if entries is not None:
            try:
                entries.remove(trace)
            except ValueError:
                pass
            if not entries:
                del self._by_pc[trace.start_pc]
        for address, width, _raw in trace.mem_in:
            for word in range(address & ~3, address + width, 4):
                linked = self._by_word.get(word)
                if linked is not None:
                    linked.discard(trace)
                    if not linked:
                        del self._by_word[word]

    def install(self, trace: Trace) -> None:
        """Insert ``trace``, evicting the set's LRU entry if full.

        An entry with the same live-in signature is replaced in place
        (determinism makes its live-outs identical, so the newer copy
        adds nothing and would waste a way).
        """
        bucket = self._set_for(trace.start_pc)
        signature = trace.live_in_signature
        for resident in bucket:
            if (
                resident.start_pc == trace.start_pc
                and resident.live_in_signature == signature
            ):
                bucket.remove(resident)
                self._unlink(resident)
                break
        else:
            if len(bucket) >= self.ways:
                victim = bucket.pop()
                self._unlink(victim)
                self.evictions += 1
        bucket.insert(0, trace)
        self._by_pc.setdefault(trace.start_pc, []).insert(0, trace)
        for address, width, _raw in trace.mem_in:
            for word in range(address & ~3, address + width, 4):
                self._by_word.setdefault(word, set()).add(trace)
        self.installs += 1

    def invalidate_store(self, address: int, width: int) -> int:
        """Evict every trace with a memory live-in in the stored bytes.

        Returns the number of traces invalidated.  Word granularity,
        like the instruction buffer: any store touching a live-in's word
        conservatively kills the trace.
        """
        count = 0
        for word in range(address & ~3, address + width, 4):
            linked = self._by_word.get(word)
            if not linked:
                continue
            for trace in tuple(linked):
                bucket = self._set_for(trace.start_pc)
                try:
                    bucket.remove(trace)
                except ValueError:
                    pass
                self._unlink(trace)
                count += 1
        self.invalidations += count
        return count

    @property
    def occupancy(self) -> int:
        """Traces currently resident across all sets."""
        return sum(len(bucket) for bucket in self._sets)
