"""Trace data model: boundaries, instruction classes, and the entry itself.

A *trace* is a straight-line fragment of the dynamic instruction stream
together with everything needed to decide whether re-executing it would
be redundant (its live-in registers, memory words, and hi/lo values) and
everything needed to skip it when it would be (its register live-outs,
ordered stores, and hi/lo result).  This is the trace-level analogue of
the paper's per-instruction reuse buffer entry, following Coppieters et
al.'s trace-reuse formulation (see PAPERS.md).

Boundary rules
--------------

Traces are cut from the stream at control and side-effect boundaries:

* branches, ``j``, and computed ``jr`` (non-return) *end* a trace and are
  part of it — their outcome is a pure function of the trace's live-ins,
  so the recorded ``end_pc`` is exact on a live-in match;
* calls (``jal``/``jalr``), returns (``jr $ra``), and syscalls are
  *excluded*: they raise events the simulator must deliver (and syscalls
  touch external state), so a trace always ends before them.

The numeric constants here are compared with ``is``/``==`` in hot loops;
keep them small ints.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instructions import Instruction, Kind
from repro.isa.registers import RA

#: Instruction-class taxonomy for the Coppieters-style decomposition of
#: trace-covered instructions (Table 10T's class panel).
CLASS_ALU = 0
CLASS_LOAD = 1
CLASS_STORE = 2
CLASS_BRANCH = 3
CLASS_JUMP = 4
CLASS_OTHER = 5
NUM_CLASSES = 6
CLASS_NAMES: Tuple[str, ...] = ("alu", "load", "store", "branch", "jump", "other")

_KIND_TO_CLASS = {
    Kind.ALU: CLASS_ALU,
    Kind.MULDIV: CLASS_ALU,
    Kind.MFHILO: CLASS_ALU,
    Kind.LOAD: CLASS_LOAD,
    Kind.STORE: CLASS_STORE,
    Kind.BRANCH: CLASS_BRANCH,
    Kind.JUMP: CLASS_JUMP,
    Kind.JUMP_REG: CLASS_JUMP,
}


def class_of(instr: Instruction) -> int:
    """Taxonomy slot for one instruction (``CLASS_*``)."""
    return _KIND_TO_CLASS.get(instr.op.kind, CLASS_OTHER)


#: The instruction may appear mid-trace.
BOUNDARY_NONE = 0
#: The instruction ends the trace and belongs to it (branch/jump).
BOUNDARY_END = 1
#: The instruction may not appear in a trace at all (call/return/syscall).
BOUNDARY_EXCLUDE = 2


def boundary_kind(instr: Instruction) -> int:
    """How ``instr`` interacts with trace formation (``BOUNDARY_*``)."""
    kind = instr.op.kind
    if kind is Kind.BRANCH or kind is Kind.JUMP:
        return BOUNDARY_END
    if kind is Kind.JUMP_REG:
        return BOUNDARY_EXCLUDE if instr.rs == RA else BOUNDARY_END
    if kind is Kind.CALL or kind is Kind.SYSCALL:
        return BOUNDARY_EXCLUDE
    return BOUNDARY_NONE


class Trace:
    """One memoized trace: live-ins to validate, live-outs to replay.

    ``reg_in``/``reg_out`` are ``(reg, value)`` tuples; ``mem_in`` holds
    ``(address, width, raw_value)`` with the *unextended* memory bytes
    (so validation can compare against a raw read regardless of the
    load's sign extension); ``stores`` is the ordered ``(address, width,
    value)`` sequence the trace performs; ``hi_lo_in`` holds ``(from_hi,
    value)`` reads of hi/lo not produced in-trace and ``hi_lo_out`` the
    final ``(hi, lo)`` pair when the trace writes them.  ``class_counts``
    is indexed by ``CLASS_*``.
    """

    __slots__ = (
        "start_pc",
        "end_pc",
        "length",
        "reg_in",
        "mem_in",
        "hi_lo_in",
        "reg_out",
        "hi_lo_out",
        "stores",
        "class_counts",
    )

    def __init__(
        self,
        start_pc: int,
        end_pc: int,
        length: int,
        reg_in: Tuple[Tuple[int, int], ...],
        mem_in: Tuple[Tuple[int, int, int], ...],
        hi_lo_in: Tuple[Tuple[bool, int], ...],
        reg_out: Tuple[Tuple[int, int], ...],
        hi_lo_out: Optional[Tuple[int, int]],
        stores: Tuple[Tuple[int, int, int], ...],
        class_counts: Tuple[int, ...],
    ) -> None:
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.length = length
        self.reg_in = reg_in
        self.mem_in = mem_in
        self.hi_lo_in = hi_lo_in
        self.reg_out = reg_out
        self.hi_lo_out = hi_lo_out
        self.stores = stores
        self.class_counts = class_counts

    @property
    def live_in_signature(self) -> tuple:
        """Identity of this trace's validation condition (for dedup)."""
        return (self.start_pc, self.reg_in, self.mem_in, self.hi_lo_in)

    def matches(self, regs, hi, lo, memory=None) -> bool:
        """Would re-executing from ``start_pc`` reproduce this trace?

        ``regs``/``hi``/``lo`` may be a shadow state holding ``None`` for
        unknown values — an unknown live-in conservatively fails.  When
        ``memory`` is given, memory live-ins are re-validated against it;
        when it is ``None`` the caller guarantees freshness some other
        way (the analyzer's store-based invalidation).
        """
        for reg, value in self.reg_in:
            if regs[reg] != value:
                return False
        for from_hi, value in self.hi_lo_in:
            if (hi if from_hi else lo) != value:
                return False
        if memory is not None:
            for address, width, raw in self.mem_in:
                if width == 4:
                    if memory.read_word(address) != raw:
                        return False
                elif width == 2:
                    if memory.read_half(address) != raw:
                        return False
                elif memory.read_byte(address) != raw:
                    return False
        return True

    def apply(self, sim) -> None:
        """Replay the trace's architectural effects onto ``sim``.

        Register live-outs, the ordered store sequence, and the hi/lo
        result together are the trace's complete effect on machine state
        (the safety filter guarantees there is nothing else).
        """
        regs = sim.regs
        for reg, value in self.reg_out:
            regs[reg] = value
        memory = sim.memory
        for address, width, value in self.stores:
            if width == 4:
                memory.write_word(address, value)
            elif width == 2:
                memory.write_half(address, value)
            else:
                memory.write_byte(address, value)
        hi_lo = self.hi_lo_out
        if hi_lo is not None:
            sim.hi, sim.lo = hi_lo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace(start={self.start_pc:#x}, end={self.end_pc:#x}, "
            f"len={self.length}, reg_in={len(self.reg_in)}, "
            f"mem_in={len(self.mem_in)}, stores={len(self.stores)})"
        )
