"""Command-line tools: the MiniC compiler driver (``repro-cc``)."""
