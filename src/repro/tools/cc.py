"""``repro-cc`` — MiniC compiler driver and program runner.

Examples::

    repro-cc prog.mc --run                      # compile and execute
    repro-cc prog.mc -O --run --input data.txt  # optimized, with stdin file
    repro-cc prog.mc -S                         # print assembly
    repro-cc prog.mc --disassemble              # final program listing
    repro-cc prog.mc --hex                      # machine-code dump
    repro-cc prog.mc --run --profile            # + repetition/mix profile
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asm import assemble
from repro.core import InstructionMixAnalyzer, RepetitionTracker
from repro.core.mix import MIX_CLASSES
from repro.isa.encoding import encode
from repro.lang import MiniCError, compile_to_assembly
from repro.sim import Simulator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cc", description="MiniC compiler and runner"
    )
    parser.add_argument("source", help="MiniC source file (- for stdin)")
    parser.add_argument("-O", "--optimize", action="store_true", help="enable the optimizer")
    parser.add_argument(
        "--inline", action="store_true", help="inline single-return-expression functions"
    )
    parser.add_argument("-S", "--assembly", action="store_true", help="print generated assembly")
    parser.add_argument(
        "--disassemble", action="store_true", help="print the assembled program listing"
    )
    parser.add_argument("--hex", action="store_true", help="print encoded machine words")
    parser.add_argument("--run", action="store_true", help="execute the program")
    parser.add_argument("--input", default=None, help="file providing program input")
    parser.add_argument(
        "--limit", type=int, default=None, help="max instructions to execute"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="with --run: print repetition and instruction-mix statistics",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.source == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"repro-cc: {error}", file=sys.stderr)
            return 1

    try:
        assembly = compile_to_assembly(source, optimize=args.optimize, inline=args.inline)
        program = assemble(assembly, args.source)
    except MiniCError as error:
        print(f"repro-cc: {args.source}:{error}", file=sys.stderr)
        return 1

    if args.assembly:
        print(assembly, end="")
    if args.disassemble:
        print(program.disassemble())
    if args.hex:
        for instr in program.text:
            print(f"{instr.addr:08x}: {encode(instr):08x}  {instr.disassemble()}")

    if not args.run:
        if not (args.assembly or args.disassemble or args.hex):
            print(
                f"compiled {args.source}: {program.static_instruction_count} "
                f"instructions, {len(program.data)} data bytes "
                f"({len(program.functions)} functions)"
            )
        return 0

    input_data = b""
    if args.input:
        try:
            with open(args.input, "rb") as handle:
                input_data = handle.read()
        except OSError as error:
            print(f"repro-cc: {error}", file=sys.stderr)
            return 1

    analyzers = []
    tracker = mix = None
    if args.profile:
        tracker = RepetitionTracker()
        mix = InstructionMixAnalyzer(tracker)
        analyzers = [tracker, mix]
    simulator = Simulator(program, input_data=input_data, analyzers=analyzers)
    result = simulator.run(limit=args.limit)
    sys.stdout.write(result.output)
    print(
        f"\n# {result.analyzed_instructions:,} instructions, "
        f"stop={result.stop_reason}, exit={result.exit_code}",
        file=sys.stderr,
    )
    if args.profile and tracker is not None and mix is not None:
        report = tracker.report()
        print(
            f"# repetition: {report.dynamic_repeated_pct:.1f}% dynamic, "
            f"{report.unique_repeatable_instances:,} unique instances "
            f"(avg repeats {report.average_repeats:.1f})",
            file=sys.stderr,
        )
        mix_report = mix.report()
        shares = "  ".join(
            f"{name}={mix_report.share_pct(name):.1f}%"
            for name in MIX_CLASSES
            if mix_report.classes[name].total
        )
        print(f"# mix: {shares}", file=sys.stderr)
        print(
            f"# branches taken: {mix_report.branch_taken_pct:.1f}%, "
            f"max call depth: {mix_report.max_call_depth}",
            file=sys.stderr,
        )
    return 0 if result.exit_code == 0 else result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
