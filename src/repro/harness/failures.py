"""Failure taxonomy and recovery policy for suite execution.

Everything that can go wrong while running a workload — assembly /
compile errors, simulator traps, crashed pool workers, watchdog
timeouts, cache corruption — is classified into a picklable
:class:`FailureRecord` so the suite runner can *keep going*: a
non-strict run returns a :class:`SuiteReport` carrying every finished
:class:`~repro.harness.runner.WorkloadResult` plus one terminal record
per failed workload, instead of discarding completed work on the first
exception.

The recovery policy is deliberately small and table-driven
(:func:`plan_next_action`):

* compile/assembly errors are permanent — fail immediately, no retry;
* simulator traps under the predecoded engine degrade once to the
  reference interpreter (``degrade.engine_fallback``);
* worker crashes, pool timeouts, and unknown errors are transient —
  bounded retry with exponential backoff and seeded jitter
  (``retry.attempts``);
* serial watchdog timeouts are deterministic (same workload, same
  steps) and therefore permanent.

``strict=True`` — the default everywhere — preserves the historical
raise-on-first-error behaviour exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import threading
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.asm.errors import AsmError
from repro.harness.faults import FaultInjected
from repro.lang.errors import MiniCError
from repro.obs import tracing as obs_tracing
from repro.sim.errors import SimError

# -- taxonomy ----------------------------------------------------------

KIND_COMPILE = "compile-error"
KIND_SIM_TRAP = "sim-trap"
KIND_WORKER_CRASH = "worker-crash"
KIND_TIMEOUT = "timeout"
KIND_CACHE = "cache-error"
KIND_UNKNOWN = "unknown"

FAILURE_KINDS = (
    KIND_COMPILE,
    KIND_SIM_TRAP,
    KIND_WORKER_CRASH,
    KIND_TIMEOUT,
    KIND_CACHE,
    KIND_UNKNOWN,
)


class WorkloadTimeout(Exception):
    """A workload exceeded its wall-clock budget.

    Raised by the serial watchdog (which pauses the simulator at an
    instruction boundary) and synthesized by the parallel runner when a
    pool task misses its parent-side deadline.
    """

    def __init__(
        self, workload: str, seconds: float = 0.0, engine: Optional[str] = None
    ) -> None:
        self.workload = workload
        self.seconds = seconds
        self.engine = engine
        super().__init__(
            f"workload {workload!r} exceeded its {seconds:g}s wall-clock budget"
        )

    def __reduce__(self):
        return (WorkloadTimeout, (self.workload, self.seconds, self.engine))


@dataclass
class FailureRecord:
    """One classified failure (picklable, JSON-able via :meth:`to_dict`)."""

    kind: str
    workload: str
    engine: str
    attempt: int
    message: str
    exception_type: str
    #: Short SHA-256 over the formatted traceback — lets repeated
    #: failures be grouped without shipping whole tracebacks around.
    traceback_digest: str = ""
    injected: bool = False
    when: float = field(default_factory=time.time)

    @property
    def attempts(self) -> int:
        """Total attempts made when this (terminal) record was written."""
        return self.attempt

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def classify_failure(
    exc: BaseException, *, workload: str, engine: str, attempt: int = 1
) -> FailureRecord:
    """Map an exception onto the failure taxonomy."""
    if isinstance(exc, WorkloadTimeout):
        kind = KIND_TIMEOUT
    elif isinstance(exc, BrokenProcessPool):
        kind = KIND_WORKER_CRASH
    elif isinstance(exc, SimError):
        kind = KIND_SIM_TRAP
    elif isinstance(exc, (AsmError, MiniCError)):
        kind = KIND_COMPILE
    elif isinstance(exc, (OSError, pickle.PickleError, EOFError, FaultInjected)):
        kind = KIND_CACHE if _looks_like_cache(exc) else KIND_UNKNOWN
    else:
        kind = KIND_UNKNOWN
    formatted = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return FailureRecord(
        kind=kind,
        workload=workload,
        engine=engine,
        attempt=attempt,
        message=str(exc) or type(exc).__name__,
        exception_type=type(exc).__name__,
        traceback_digest=hashlib.sha256(formatted.encode()).hexdigest()[:12],
        injected=bool(getattr(exc, "injected", False)),
    )


def _looks_like_cache(exc: BaseException) -> bool:
    site = getattr(exc, "site", "")
    return isinstance(site, str) and site.startswith("cache.")


def note_failure(record: FailureRecord) -> None:
    """Emit a zero-length ``failure`` span so traces show what broke where."""
    tracer = obs_tracing.current_tracer()
    if tracer is not None:
        tracer.begin(
            "failure",
            workload=record.workload,
            kind=record.kind,
            engine=record.engine,
            attempt=record.attempt,
            injected=record.injected,
        )
        tracer.end("failure")


# -- recovery policy ---------------------------------------------------


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the suite responds to failing workloads."""

    #: ``True`` (default) raises on the first error — historical behaviour.
    strict: bool = True
    #: Bounded retries for transient failures (attempts = retries + 1).
    retries: int = 2
    #: Per-workload wall-clock budget (None = no watchdog).
    timeout_s: Optional[float] = None
    #: Exponential backoff base / cap between retry attempts.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: Seed for the deterministic backoff jitter.
    seed: int = 0

    def backoff_seconds(self, workload: str, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        digest = hashlib.sha256(
            f"{self.seed}:{workload}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:4], "big") / float(1 << 32)
        return base * (1.0 + jitter)


def resolve_policy(
    policy: Optional[RecoveryPolicy] = None,
    strict: Optional[bool] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> RecoveryPolicy:
    """Merge convenience keyword overrides into a policy."""
    base = policy if policy is not None else RecoveryPolicy()
    overrides = {}
    if strict is not None:
        overrides["strict"] = strict
    if retries is not None:
        overrides["retries"] = retries
    if timeout_s is not None:
        overrides["timeout_s"] = timeout_s
    return dataclasses.replace(base, **overrides) if overrides else base


def plan_next_action(
    record: FailureRecord,
    *,
    engine: str,
    degraded: bool,
    attempt: int,
    retries: int,
    transient_timeouts: bool = True,
) -> str:
    """``"degrade"`` / ``"retry"`` / ``"fail"`` for a classified failure.

    ``transient_timeouts=False`` (serial runs) treats timeouts as
    permanent: the simulator is deterministic, so a sliced re-run would
    burn the same wall clock and time out again.  Pool timeouts stay
    retryable — a hung worker is an infrastructure flake, not a
    property of the workload.
    """
    if record.kind == KIND_COMPILE:
        return "fail"
    if record.kind == KIND_SIM_TRAP:
        if engine == "predecoded" and not degraded:
            return "degrade"
        return "fail"
    if record.kind == KIND_TIMEOUT and not transient_timeouts:
        return "fail"
    if attempt >= retries + 1:
        return "fail"
    return "retry"


# -- partial results ---------------------------------------------------


class SuiteReport(Dict[str, "WorkloadResult"]):  # noqa: F821 (typing only)
    """Suite results plus the failure ledger.

    A ``dict`` subclass so every existing consumer (experiment renders,
    markdown reports, tests) keeps working unchanged: the mapping holds
    the *surviving* ``WorkloadResult`` objects in suite order, while
    ``failures`` carries the terminal :class:`FailureRecord` per failed
    workload and ``history`` every failed attempt (including recovered
    ones).
    """

    def __init__(self, config=None) -> None:
        super().__init__()
        self.config = config
        self.failures: Dict[str, FailureRecord] = {}
        self.history: List[FailureRecord] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def partial(self) -> bool:
        return bool(self.failures)

    def degraded_workloads(self) -> List[str]:
        """Workloads whose result came from an engine fallback."""
        return [
            name
            for name, result in self.items()
            if getattr(result.manifest, "degraded", False)
        ]

    def summary(self) -> str:
        parts = [f"{len(self)} ok"]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        degraded = self.degraded_workloads()
        if degraded:
            parts.append(f"{len(degraded)} degraded")
        if len(self.history) > len(self.failures):
            parts.append(f"{len(self.history)} failed attempts")
        return ", ".join(parts)


def _canonical(obj):
    """A deterministic, order-independent form of a report object.

    Sets (and dict buckets) iterate in layout order, which a pickle
    round-trip across the process pool can permute — two semantically
    equal results must still digest identically, so unordered
    containers are sorted and dataclasses flattened to field tuples.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        return ("dict", tuple(sorted(items, key=repr)))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted((_canonical(v) for v in obj), key=repr)))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(v) for v in obj))
    return obj


def result_digest(result) -> str:
    """SHA-256 over a WorkloadResult's *measured* content.

    Provenance (the manifest: timings, cache disposition, retry
    history) is excluded, so a result recovered after retries or served
    through a fallback path digests identically to a clean run — the
    property the chaos tests pin down.
    """
    payload = _canonical(
        (
            result.workload.name,
            result.run,
            result.repetition,
            result.global_analysis,
            result.function_analysis,
            result.local_analysis,
            result.reuse,
            result.value_profile,
            result.trace_reuse,
            result.static_program_instructions,
        )
    )
    return hashlib.sha256(pickle.dumps(payload, protocol=4)).hexdigest()


# -- serial watchdog ---------------------------------------------------


class Watchdog:
    """Wall-clock deadline for an in-process simulation.

    Uses the simulator's own pause mechanism: when the timer fires, the
    run stops at the next instruction boundary with ``stop_reason ==
    "paused"`` (analyzers are *not* finalized), and the runner converts
    that into a :class:`WorkloadTimeout`.  The paused simulator could be
    continued via ``resume(additional_limit=...)`` by callers that want
    to grant a grace window instead of failing.
    """

    def __init__(self, simulator, seconds: float) -> None:
        self.fired = False
        self._simulator = simulator
        self._timer = threading.Timer(seconds, self._fire)
        self._timer.daemon = True

    def _fire(self) -> None:
        self.fired = True
        self._simulator.request_pause()

    def __enter__(self) -> "Watchdog":
        self._timer.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.cancel()
