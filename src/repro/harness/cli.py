"""``repro-run`` command line interface.

Examples::

    repro-run --list
    repro-run table1 table4 --scale 1
    repro-run --all --scale 2 --input secondary
    repro-run table1 --profile
    repro-run --all --metrics-out metrics.json --trace-out trace.json

Telemetry flags (all opt-in, see :mod:`repro.obs`):

* ``--profile`` prints a per-phase / per-analyzer time table;
* ``--metrics-out FILE`` writes the metrics snapshot plus the suite run
  manifest as JSON;
* ``--trace-out FILE`` writes Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto.

With any telemetry flag the experiment list may be empty — the suite
still runs and the telemetry artifacts are written.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.harness.cache import source_digest
from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS
from repro.harness.failures import RecoveryPolicy
from repro.harness.runner import SuiteConfig, run_suite, set_cache_dir
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import tracing as obs_tracing


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Reproduce tables and figures from Sodani & Sohi, 'An Empirical "
            "Analysis of Instruction Repetition' (ASPLOS 1998)."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. table1 fig5)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--scale", type=int, default=1, help="workload input scale (default 1)")
    parser.add_argument(
        "--input",
        choices=("primary", "secondary"),
        default="primary",
        help="input set (secondary = the paper's sensitivity check)",
    )
    parser.add_argument(
        "--buffer-capacity",
        type=int,
        default=2000,
        help="unique instances buffered per static instruction (paper: 2000)",
    )
    parser.add_argument("--reuse-entries", type=int, default=8192)
    parser.add_argument("--reuse-assoc", type=int, default=4)
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=1024,
        help="trace reuse table entries (Table 10T; default 1024)",
    )
    parser.add_argument(
        "--trace-ways",
        type=int,
        default=4,
        help="trace reuse table associativity (default 4)",
    )
    parser.add_argument(
        "--trace-max-len",
        type=int,
        default=16,
        help="maximum instructions per memoized trace (default 16)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated subset of workloads (default: all eight)",
    )
    parser.add_argument(
        "--engine",
        choices=("predecoded", "interpreter"),
        default="predecoded",
        help="execution engine (interpreter = slow reference backend)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the suite run (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist workload results to this directory "
        "(default: $REPRO_CACHE_DIR if set, else no persistent cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache even if configured",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="also write the selected experiments as a markdown report "
        "(plus FILE.manifest.json with the run manifest)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase and per-analyzer timing after the run",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the metrics registry snapshot + run manifest as JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--strict",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="--no-strict keeps going on workload failures and reports "
        "partial results (exit code 3 when anything failed)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-workload wall-clock budget in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry budget for transient workload failures (default 2)",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="fault-injection plan, e.g. 'worker.crash:go' "
        "(see repro.harness.faults; also $REPRO_FAULTS)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id in EXPERIMENT_ORDER:
            exp = EXPERIMENTS[exp_id]
            print(f"{exp_id:8s} {exp.paper_ref:9s} {exp.title}")
        return 0

    telemetry = bool(args.profile or args.metrics_out or args.trace_out)
    exp_ids = list(EXPERIMENT_ORDER) if args.all else args.experiments
    if not exp_ids and not telemetry:
        print("no experiments selected; try --list or --all", file=sys.stderr)
        return 2
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.no_cache:
        set_cache_dir(None)
    elif args.cache_dir:
        set_cache_dir(args.cache_dir)

    config = SuiteConfig(
        scale=args.scale,
        buffer_capacity=args.buffer_capacity,
        reuse_entries=args.reuse_entries,
        reuse_associativity=args.reuse_assoc,
        input_kind=args.input,
        engine=args.engine,
        trace_capacity=args.trace_capacity,
        trace_ways=args.trace_ways,
        trace_max_len=args.trace_max_len,
        fault_plan=args.faults,
    )
    names = args.workloads.split(",") if args.workloads else None
    policy = RecoveryPolicy(
        strict=args.strict, retries=args.retries, timeout_s=args.timeout_s
    )

    # Telemetry is process-global and opt-in; arm it for the run and
    # restore the previous state afterwards so embedding callers (and
    # tests) never observe leaked counters or a stale tracer.
    registry = obs_metrics.REGISTRY
    armed_metrics = (args.metrics_out or args.profile) and not registry.enabled
    if armed_metrics:
        obs_metrics.enable()
        registry.reset()
    prior_tracer = obs_tracing.current_tracer()
    tracer = prior_tracer
    if (args.trace_out or args.profile) and tracer is None:
        tracer = obs_tracing.SpanTracer()
        obs_tracing.install_tracer(tracer)
    try:
        started = time.time()
        results = run_suite(
            config, names, jobs=args.jobs, profile=args.profile, policy=policy
        )
        elapsed = time.time() - started
        total = sum(r.run.analyzed_instructions for r in results.values())
        print(
            f"# suite: {len(results)} workloads, {total:,} instructions, {elapsed:.1f}s\n"
        )
        failures = getattr(results, "failures", {})
        if failures:
            print(f"== failures ({len(failures)}) ==")
            for name, record in failures.items():
                print(
                    f"{name:10s} {record.kind:13s} attempts={record.attempts} "
                    f"engine={record.engine}"
                    + (" [injected]" if record.injected else "")
                    + f" — {record.message}"
                )
            print()
        for exp_id in exp_ids:
            exp = EXPERIMENTS[exp_id]
            print(f"== {exp.paper_ref}: {exp.title} [{exp_id}] ==")
            print(exp.render(results))
            print()

        phase_timing = tracer.durations() if tracer is not None else {}
        manifest = obs_manifest.build_suite_manifest(
            config,
            results,
            source_digest(),
            timing=phase_timing,
            elapsed_seconds=elapsed,
            failures=failures,
        )
        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                json.dump(
                    {"manifest": manifest, "metrics": registry.snapshot()},
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            print(f"# metrics written to {args.metrics_out}")
        if args.trace_out and tracer is not None:
            tracer.write(args.trace_out)
            print(f"# trace written to {args.trace_out}")
        if args.profile:
            profiles = obs_profiling.profiles_from_snapshot(registry.snapshot())
            print("== profile ==")
            print(obs_profiling.format_profile_table(profiles, phase_timing))
            print()
        if args.markdown:
            from repro.analysis.report import build_markdown_report

            with open(args.markdown, "w") as handle:
                handle.write(build_markdown_report(results, exp_ids, failures=failures))
            manifest_path = f"{args.markdown}.manifest.json"
            obs_manifest.write_manifest(manifest, manifest_path)
            print(
                f"# markdown report written to {args.markdown} "
                f"(manifest: {manifest_path})"
            )
    finally:
        obs_tracing.install_tracer(prior_tracer)
        if armed_metrics:
            obs_metrics.disable()
            registry.reset()
    # Partial (non-strict) completion: artifacts were written, but the
    # run must not look clean to scripts and CI.
    return 3 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
