"""``repro-run`` command line interface.

Examples::

    repro-run --list
    repro-run table1 table4 --scale 1
    repro-run --all --scale 2 --input secondary
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS
from repro.harness.runner import SuiteConfig, run_suite, set_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Reproduce tables and figures from Sodani & Sohi, 'An Empirical "
            "Analysis of Instruction Repetition' (ASPLOS 1998)."
        ),
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. table1 fig5)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument("--scale", type=int, default=1, help="workload input scale (default 1)")
    parser.add_argument(
        "--input",
        choices=("primary", "secondary"),
        default="primary",
        help="input set (secondary = the paper's sensitivity check)",
    )
    parser.add_argument(
        "--buffer-capacity",
        type=int,
        default=2000,
        help="unique instances buffered per static instruction (paper: 2000)",
    )
    parser.add_argument("--reuse-entries", type=int, default=8192)
    parser.add_argument("--reuse-assoc", type=int, default=4)
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated subset of workloads (default: all eight)",
    )
    parser.add_argument(
        "--engine",
        choices=("predecoded", "interpreter"),
        default="predecoded",
        help="execution engine (interpreter = slow reference backend)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the suite run (default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist workload results to this directory "
        "(default: $REPRO_CACHE_DIR if set, else no persistent cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache even if configured",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="also write the selected experiments as a markdown report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id in EXPERIMENT_ORDER:
            exp = EXPERIMENTS[exp_id]
            print(f"{exp_id:8s} {exp.paper_ref:9s} {exp.title}")
        return 0

    exp_ids = list(EXPERIMENT_ORDER) if args.all else args.experiments
    if not exp_ids:
        print("no experiments selected; try --list or --all", file=sys.stderr)
        return 2
    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.no_cache:
        set_cache_dir(None)
    elif args.cache_dir:
        set_cache_dir(args.cache_dir)

    config = SuiteConfig(
        scale=args.scale,
        buffer_capacity=args.buffer_capacity,
        reuse_entries=args.reuse_entries,
        reuse_associativity=args.reuse_assoc,
        input_kind=args.input,
        engine=args.engine,
    )
    names = args.workloads.split(",") if args.workloads else None
    started = time.time()
    results = run_suite(config, names, jobs=args.jobs)
    elapsed = time.time() - started
    total = sum(r.run.analyzed_instructions for r in results.values())
    print(f"# suite: {len(results)} workloads, {total:,} instructions, {elapsed:.1f}s\n")
    for exp_id in exp_ids:
        exp = EXPERIMENTS[exp_id]
        print(f"== {exp.paper_ref}: {exp.title} [{exp_id}] ==")
        print(exp.render(results))
        print()
    if args.markdown:
        from repro.analysis.report import build_markdown_report

        with open(args.markdown, "w") as handle:
            handle.write(build_markdown_report(results, exp_ids))
        print(f"# markdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
