"""Experiment registry: one entry per table and figure in the paper.

Each experiment renders its artifact from the shared suite results; the
``repro-run`` CLI and the benchmark suite are thin wrappers around this
registry, and EXPERIMENTS.md is generated from the same output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.analysis.coverage import INSTANCE_BUCKETS, contributors_for_fraction
from repro.analysis.tables import format_panels, format_table
from repro.core.global_analysis import CATEGORY_ORDER as GLOBAL_CATEGORIES
from repro.core.local_analysis import CATEGORY_ORDER as LOCAL_CATEGORIES
from repro.harness.runner import SuiteConfig, WorkloadResult, run_suite
from repro.traces.analyzer import LENGTH_BUCKET_LABELS
from repro.traces.trace import CLASS_NAMES

Results = Dict[str, WorkloadResult]


@dataclass(frozen=True)
class Experiment:
    exp_id: str
    paper_ref: str
    title: str
    builder: Callable[[Results], str]

    def run(self, config: SuiteConfig = SuiteConfig(), jobs: int = 1) -> str:
        return self.builder(run_suite(config, jobs=jobs))

    def render(self, results: Results) -> str:
        return self.builder(results)


# ---------------------------------------------------------------------------
# Table 1 and the total-analysis figures
# ---------------------------------------------------------------------------


def build_table1(results: Results) -> str:
    rows = []
    for name, result in results.items():
        report = result.repetition
        static_total = result.static_program_instructions
        executed_pct = 100.0 * report.static_executed / static_total if static_total else 0.0
        rows.append(
            (
                name,
                report.dynamic_total,
                report.dynamic_repeated_pct,
                static_total,
                executed_pct,
                report.static_repeated_pct,
            )
        )
    return format_table(
        ("Benchmark", "Dyn total", "Dyn repeat %", "Static total", "% executed", "% exec repeated"),
        rows,
    )


_FIG1_TARGETS = (0.5, 0.75, 0.9, 0.99)


def build_fig1(results: Results) -> str:
    rows = []
    for name, result in results.items():
        weights = result.repetition.static_repeat_weights
        count = len(weights)
        cells: List[object] = [name]
        for target in _FIG1_TARGETS:
            needed = contributors_for_fraction(weights, target)
            cells.append(100.0 * needed / count if count else 0.0)
        rows.append(cells)
    headers = ("Benchmark",) + tuple(f"% insns for {int(t*100)}% rep" for t in _FIG1_TARGETS)
    return format_table(headers, rows)


def build_fig3(results: Results) -> str:
    labels = [label for _, _, label in INSTANCE_BUCKETS]
    rows = []
    for name, result in results.items():
        shares = result.repetition.bucket_shares()
        rows.append([name] + [100.0 * shares[label] for label in labels])
    return format_table(("Benchmark",) + tuple(labels), rows)


def build_table2(results: Results) -> str:
    rows = [
        (
            name,
            result.repetition.unique_repeatable_instances,
            result.repetition.average_repeats,
        )
        for name, result in results.items()
    ]
    return format_table(("Benchmark", "Unique repeatable instances", "Avg repeats"), rows)


_FIG4_TARGETS = (0.5, 0.75, 0.9)


def build_fig4(results: Results) -> str:
    rows = []
    for name, result in results.items():
        counts = result.repetition.instance_repeat_counts
        total = len(counts)
        cells: List[object] = [name]
        for target in _FIG4_TARGETS:
            needed = contributors_for_fraction(counts, target)
            cells.append(100.0 * needed / total if total else 0.0)
        rows.append(cells)
    headers = ("Benchmark",) + tuple(
        f"% instances for {int(t*100)}% rep" for t in _FIG4_TARGETS
    )
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Table 3: global analysis
# ---------------------------------------------------------------------------


def _category_panel(
    results: Results, categories: Sequence[str], getter: Callable[[WorkloadResult, str], float]
) -> List[List[object]]:
    return [
        [category] + [getter(result, category) for result in results.values()]
        for category in categories
    ]


def build_table3(results: Results) -> str:
    names = tuple(results)
    return format_panels(
        [
            (title, ("Category",) + names, _category_panel(results, GLOBAL_CATEGORIES, getter))
            for title, getter in (
                ("Overall (% of all dynamic instructions)", lambda r, c: r.global_analysis.overall_pct(c)),
                ("Repeated (% of repeated instructions)", lambda r, c: r.global_analysis.repeated_pct(c)),
                ("Propensity (% of category repeated)", lambda r, c: r.global_analysis.propensity_pct(c)),
            )
        ]
    )


# ---------------------------------------------------------------------------
# Tables 4 / 8 and Figure 5: function analysis
# ---------------------------------------------------------------------------


def build_table4(results: Results) -> str:
    rows = [
        (
            name,
            result.function_analysis.num_functions,
            result.function_analysis.dynamic_calls,
            result.function_analysis.all_args_repeated_pct,
            result.function_analysis.no_args_repeated_pct,
        )
        for name, result in results.items()
    ]
    return format_table(
        ("Benchmark", "Funcs", "Dyn calls", "ALL args repeated %", "NO args repeated %"),
        rows,
    )


def build_table8(results: Results) -> str:
    rows = [
        (
            name,
            result.function_analysis.pure_pct,
            result.function_analysis.pure_all_repeated_pct,
        )
        for name, result in results.items()
    ]
    return format_table(
        ("Benchmark", "Pure calls (% of all)", "Pure (% of all-arg-repeated)"), rows
    )


def build_fig5(results: Results) -> str:
    rows = [
        [name] + list(result.function_analysis.top_k_coverage)
        for name, result in results.items()
    ]
    headers = ("Benchmark",) + tuple(f"top-{k}" for k in range(1, 6))
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Tables 5/6/7 and Table 9: local analysis
# ---------------------------------------------------------------------------


def build_table5(results: Results) -> str:
    names = tuple(results)
    return format_table(
        ("Category",) + names,
        _category_panel(results, LOCAL_CATEGORIES, lambda r, c: r.local_analysis.overall_pct(c)),
    )


def build_table6(results: Results) -> str:
    names = tuple(results)
    return format_table(
        ("Category",) + names,
        _category_panel(results, LOCAL_CATEGORIES, lambda r, c: r.local_analysis.repeated_pct(c)),
    )


def build_table7(results: Results) -> str:
    names = tuple(results)
    return format_table(
        ("Category",) + names,
        _category_panel(
            results, LOCAL_CATEGORIES, lambda r, c: r.local_analysis.propensity_pct(c)
        ),
    )


def build_table9(results: Results) -> str:
    lines = []
    for name, result in results.items():
        top = result.local_analysis.top_prologue_contributors(5)
        coverage = result.local_analysis.prologue_coverage_pct(5)
        entries = ", ".join(f"{c.name}({c.static_size})" for c in top)
        lines.append(f"{name:10s} coverage={coverage:5.1f}%  top: {entries}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 6 and Table 10
# ---------------------------------------------------------------------------


def build_fig6(results: Results) -> str:
    rows = [
        [name] + list(result.value_profile.top_k_coverage)
        for name, result in results.items()
    ]
    headers = ("Benchmark",) + tuple(f"top-{k}" for k in range(1, 6))
    return format_table(headers, rows)


def build_table10(results: Results) -> str:
    rows = [
        (
            name,
            result.reuse.hit_pct,
            result.reuse.repeated_share_pct(result.repetition.dynamic_repeated),
        )
        for name, result in results.items()
    ]
    return format_table(("Benchmark", "% of all insns", "% of repeated insns"), rows)


def build_table10t(results: Results) -> str:
    """Trace-level reuse (Table 10T): the DTM counterpart of Table 10.

    Three panels over the same runs: trace coverage next to the
    instruction-level buffer's capture rate, the hit-trace length
    distribution, and the Coppieters-style per-class decomposition of
    trace-covered instructions.
    """
    names = tuple(results)
    summary_rows = [
        (
            name,
            result.trace_reuse.coverage_pct,
            result.reuse.hit_pct,
            result.trace_reuse.hit_rate_pct,
            result.trace_reuse.mean_hit_length,
            result.trace_reuse.traces_recorded,
            result.trace_reuse.invalidations,
            result.trace_reuse.occupancy,
        )
        for name, result in results.items()
    ]
    length_rows = [
        [f"len {label}"]
        + [result.trace_reuse.hit_length_pct(label) for result in results.values()]
        for label in LENGTH_BUCKET_LABELS
    ]
    class_rows = [
        [class_name]
        + [result.trace_reuse.class_coverage_pct(class_name) for result in results.values()]
        for class_name in CLASS_NAMES
    ]
    return format_panels(
        [
            (
                "Coverage (trace reuse vs instruction-level buffer)",
                (
                    "Benchmark",
                    "Trace cov %",
                    "Insn buf %",
                    "Hit rate %",
                    "Mean len",
                    "Recorded",
                    "Invalidated",
                    "Resident",
                ),
                summary_rows,
            ),
            ("Hit-trace length (% of hits)", ("Length",) + names, length_rows),
            (
                "Covered instructions by class (% of covered)",
                ("Class",) + names,
                class_rows,
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


EXPERIMENTS: Dict[str, Experiment] = {
    exp.exp_id: exp
    for exp in (
        Experiment("table1", "Table 1", "Dynamic and static repetition", build_table1),
        Experiment("fig1", "Figure 1", "Static-instruction coverage of repetition", build_fig1),
        Experiment("fig3", "Figure 3", "Repetition by unique-instance bucket", build_fig3),
        Experiment("table2", "Table 2", "Unique repeatable instances", build_table2),
        Experiment("fig4", "Figure 4", "Instance coverage of repetition", build_fig4),
        Experiment("table3", "Table 3", "Global source analysis", build_table3),
        Experiment("table4", "Table 4", "Function argument repetition", build_table4),
        Experiment("table5", "Table 5", "Local analysis: overall", build_table5),
        Experiment("table6", "Table 6", "Local analysis: repetition share", build_table6),
        Experiment("table7", "Table 7", "Local analysis: propensity", build_table7),
        Experiment("table8", "Table 8", "Memoization candidates", build_table8),
        Experiment("fig5", "Figure 5", "Argument-set specialization coverage", build_fig5),
        Experiment("table9", "Table 9", "Top prologue/epilogue contributors", build_table9),
        Experiment("fig6", "Figure 6", "Global-load value specialization", build_fig6),
        Experiment("table10", "Table 10", "Reuse buffer capture", build_table10),
        Experiment("table10t", "Table 10T", "Trace-level reuse (DTM)", build_table10t),
    )
}

EXPERIMENT_ORDER = tuple(EXPERIMENTS)
