"""Deterministic, seeded fault injection for the suite harness.

Every recovery path in the harness (retry, watchdog, engine
degradation, cache self-healing — see :mod:`repro.harness.failures`)
is exercised through *this* registry rather than through prod-only test
hooks: the production code calls :func:`check` / :func:`should_fire` at
a small catalog of named sites, and an armed :class:`FaultPlan` decides
— deterministically — whether the fault fires.  With no plan armed the
site checks are a single module-attribute test, so zero-fault runs pay
nothing measurable.

Plans are armed three ways:

* ``SuiteConfig.fault_plan`` — a spec string carried by the run
  configuration (and therefore by the cache key, so faulted runs can
  never serve or poison clean cache entries);
* the ``REPRO_FAULTS`` environment variable (same grammar), seeded by
  ``REPRO_FAULTS_SEED`` — how the CI chaos job arms itself;
* :func:`install_plan` directly (tests).

Spec grammar (comma-separated)::

    site[:workload[@attempt]][:times]

    worker.crash:go            crash go's worker (every attempt)
    worker.crash:go@1          crash only go's first attempt
    engine.predecode_raise:*:2 fail the first two predecoded runs
    cache.corrupt:compress     corrupt compress's cache entry on store
    asm.error:li:p0.5          fail li's assembly with probability 0.5

``times`` bounds how often a spec fires (``*`` = unlimited, default 1);
``p<float>`` makes firing probabilistic, driven by a seeded LCG so the
same seed always injects the same faults.  Counts are per installed
plan: pool workers re-install the plan from the config for every task,
so worker-site specs fire per *attempt* (which is what chaos tests
want), while a serial suite shares one plan across all its workloads.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.errors import AsmError
from repro.obs import metrics as obs_metrics
from repro.sim.errors import SimError

#: Environment variables arming the harness outside of SuiteConfig.
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: How long an injected hang sleeps.  Bounded (not infinite) so a
#: broken watchdog stalls a test run by a minute, not forever.
HANG_SECONDS = 60.0

#: The injection-site catalog: site name -> what firing does.
SITES: Dict[str, str] = {
    "worker.crash": "pool worker dies with os._exit (BrokenProcessPool)",
    "worker.hang": f"pool worker sleeps {HANG_SECONDS:.0f}s (watchdog timeout)",
    "cache.corrupt": "persistent-cache entry is scribbled after a store",
    "cache.torn_write": "persistent-cache store dies mid-write (before replace)",
    "engine.predecode_raise": "predecoded engine raises SimError at run start",
    "engine.interp_raise": "interpreter engine raises SimError at run start",
    "asm.error": "workload assembly raises AsmError",
}


class FaultInjected(RuntimeError):
    """An error raised by the fault harness itself (e.g. a torn write)."""

    injected = True

    def __init__(self, site: str, message: Optional[str] = None) -> None:
        self.site = site
        super().__init__(message or f"injected fault at {site}")

    def __reduce__(self):
        return (FaultInjected, (self.site, str(self)))


@dataclass
class FaultSpec:
    """One armed fault: where it fires, for whom, and how often."""

    site: str
    workload: str = "*"
    attempt: Optional[int] = None
    times: Optional[int] = 1  # None = unlimited
    probability: Optional[float] = None
    fired: int = 0

    @classmethod
    def parse(cls, token: str) -> "FaultSpec":
        parts = token.strip().split(":")
        site = parts[0].strip()
        if site not in SITES:
            known = ", ".join(sorted(SITES))
            raise ValueError(f"unknown fault site {site!r} (known: {known})")
        workload, attempt = "*", None
        if len(parts) > 1 and parts[1]:
            workload = parts[1].strip()
            if "@" in workload:
                workload, attempt_text = workload.split("@", 1)
                workload = workload or "*"
                attempt = int(attempt_text)
        times: Optional[int] = 1
        probability = None
        if len(parts) > 2 and parts[2]:
            bound = parts[2].strip()
            if bound == "*":
                times = None
            elif bound.startswith("p"):
                probability = float(bound[1:])
                times = None
            else:
                times = int(bound)
        if len(parts) > 3:
            raise ValueError(f"malformed fault spec {token!r}")
        return cls(site, workload, attempt, times, probability)

    def matches(self, site: str, workload: Optional[str], attempt: Optional[int]) -> bool:
        if site != self.site:
            return False
        if self.workload != "*" and workload != self.workload:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return True


class _Lcg:
    """Tiny deterministic generator for probabilistic specs."""

    def __init__(self, seed: int) -> None:
        self._state = (seed ^ 0x5DEECE66D) & 0x7FFFFFFF

    def next_unit(self) -> float:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state / float(0x80000000)


class FaultPlan:
    """A parsed set of :class:`FaultSpec` plus the seeded random source."""

    def __init__(self, specs: Tuple[FaultSpec, ...], seed: int = 0, text: str = "") -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self.text = text
        self._rng = _Lcg(seed)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        specs = tuple(
            FaultSpec.parse(token) for token in text.split(",") if token.strip()
        )
        if not specs:
            raise ValueError(f"empty fault plan {text!r}")
        return cls(specs, seed=seed, text=text)

    def should_fire(
        self, site: str, workload: Optional[str], attempt: Optional[int]
    ) -> Optional[FaultSpec]:
        """The first matching spec that fires now, updating its count."""
        for spec in self.specs:
            if not spec.matches(site, workload, attempt):
                continue
            if spec.probability is not None and self._rng.next_unit() >= spec.probability:
                continue
            spec.fired += 1
            obs_metrics.REGISTRY.inc(f"fault.injected.{site}")
            return spec
        return None


# -- process-global arming state ---------------------------------------

_ACTIVE: Optional[FaultPlan] = None

#: Scope stack: merged dicts of {"workload": ..., "attempt": ...}.
_SCOPE: List[dict] = []


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-globally (``None`` disarms)."""
    global _ACTIVE
    _ACTIVE = plan


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def armed() -> bool:
    """Cheap site-side guard: is any fault plan installed?"""
    return _ACTIVE is not None


def resolve_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Plan from an explicit spec string, else ``$REPRO_FAULTS``, else None."""
    text = spec or os.environ.get(FAULTS_ENV)
    if not text:
        return None
    seed = int(os.environ.get(FAULTS_SEED_ENV, "0") or "0")
    return FaultPlan.parse(text, seed=seed)


@contextmanager
def armed_plan(spec: Optional[str]):
    """Arm the plan resolved from ``spec``/env for the block.

    An already-armed plan is kept (so a suite-level plan persists its
    fired counts across the workloads it runs); otherwise the resolved
    plan is installed on entry and disarmed on exit.
    """
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    plan = resolve_plan(spec)
    if plan is None:
        yield None
        return
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(None)


@contextmanager
def scope(workload: Optional[str] = None, attempt: Optional[int] = None):
    """Attach workload/attempt context for site checks inside the block.

    Nested scopes merge: an inner ``scope(workload=...)`` inherits the
    outer scope's attempt, so the simulator-level sites (which know
    nothing about attempts) still match ``@attempt`` specs.
    """
    merged = dict(_SCOPE[-1]) if _SCOPE else {}
    if workload is not None:
        merged["workload"] = workload
    if attempt is not None:
        merged["attempt"] = attempt
    _SCOPE.append(merged)
    try:
        yield
    finally:
        _SCOPE.pop()


def _context(workload: Optional[str]) -> Tuple[Optional[str], Optional[int]]:
    current = _SCOPE[-1] if _SCOPE else {}
    if workload is None:
        workload = current.get("workload")
    return workload, current.get("attempt")


def should_fire(site: str, workload: Optional[str] = None) -> Optional[FaultSpec]:
    """Non-raising site check (for sites whose action is caller-side)."""
    if _ACTIVE is None:
        return None
    scoped_workload, attempt = _context(workload)
    return _ACTIVE.should_fire(site, scoped_workload, attempt)


def check(site: str, workload: Optional[str] = None) -> None:
    """Raising site check: perform the site's action if a spec fires."""
    spec = should_fire(site, workload)
    if spec is None:
        return
    if site == "worker.crash":
        # Simulates a hard worker death (segfault, OOM-kill): no
        # exception crosses the pool, the parent sees BrokenProcessPool.
        os._exit(70)
    if site == "worker.hang":
        time.sleep(HANG_SECONDS)
        return
    if site in ("engine.predecode_raise", "engine.interp_raise"):
        error = SimError(f"injected fault at {site}")
        error.injected = True
        raise error
    if site == "asm.error":
        error = AsmError(f"injected fault at {site}")
        error.injected = True
        raise error
    # cache.torn_write and any future raise-style site.
    raise FaultInjected(site)
