"""Persistent on-disk cache for :class:`WorkloadResult` reports.

One simulated run per (workload, configuration) feeds every table and
figure, so results are worth keeping across *processes*, not just within
one (the in-memory layer in :mod:`repro.harness.runner` only helps the
latter).  Entries are pickled to ``<cache-dir>/<key>.pkl`` where the key
is a SHA-256 over:

* a cache format version (bumped when the pickled layout changes),
* the workload name,
* the full ``repr`` of the :class:`SuiteConfig` (every knob, including
  the execution engine, participates — distinct configs cannot collide),
* a digest of the ``repro`` source tree, so any code change invalidates
  every stale entry automatically.

Writes are atomic (temp file + ``os.replace``), so concurrent suite
runs — including the process-pool workers in
:mod:`repro.harness.parallel` — can share one directory safely.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Optional

from repro.harness import faults as _faults
from repro.obs import metrics as obs_metrics

logger = logging.getLogger("repro.harness.cache")

#: Bump when WorkloadResult / report layouts change incompatibly.
#: v2: WorkloadResult carries a RunManifest; ReuseBufferReport gained
#: eviction/occupancy telemetry fields.
#: v3: WorkloadResult gained the trace_reuse report (Table 10T) and
#: SuiteConfig the trace-table geometry knobs.
#: v4: RunManifest gained recovery provenance (degraded / attempts /
#: failures) and SuiteConfig the fault_plan knob — degraded or faulted
#: results must never be served against pre-recovery keys.
CACHE_FORMAT_VERSION = 4

#: Environment variable that opts experiment runs into disk caching.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@lru_cache(maxsize=1)
def source_digest() -> str:
    """SHA-256 over the ``repro`` package sources (code + MiniC inputs)."""
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if not path.is_file() or "__pycache__" in path.parts:
            continue
        if path.suffix == ".pyc":
            continue
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Content-addressed pickle store for workload results."""

    def __init__(self, directory: os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def key_for(self, workload_name: str, config: object) -> str:
        payload = "\n".join(
            (
                str(CACHE_FORMAT_VERSION),
                workload_name,
                repr(config),
                source_digest(),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, workload_name: str, config: object) -> Path:
        return self.directory / f"{self.key_for(workload_name, config)}.pkl"

    def load(self, workload_name: str, config: object) -> Optional[object]:
        """The cached result, or ``None`` on miss / unreadable entry."""
        registry = obs_metrics.REGISTRY
        path = self.path_for(workload_name, config)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            registry.inc("cache.disk.misses")
            return None
        except Exception as exc:
            # A torn, corrupt, or stale entry is a miss, never an error —
            # unpickling garbage can raise nearly anything (ValueError,
            # UnpicklingError, EOFError, AttributeError, ImportError, ...).
            # It is counted and evicted, not silently swallowed: leaving
            # the bad file in place would re-pay the failed read forever.
            registry.inc("cache.disk.misses")
            registry.inc("cache.disk.corrupt")
            logger.warning(
                "evicting corrupt result-cache entry %s (%s: %s)",
                path.name,
                type(exc).__name__,
                exc,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None
        registry.inc("cache.disk.hits")
        if registry.enabled:
            try:
                registry.counter("cache.disk.bytes_read").inc(path.stat().st_size)
            except OSError:
                pass
        return result

    def store(self, workload_name: str, config: object, result: object) -> None:
        """Atomically persist ``result`` (temp file + ``os.replace``).

        A writer killed at any point — including via the
        ``cache.torn_write`` fault site, which aborts after the pickle
        but before the rename — leaves either the previous entry or no
        entry, never a torn one.
        """
        path = self.path_for(workload_name, config)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                written = handle.tell()
                if _faults.armed():
                    _faults.check("cache.torn_write", workload_name)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            registry = obs_metrics.REGISTRY
            registry.inc("cache.disk.stores")
            registry.inc("cache.disk.bytes_written", written)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if _faults.armed() and _faults.should_fire("cache.corrupt", workload_name):
            # Simulate on-disk rot: scribble over the committed entry so
            # the next load takes the corrupt-eviction path.
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)] + b"\xde\xad")

    def clear(self) -> None:
        """Remove every cached entry (leaves the directory in place)."""
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass


def default_cache_dir() -> Optional[str]:
    """Directory from ``$REPRO_CACHE_DIR``, or ``None`` (caching off)."""
    value = os.environ.get(CACHE_DIR_ENV)
    return value or None
