"""Parallel suite execution over a process pool.

Workloads are independent simulations, so a cold suite run parallelises
trivially: each worker process runs one ``(workload, config)`` pair via
the ordinary :func:`~repro.harness.runner.run_workload` path and ships
the finished :class:`~repro.harness.runner.WorkloadResult` back
(everything in it is picklable; :class:`~repro.workloads.base.Workload`
reduces to a registry lookup).

Both cache layers are honoured: the parent serves hits before spawning
anything, workers inherit the persistent-cache directory, and finished
results are promoted into the parent's in-memory cache so follow-up
``run_suite`` calls in the same process are free.

Telemetry crosses the process boundary the same way the results do:
when the parent's metrics registry is enabled (or a tracer is
installed), each worker collects into a fresh registry/tracer of its
own and ships the snapshot / event list back with the result.  The
parent merges them, adds per-worker task counts and durations
(``parallel.worker.<pid>.*``), and splices worker trace events into its
own tracer — so ``run_suite(jobs=N)`` reports the same aggregate
numbers a serial run would, plus the fan-out shape.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional, Tuple

from repro.harness import runner
from repro.harness.runner import SuiteConfig, WorkloadResult
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.workloads import WORKLOAD_ORDER, get_workload


def _run_one(
    name: str,
    config: SuiteConfig,
    cache_dir: Optional[str],
    telemetry: bool,
    trace: bool,
    profile: bool,
) -> Tuple[WorkloadResult, dict]:
    """Worker entry point: simulate one workload in a fresh process.

    Worker processes are reused by the pool (and inherit parent state
    under fork), so telemetry state is re-initialized per task: the
    registry is reset before the run and snapshotted after, making each
    shipped snapshot exactly one task's worth of metrics.
    """
    if cache_dir is not None:
        runner.set_cache_dir(cache_dir)
    if telemetry:
        obs_metrics.enable()
        obs_metrics.REGISTRY.reset()
    else:
        obs_metrics.disable()
    tracer = obs_tracing.SpanTracer() if trace else None
    obs_tracing.install_tracer(tracer)

    started = time.perf_counter()
    result = runner.run_workload(get_workload(name), config, profile=profile)
    elapsed = time.perf_counter() - started
    meta = {
        "pid": os.getpid(),
        "seconds": elapsed,
        "metrics": obs_metrics.REGISTRY.snapshot() if telemetry else None,
        "trace_events": list(tracer.events) if tracer is not None else None,
    }
    obs_tracing.install_tracer(None)
    return result, meta


def run_suite_parallel(
    config: SuiteConfig = SuiteConfig(),
    names: Optional[Iterable[str]] = None,
    jobs: int = 2,
    profile: bool = False,
) -> Dict[str, WorkloadResult]:
    """Run the suite with up to ``jobs`` worker processes."""
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    results: Dict[str, WorkloadResult] = {}
    misses = []
    for name in selected:
        cached = runner.cached_result(get_workload(name), config)
        if cached is not None:
            results[name] = cached
        else:
            misses.append(name)

    if misses:
        registry = obs_metrics.REGISTRY
        telemetry = registry.enabled
        parent_tracer = obs_tracing.current_tracer()
        cache_dir = runner.cache_directory()
        workers = max(1, min(jobs, len(misses)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (
                    name,
                    pool.submit(
                        _run_one,
                        name,
                        config,
                        cache_dir,
                        telemetry,
                        parent_tracer is not None,
                        profile,
                    ),
                )
                for name in misses
            ]
            for name, future in futures:
                result, meta = future.result()
                # The worker already wrote the disk entry when enabled.
                runner.install_result(result, config, to_disk=cache_dir is None)
                results[name] = result
                if meta["metrics"] is not None:
                    registry.merge(meta["metrics"])
                if telemetry:
                    pid = meta["pid"]
                    registry.counter("parallel.tasks").inc()
                    registry.counter(f"parallel.worker.{pid}.tasks").inc()
                    registry.timer(f"parallel.worker.{pid}.seconds").observe(
                        meta["seconds"]
                    )
                if parent_tracer is not None and meta["trace_events"]:
                    parent_tracer.extend(meta["trace_events"])

    return {name: results[name] for name in selected}
