"""Parallel suite execution over a process pool.

Workloads are independent simulations, so a cold suite run parallelises
trivially: each worker process runs one ``(workload, config)`` pair via
the ordinary :func:`~repro.harness.runner.run_workload` path and ships
the finished :class:`~repro.harness.runner.WorkloadResult` back
(everything in it is picklable; :class:`~repro.workloads.base.Workload`
reduces to a registry lookup).

Both cache layers are honoured: the parent serves hits before spawning
anything, workers inherit the persistent-cache directory, and finished
results are promoted into the parent's in-memory cache so follow-up
``run_suite`` calls in the same process are free.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional

from repro.harness import runner
from repro.harness.runner import SuiteConfig, WorkloadResult
from repro.workloads import WORKLOAD_ORDER, get_workload


def _run_one(name: str, config: SuiteConfig, cache_dir: Optional[str]) -> WorkloadResult:
    """Worker entry point: simulate one workload in a fresh process."""
    if cache_dir is not None:
        runner.set_cache_dir(cache_dir)
    return runner.run_workload(get_workload(name), config)


def run_suite_parallel(
    config: SuiteConfig = SuiteConfig(),
    names: Optional[Iterable[str]] = None,
    jobs: int = 2,
) -> Dict[str, WorkloadResult]:
    """Run the suite with up to ``jobs`` worker processes."""
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    results: Dict[str, WorkloadResult] = {}
    misses = []
    for name in selected:
        cached = runner.cached_result(get_workload(name), config)
        if cached is not None:
            results[name] = cached
        else:
            misses.append(name)

    if misses:
        cache_dir = runner.cache_directory()
        workers = max(1, min(jobs, len(misses)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (name, pool.submit(_run_one, name, config, cache_dir))
                for name in misses
            ]
            for name, future in futures:
                result = future.result()
                # The worker already wrote the disk entry when enabled.
                runner.install_result(result, config, to_disk=cache_dir is None)
                results[name] = result

    return {name: results[name] for name in selected}
