"""Parallel suite execution over a process pool.

Workloads are independent simulations, so a cold suite run parallelises
trivially: each worker process runs one ``(workload, config)`` pair via
the ordinary :func:`~repro.harness.runner.run_workload` path and ships
the finished :class:`~repro.harness.runner.WorkloadResult` back
(everything in it is picklable; :class:`~repro.workloads.base.Workload`
reduces to a registry lookup).

Both cache layers are honoured: the parent serves hits before spawning
anything, workers inherit the persistent-cache directory, and finished
results are promoted into the parent's in-memory cache so follow-up
``run_suite`` calls in the same process are free.

Telemetry crosses the process boundary the same way the results do:
when the parent's metrics registry is enabled (or a tracer is
installed), each worker collects into a fresh registry/tracer of its
own and ships the snapshot / event list back with the result.  The
parent merges them, adds per-worker task counts and durations
(``parallel.worker.<pid>.*``), and splices worker trace events into its
own tracer — so ``run_suite(jobs=N)`` reports the same aggregate
numbers a serial run would, plus the fan-out shape.

Fault tolerance (see :mod:`repro.harness.failures`) is round-based:
each round submits the still-pending workloads to a fresh pool, then
classifies what came back.  A crashed worker (``BrokenProcessPool``)
poisons every in-flight future, so survivors are harvested, the
casualties retried in the next round's fresh pool, and only workloads
that exhaust their retries become terminal failures.  A parent-side
round deadline (derived from ``RecoveryPolicy.timeout_s``) catches hard
hangs the in-worker watchdog cannot: the pool processes are killed and
the unfinished workloads synthesized into ``WorkloadTimeout`` records.
``strict`` policies re-raise the first failure after the round drains,
preserving the historical behaviour.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Iterable, List, Optional, Tuple

from repro.harness import faults, runner
from repro.harness.failures import (
    FailureRecord,
    RecoveryPolicy,
    SuiteReport,
    WorkloadTimeout,
    classify_failure,
    note_failure,
    plan_next_action,
)
from repro.harness.runner import REFERENCE_ENGINE, SuiteConfig, WorkloadResult
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.workloads import WORKLOAD_ORDER, get_workload

#: Parent-side slack on top of the per-workload budget: covers pool
#: spawn, assembly, and result pickling around the simulate phase.
ROUND_GRACE_S = 3.0


def _run_one(
    name: str,
    config: SuiteConfig,
    cache_dir: Optional[str],
    telemetry: bool,
    trace: bool,
    profile: bool,
    attempt: int = 1,
    timeout_s: Optional[float] = None,
) -> Tuple[WorkloadResult, dict]:
    """Worker entry point: simulate one workload in a fresh process.

    Worker processes are reused by the pool (and inherit parent state
    under fork), so telemetry state is re-initialized per task: the
    registry is reset before the run and snapshotted after, making each
    shipped snapshot exactly one task's worth of metrics.  The fault
    plan is likewise re-installed per task, so worker-site specs fire
    per attempt — a ``worker.crash:<name>`` keeps crashing on retry,
    while ``worker.crash:<name>@1`` recovers on the second round.
    """
    if cache_dir is not None:
        runner.set_cache_dir(cache_dir)
    if telemetry:
        obs_metrics.enable()
        obs_metrics.REGISTRY.reset()
    else:
        obs_metrics.disable()
    tracer = obs_tracing.SpanTracer() if trace else None
    obs_tracing.install_tracer(tracer)
    faults.install_plan(faults.resolve_plan(config.fault_plan))
    try:
        started = time.perf_counter()
        with faults.scope(workload=name, attempt=attempt):
            if faults.armed():
                faults.check("worker.crash", name)
                faults.check("worker.hang", name)
            result = runner.run_workload(
                get_workload(name), config, profile=profile, deadline_s=timeout_s
            )
        elapsed = time.perf_counter() - started
        meta = {
            "pid": os.getpid(),
            "seconds": elapsed,
            "metrics": obs_metrics.REGISTRY.snapshot() if telemetry else None,
            "trace_events": list(tracer.events) if tracer is not None else None,
        }
        return result, meta
    finally:
        faults.install_plan(None)
        obs_tracing.install_tracer(None)


@dataclasses.dataclass
class _Task:
    """One pending workload in the retry loop."""

    name: str
    config: SuiteConfig
    attempt: int = 1
    degraded_from: Optional[str] = None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung (SIGKILL, no waiting)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _drain(
    futures: Dict[object, str],
    budget: Optional[float],
    timeout_s: Optional[float],
    outcomes: Dict[str, Tuple[str, object]],
) -> bool:
    """Collect every future into ``outcomes``; True if the budget lapsed.

    A ``BrokenProcessPool`` poisons every in-flight future of its pool;
    ``as_completed`` still drains them all, so tasks that finished
    before the breakage are harvested as successes.
    """
    try:
        for future in as_completed(futures, timeout=budget):
            name = futures[future]
            try:
                outcomes[name] = ("ok", future.result())
            except Exception as exc:
                outcomes[name] = ("err", exc)
        return False
    except FuturesTimeout:
        for future, name in futures.items():
            if name in outcomes:
                continue
            if future.done():
                try:
                    outcomes[name] = ("ok", future.result())
                except Exception as exc:
                    outcomes[name] = ("err", exc)
            else:
                outcomes[name] = ("err", WorkloadTimeout(name, timeout_s or 0.0))
        return True


def _run_round(
    tasks: List[_Task],
    workers: int,
    cache_dir: Optional[str],
    telemetry: bool,
    trace: bool,
    profile: bool,
    timeout_s: Optional[float],
    isolate: bool = False,
) -> Dict[str, Tuple[str, object]]:
    """Submit ``tasks`` to fresh pool(s); classify every completion.

    Returns ``{name: ("ok", (result, meta)) | ("err", exception)}``.
    ``isolate=True`` (used after a pool breakage) gives every task its
    own single-worker pool, so a repeat-crasher cannot poison the
    futures of innocent workloads sharing its pool.
    """

    def _submit(pool: ProcessPoolExecutor, task: _Task):
        return pool.submit(
            _run_one,
            task.name,
            task.config,
            cache_dir,
            telemetry,
            trace,
            profile,
            task.attempt,
            timeout_s,
        )

    outcomes: Dict[str, Tuple[str, object]] = {}
    if isolate:
        # Waves of at most `workers` concurrent one-task pools.
        for start in range(0, len(tasks), workers):
            wave = tasks[start : start + workers]
            pools = [ProcessPoolExecutor(max_workers=1) for _ in wave]
            futures = {
                _submit(pool, task): task.name for pool, task in zip(pools, wave)
            }
            budget = None if timeout_s is None else timeout_s + ROUND_GRACE_S
            timed_out = _drain(futures, budget, timeout_s, outcomes)
            for pool in pools:
                if timed_out:
                    _kill_pool(pool)
                else:
                    pool.shutdown(wait=True)
        return outcomes

    budget = None
    if timeout_s is not None:
        waves = math.ceil(len(tasks) / workers)
        budget = timeout_s * waves + ROUND_GRACE_S
    pool = ProcessPoolExecutor(max_workers=workers)
    timed_out = False
    try:
        futures = {_submit(pool, task): task.name for task in tasks}
        timed_out = _drain(futures, budget, timeout_s, outcomes)
    finally:
        if timed_out:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True)
    return outcomes


def run_suite_parallel(
    config: SuiteConfig = SuiteConfig(),
    names: Optional[Iterable[str]] = None,
    jobs: int = 2,
    profile: bool = False,
    policy: Optional[RecoveryPolicy] = None,
) -> SuiteReport:
    """Run the suite with up to ``jobs`` worker processes.

    Returns a :class:`SuiteReport`; under the default strict policy the
    first worker failure re-raises, exactly like the serial path.
    """
    if not isinstance(jobs, int) or jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    if len(set(selected)) != len(selected):
        seen = set()
        dupes = sorted({n for n in selected if n in seen or seen.add(n)})
        raise ValueError(f"duplicate workload names: {', '.join(dupes)}")
    effective = policy if policy is not None else RecoveryPolicy()

    report = SuiteReport(config=config)
    registry = obs_metrics.REGISTRY
    results: Dict[str, WorkloadResult] = {}
    histories: Dict[str, List[FailureRecord]] = {}
    pending: List[_Task] = []
    for name in selected:
        cached = runner.cached_result(get_workload(name), config)
        if cached is not None:
            results[name] = cached
        else:
            pending.append(_Task(name=name, config=config))

    telemetry = registry.enabled
    parent_tracer = obs_tracing.current_tracer()
    cache_dir = runner.cache_directory()
    isolate = False
    while pending:
        workers = max(1, min(jobs, len(pending)))
        outcomes = _run_round(
            pending,
            workers,
            cache_dir,
            telemetry,
            parent_tracer is not None,
            profile,
            effective.timeout_s,
            isolate=isolate,
        )
        if any(
            isinstance(payload, BrokenProcessPool)
            for status, payload in outcomes.values()
            if status == "err"
        ):
            # A crashed worker poisons its poolmates' futures: retry the
            # casualties in per-task pools so innocents can finish.
            isolate = True
        next_round: List[_Task] = []
        backoff = 0.0
        for task in pending:
            status, payload = outcomes[task.name]
            if status == "ok":
                result, meta = payload
                # The worker already wrote the disk entry when enabled.
                runner.install_result(result, task.config, to_disk=cache_dir is None)
                history = histories.get(task.name, [])
                if history or task.degraded_from is not None:
                    result = runner._annotate_result(
                        result, history, task.attempt, task.degraded_from
                    )
                results[task.name] = result
                if meta["metrics"] is not None:
                    registry.merge(meta["metrics"])
                if telemetry:
                    pid = meta["pid"]
                    registry.counter("parallel.tasks").inc()
                    registry.counter(f"parallel.worker.{pid}.tasks").inc()
                    registry.timer(f"parallel.worker.{pid}.seconds").observe(
                        meta["seconds"]
                    )
                if parent_tracer is not None and meta["trace_events"]:
                    parent_tracer.extend(meta["trace_events"])
                continue
            exc = payload
            record = classify_failure(
                exc,
                workload=task.name,
                engine=task.config.engine,
                attempt=task.attempt,
            )
            histories.setdefault(task.name, []).append(record)
            note_failure(record)
            if effective.strict:
                raise exc
            action = plan_next_action(
                record,
                engine=task.config.engine,
                degraded=task.degraded_from is not None,
                attempt=task.attempt,
                retries=effective.retries,
            )
            if action == "degrade":
                registry.inc("degrade.engine_fallback")
                task.degraded_from = task.config.engine
                task.config = dataclasses.replace(
                    task.config, engine=REFERENCE_ENGINE
                )
                task.attempt += 1
                next_round.append(task)
            elif action == "retry":
                registry.inc("retry.attempts")
                backoff = max(
                    backoff, effective.backoff_seconds(task.name, task.attempt)
                )
                task.attempt += 1
                next_round.append(task)
            else:
                report.failures[task.name] = record
                registry.inc("suite.partial_failures")
        pending = next_round
        if pending and backoff > 0.0:
            time.sleep(backoff)

    for history in histories.values():
        report.history.extend(history)
    for name in selected:
        if name in results:
            report[name] = results[name]
    return report
