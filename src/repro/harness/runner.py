"""Suite runner: execute workloads under the full analysis stack.

One simulated run per (workload, configuration) feeds *all* the paper's
tables and figures, so results are cached at two layers:

* an in-process dict (the fifteen experiment reproductions and the
  test-suite fixtures share simulations instead of re-running them), and
* an optional on-disk :class:`~repro.harness.cache.ResultCache` so
  repeated CLI / experiment invocations skip simulation altogether.
  Enable it with :func:`set_cache_dir` or the ``REPRO_CACHE_DIR``
  environment variable; entries self-invalidate when the source tree
  changes (see :mod:`repro.harness.cache`).

``run_suite(..., jobs=N)`` fans the suite out over a process pool
(:mod:`repro.harness.parallel`); both cache layers are consulted before
any worker is spawned.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.function_analysis import FunctionAnalysisReport, FunctionAnalyzer
from repro.core.global_analysis import GlobalAnalysisReport, GlobalSourceAnalyzer
from repro.core.local_analysis import LocalAnalysisReport, LocalAnalyzer
from repro.core.repetition import RepetitionReport, RepetitionTracker
from repro.core.reuse_buffer import ReuseBuffer, ReuseBufferReport
from repro.core.value_profile import GlobalLoadValueProfiler, ValueProfileReport
from repro.harness import faults
from repro.harness.cache import ResultCache, default_cache_dir, source_digest
from repro.harness.failures import (
    FailureRecord,
    RecoveryPolicy,
    SuiteReport,
    Watchdog,
    WorkloadTimeout,
    classify_failure,
    note_failure,
    plan_next_action,
    resolve_policy,
)
from repro.obs import metrics as obs_metrics
from repro.obs import profiling as obs_profiling
from repro.obs import tracing as obs_tracing
from repro.obs.manifest import RunManifest, build_workload_manifest
from repro.sim.simulator import DEFAULT_ENGINE, RunResult, Simulator
from repro.traces.analyzer import TraceReuseAnalyzer, TraceReuseReport
from repro.workloads import WORKLOAD_ORDER, Workload, get_workload

logger = logging.getLogger("repro.harness.runner")

#: Engine the recovery loop degrades to when a faster engine traps.
REFERENCE_ENGINE = "interpreter"


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs for one suite run (defaults follow the paper's setup)."""

    #: Input-size multiplier (~150k dynamic instructions per unit).
    scale: int = 1
    #: Unique instances buffered per static instruction (paper: 2000).
    buffer_capacity: int = 2000
    #: Reuse buffer geometry (paper: 8K entries, 4-way).
    reuse_entries: int = 8192
    reuse_associativity: int = 4
    #: Analysis window (paper: skip 500M, run 1B — scaled down here).
    skip_instructions: int = 0
    limit_instructions: Optional[int] = None
    #: "primary" or "secondary" input set.
    input_kind: str = "primary"
    #: Execution engine: "predecoded" (fast) or "interpreter" (reference).
    engine: str = DEFAULT_ENGINE
    #: Trace reuse table geometry (analyzer-only; Table 10T).
    trace_capacity: int = 1024
    trace_ways: int = 4
    trace_max_len: int = 16
    #: Fault-injection plan (spec string, see :mod:`repro.harness.faults`).
    #: Part of the config — and therefore the cache key — on purpose:
    #: faulted runs can never serve or poison clean cache entries.
    fault_plan: Optional[str] = None

    def input_for(self, workload: Workload) -> bytes:
        if self.input_kind == "primary":
            return workload.primary_input(self.scale)
        if self.input_kind == "secondary":
            return workload.secondary_input(self.scale)
        raise ValueError(f"unknown input kind {self.input_kind!r}")


@dataclass
class WorkloadResult:
    """All per-workload reports needed by the tables and figures."""

    workload: Workload
    run: RunResult
    repetition: RepetitionReport
    global_analysis: GlobalAnalysisReport
    function_analysis: FunctionAnalysisReport
    local_analysis: LocalAnalysisReport
    reuse: ReuseBufferReport
    value_profile: ValueProfileReport
    trace_reuse: TraceReuseReport
    static_program_instructions: int = 0
    #: Provenance: engine, config, source digest, cache disposition, timing.
    manifest: Optional[RunManifest] = None


_CACHE: Dict[Tuple[str, SuiteConfig], WorkloadResult] = {}

# Disk layer, resolved lazily from $REPRO_CACHE_DIR unless set explicitly.
_DISK_CACHE: Optional[ResultCache] = None
_DISK_RESOLVED = False


def _disk_cache() -> Optional[ResultCache]:
    global _DISK_CACHE, _DISK_RESOLVED
    if not _DISK_RESOLVED:
        _DISK_RESOLVED = True
        directory = default_cache_dir()
        if directory is not None:
            _DISK_CACHE = ResultCache(directory)
    return _DISK_CACHE


def set_cache_dir(directory: Optional[str]) -> None:
    """Point the persistent result cache at ``directory`` (None disables)."""
    global _DISK_CACHE, _DISK_RESOLVED
    _DISK_RESOLVED = True
    _DISK_CACHE = ResultCache(directory) if directory is not None else None


def cache_directory() -> Optional[str]:
    """The active persistent-cache directory, or ``None`` when disabled."""
    disk = _disk_cache()
    return str(disk.directory) if disk is not None else None


def cached_result(
    workload: Workload, config: SuiteConfig
) -> Optional[WorkloadResult]:
    """Check both cache layers without simulating (disk hits are promoted)."""
    key = (workload.name, config)
    registry = obs_metrics.REGISTRY
    cached = _CACHE.get(key)
    if cached is not None:
        registry.inc("cache.hits")
        registry.inc("cache.memory_hits")
        if cached.manifest is not None:
            cached.manifest.cache = "memory-hit"
        return cached
    disk = _disk_cache()
    if disk is not None:
        loaded = disk.load(workload.name, config)
        if isinstance(loaded, WorkloadResult):
            registry.inc("cache.hits")
            if loaded.manifest is not None:
                loaded.manifest.cache = "disk-hit"
            _CACHE[key] = loaded
            return loaded
    return None


def install_result(
    result: WorkloadResult, config: SuiteConfig, to_disk: bool = True
) -> None:
    """Install an externally computed result into the cache layers.

    A failed disk store (full disk, permissions, an injected torn
    write) never loses the computed result: the in-memory layer already
    holds it, so the error is logged and counted, not raised.
    """
    _CACHE[(result.workload.name, config)] = result
    if to_disk:
        disk = _disk_cache()
        if disk is not None:
            try:
                disk.store(result.workload.name, config, result)
            except Exception as exc:
                obs_metrics.REGISTRY.inc("cache.disk.store_errors")
                logger.warning(
                    "persistent-cache store failed for %s (%s: %s)",
                    result.workload.name,
                    type(exc).__name__,
                    exc,
                )


def run_workload(
    workload: Workload,
    config: SuiteConfig = SuiteConfig(),
    profile: bool = False,
    deadline_s: Optional[float] = None,
) -> WorkloadResult:
    """Run one workload under the full analyzer stack (cached).

    ``profile=True`` wraps every analyzer in a per-hook timing proxy
    (:mod:`repro.obs.profiling`); the measured attribution lands in the
    metrics registry under ``profile.<Analyzer>.<hook>``.

    ``deadline_s`` arms a wall-clock watchdog that pauses the simulator
    at an instruction boundary and raises :class:`WorkloadTimeout`.
    """
    cached = cached_result(workload, config)
    if cached is not None:
        return cached
    with faults.armed_plan(config.fault_plan), faults.scope(workload=workload.name):
        return _compute_workload(workload, config, profile, deadline_s)


def _compute_workload(
    workload: Workload,
    config: SuiteConfig,
    profile: bool,
    deadline_s: Optional[float],
) -> WorkloadResult:
    registry = obs_metrics.REGISTRY
    registry.inc("cache.misses")
    started = time.perf_counter()
    timing: Dict[str, float] = {}

    with obs_tracing.span("assemble", workload=workload.name):
        if faults.armed():
            faults.check("asm.error", workload.name)
        program = workload.program()
    timing["assemble"] = time.perf_counter() - started

    tracker = RepetitionTracker(config.buffer_capacity)
    global_analyzer = GlobalSourceAnalyzer(tracker)
    function_analyzer = FunctionAnalyzer()
    local_analyzer = LocalAnalyzer(tracker)
    reuse = ReuseBuffer(config.reuse_entries, config.reuse_associativity)
    value_profiler = GlobalLoadValueProfiler()
    trace_analyzer = TraceReuseAnalyzer(
        config.trace_capacity, config.trace_ways, config.trace_max_len
    )
    # Tracker first: downstream analyzers read its per-step flag.
    analyzers = [
        tracker,
        global_analyzer,
        function_analyzer,
        local_analyzer,
        reuse,
        value_profiler,
        trace_analyzer,
    ]
    profiles = None
    if profile:
        analyzers, profiles = obs_profiling.wrap_all(analyzers)
    simulator = Simulator(
        program,
        input_data=config.input_for(workload),
        analyzers=analyzers,
        engine=config.engine,
    )
    phase_start = time.perf_counter()
    if deadline_s is not None:
        with Watchdog(simulator, deadline_s) as watchdog:
            run = simulator.run(
                limit=config.limit_instructions, skip=config.skip_instructions
            )
        if watchdog.fired and run.stop_reason == "paused":
            raise WorkloadTimeout(workload.name, deadline_s, config.engine)
    else:
        run = simulator.run(
            limit=config.limit_instructions, skip=config.skip_instructions
        )
    timing["simulate"] = time.perf_counter() - phase_start

    def _report(analyzer):
        with obs_tracing.span(
            "analyzer", analyzer=type(analyzer).__name__, workload=workload.name
        ):
            return analyzer.report()

    phase_start = time.perf_counter()
    with obs_tracing.span("report", workload=workload.name):
        result = WorkloadResult(
            workload=workload,
            run=run,
            repetition=_report(tracker),
            global_analysis=_report(global_analyzer),
            function_analysis=_report(function_analyzer),
            local_analysis=_report(local_analyzer),
            reuse=_report(reuse),
            value_profile=_report(value_profiler),
            trace_reuse=_report(trace_analyzer),
            static_program_instructions=program.static_instruction_count,
        )
    timing["report"] = time.perf_counter() - phase_start
    timing["total"] = time.perf_counter() - started

    result.manifest = build_workload_manifest(
        workload.name, config, source_digest(), timing
    )
    if profiles is not None:
        for analyzer_profile in profiles:
            analyzer_profile.publish(registry)
    registry.observe("suite.workload_seconds", timing["total"])
    install_result(result, config)
    return result


def _annotate_result(
    result: WorkloadResult,
    history: List[FailureRecord],
    attempts: int,
    degraded_from: Optional[str] = None,
) -> WorkloadResult:
    """A copy of ``result`` whose manifest records its recovery story.

    Copies (``dataclasses.replace``) so the cache layers keep the
    pristine object: a degraded interpreter result is a perfectly clean
    cache entry *for the interpreter config* — only the caller that
    asked for predecode sees the degradation flag.
    """
    if result.manifest is None:
        return result
    manifest = dataclasses.replace(
        result.manifest,
        degraded=degraded_from is not None,
        degraded_from=degraded_from,
        attempts=attempts,
        failures=[record.to_dict() for record in history],
    )
    return dataclasses.replace(result, manifest=manifest)


def run_workload_recovering(
    workload: Workload,
    config: SuiteConfig,
    policy: RecoveryPolicy,
    profile: bool = False,
) -> Tuple[Optional[WorkloadResult], List[FailureRecord]]:
    """Run one workload under the recovery policy (serial path).

    Returns ``(result, failed_attempts)``; ``result`` is ``None`` when
    every attempt failed (the last record in the history is terminal).
    With ``policy.strict`` the first failure re-raises instead.
    """
    registry = obs_metrics.REGISTRY
    history: List[FailureRecord] = []
    attempt = 1
    run_config = config
    degraded_from: Optional[str] = None
    while True:
        try:
            with faults.scope(workload=workload.name, attempt=attempt):
                result = run_workload(
                    workload, run_config, profile=profile, deadline_s=policy.timeout_s
                )
        except Exception as exc:
            record = classify_failure(
                exc, workload=workload.name, engine=run_config.engine, attempt=attempt
            )
            history.append(record)
            note_failure(record)
            if policy.strict:
                raise
            action = plan_next_action(
                record,
                engine=run_config.engine,
                degraded=degraded_from is not None,
                attempt=attempt,
                retries=policy.retries,
                # A serial timeout is deterministic: the same workload
                # would burn the same wall clock again.
                transient_timeouts=False,
            )
            if action == "degrade":
                registry.inc("degrade.engine_fallback")
                logger.warning(
                    "workload %s failed on engine %s (%s); degrading to %s",
                    workload.name,
                    run_config.engine,
                    record.message,
                    REFERENCE_ENGINE,
                )
                degraded_from = run_config.engine
                run_config = dataclasses.replace(run_config, engine=REFERENCE_ENGINE)
                attempt += 1
                continue
            if action == "retry":
                registry.inc("retry.attempts")
                time.sleep(policy.backoff_seconds(workload.name, attempt))
                attempt += 1
                continue
            return None, history
        if history or degraded_from is not None:
            result = _annotate_result(result, history, attempt, degraded_from)
        return result, history


def run_suite(
    config: SuiteConfig = SuiteConfig(),
    names: Optional[Iterable[str]] = None,
    jobs: int = 1,
    profile: bool = False,
    policy: Optional[RecoveryPolicy] = None,
    strict: Optional[bool] = None,
    retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> SuiteReport:
    """Run the whole suite (or ``names``) and return results in order.

    ``jobs > 1`` fans uncached workloads out over a process pool; worker
    metrics snapshots are merged into this process's registry, so the
    aggregate telemetry is the same as a serial run's.

    The return value is a :class:`SuiteReport` — a dict of surviving
    ``WorkloadResult`` in suite order, plus ``failures``/``history``.
    Under the default strict policy the first error still raises, so
    existing callers see exactly the historical behaviour.
    """
    if not isinstance(jobs, int) or jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    effective = resolve_policy(policy, strict, retries, timeout_s)
    if jobs > 1:
        from repro.harness.parallel import run_suite_parallel

        return run_suite_parallel(
            config, selected, jobs=jobs, profile=profile, policy=effective
        )
    report = SuiteReport(config=config)
    registry = obs_metrics.REGISTRY
    with faults.armed_plan(config.fault_plan):
        for name in selected:
            result, failed = run_workload_recovering(
                get_workload(name), config, effective, profile=profile
            )
            report.history.extend(failed)
            if result is not None:
                report[name] = result
            else:
                report.failures[name] = failed[-1]
                registry.inc("suite.partial_failures")
    return report


def clear_cache() -> None:
    """Drop cached results from both layers (tests use this for isolation)."""
    _CACHE.clear()
    disk = _disk_cache()
    if disk is not None:
        disk.clear()
