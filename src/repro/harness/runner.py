"""Suite runner: execute workloads under the full analysis stack.

One simulated run per (workload, configuration) feeds *all* the paper's
tables and figures, so results are cached at two layers:

* an in-process dict (the fifteen experiment reproductions and the
  test-suite fixtures share simulations instead of re-running them), and
* an optional on-disk :class:`~repro.harness.cache.ResultCache` so
  repeated CLI / experiment invocations skip simulation altogether.
  Enable it with :func:`set_cache_dir` or the ``REPRO_CACHE_DIR``
  environment variable; entries self-invalidate when the source tree
  changes (see :mod:`repro.harness.cache`).

``run_suite(..., jobs=N)`` fans the suite out over a process pool
(:mod:`repro.harness.parallel`); both cache layers are consulted before
any worker is spawned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.function_analysis import FunctionAnalysisReport, FunctionAnalyzer
from repro.core.global_analysis import GlobalAnalysisReport, GlobalSourceAnalyzer
from repro.core.local_analysis import LocalAnalysisReport, LocalAnalyzer
from repro.core.repetition import RepetitionReport, RepetitionTracker
from repro.core.reuse_buffer import ReuseBuffer, ReuseBufferReport
from repro.core.value_profile import GlobalLoadValueProfiler, ValueProfileReport
from repro.harness.cache import ResultCache, default_cache_dir
from repro.sim.simulator import DEFAULT_ENGINE, RunResult, Simulator
from repro.workloads import WORKLOAD_ORDER, Workload, get_workload


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs for one suite run (defaults follow the paper's setup)."""

    #: Input-size multiplier (~150k dynamic instructions per unit).
    scale: int = 1
    #: Unique instances buffered per static instruction (paper: 2000).
    buffer_capacity: int = 2000
    #: Reuse buffer geometry (paper: 8K entries, 4-way).
    reuse_entries: int = 8192
    reuse_associativity: int = 4
    #: Analysis window (paper: skip 500M, run 1B — scaled down here).
    skip_instructions: int = 0
    limit_instructions: Optional[int] = None
    #: "primary" or "secondary" input set.
    input_kind: str = "primary"
    #: Execution engine: "predecoded" (fast) or "interpreter" (reference).
    engine: str = DEFAULT_ENGINE

    def input_for(self, workload: Workload) -> bytes:
        if self.input_kind == "primary":
            return workload.primary_input(self.scale)
        if self.input_kind == "secondary":
            return workload.secondary_input(self.scale)
        raise ValueError(f"unknown input kind {self.input_kind!r}")


@dataclass
class WorkloadResult:
    """All per-workload reports needed by the tables and figures."""

    workload: Workload
    run: RunResult
    repetition: RepetitionReport
    global_analysis: GlobalAnalysisReport
    function_analysis: FunctionAnalysisReport
    local_analysis: LocalAnalysisReport
    reuse: ReuseBufferReport
    value_profile: ValueProfileReport
    static_program_instructions: int = 0


_CACHE: Dict[Tuple[str, SuiteConfig], WorkloadResult] = {}

# Disk layer, resolved lazily from $REPRO_CACHE_DIR unless set explicitly.
_DISK_CACHE: Optional[ResultCache] = None
_DISK_RESOLVED = False


def _disk_cache() -> Optional[ResultCache]:
    global _DISK_CACHE, _DISK_RESOLVED
    if not _DISK_RESOLVED:
        _DISK_RESOLVED = True
        directory = default_cache_dir()
        if directory is not None:
            _DISK_CACHE = ResultCache(directory)
    return _DISK_CACHE


def set_cache_dir(directory: Optional[str]) -> None:
    """Point the persistent result cache at ``directory`` (None disables)."""
    global _DISK_CACHE, _DISK_RESOLVED
    _DISK_RESOLVED = True
    _DISK_CACHE = ResultCache(directory) if directory is not None else None


def cache_directory() -> Optional[str]:
    """The active persistent-cache directory, or ``None`` when disabled."""
    disk = _disk_cache()
    return str(disk.directory) if disk is not None else None


def cached_result(
    workload: Workload, config: SuiteConfig
) -> Optional[WorkloadResult]:
    """Check both cache layers without simulating (disk hits are promoted)."""
    key = (workload.name, config)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    disk = _disk_cache()
    if disk is not None:
        loaded = disk.load(workload.name, config)
        if isinstance(loaded, WorkloadResult):
            _CACHE[key] = loaded
            return loaded
    return None


def install_result(
    result: WorkloadResult, config: SuiteConfig, to_disk: bool = True
) -> None:
    """Install an externally computed result into the cache layers."""
    _CACHE[(result.workload.name, config)] = result
    if to_disk:
        disk = _disk_cache()
        if disk is not None:
            disk.store(result.workload.name, config, result)


def run_workload(workload: Workload, config: SuiteConfig = SuiteConfig()) -> WorkloadResult:
    """Run one workload under the full analyzer stack (cached)."""
    cached = cached_result(workload, config)
    if cached is not None:
        return cached

    program = workload.program()
    tracker = RepetitionTracker(config.buffer_capacity)
    global_analyzer = GlobalSourceAnalyzer(tracker)
    function_analyzer = FunctionAnalyzer()
    local_analyzer = LocalAnalyzer(tracker)
    reuse = ReuseBuffer(config.reuse_entries, config.reuse_associativity)
    value_profiler = GlobalLoadValueProfiler()
    simulator = Simulator(
        program,
        input_data=config.input_for(workload),
        # Tracker first: downstream analyzers read its per-step flag.
        analyzers=[
            tracker,
            global_analyzer,
            function_analyzer,
            local_analyzer,
            reuse,
            value_profiler,
        ],
        engine=config.engine,
    )
    run = simulator.run(limit=config.limit_instructions, skip=config.skip_instructions)
    result = WorkloadResult(
        workload=workload,
        run=run,
        repetition=tracker.report(),
        global_analysis=global_analyzer.report(),
        function_analysis=function_analyzer.report(),
        local_analysis=local_analyzer.report(),
        reuse=reuse.report(),
        value_profile=value_profiler.report(),
        static_program_instructions=program.static_instruction_count,
    )
    install_result(result, config)
    return result


def run_suite(
    config: SuiteConfig = SuiteConfig(),
    names: Optional[Iterable[str]] = None,
    jobs: int = 1,
) -> Dict[str, WorkloadResult]:
    """Run the whole suite (or ``names``) and return results in order.

    ``jobs > 1`` fans uncached workloads out over a process pool.
    """
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    if jobs > 1:
        from repro.harness.parallel import run_suite_parallel

        return run_suite_parallel(config, selected, jobs=jobs)
    return {name: run_workload(get_workload(name), config) for name in selected}


def clear_cache() -> None:
    """Drop cached results from both layers (tests use this for isolation)."""
    _CACHE.clear()
    disk = _disk_cache()
    if disk is not None:
        disk.clear()
