"""Suite runner: execute workloads under the full analysis stack.

One simulated run per (workload, configuration) feeds *all* the paper's
tables and figures, so results are cached at module level — the fifteen
experiment reproductions and the test-suite fixtures share simulations
instead of re-running them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.function_analysis import FunctionAnalysisReport, FunctionAnalyzer
from repro.core.global_analysis import GlobalAnalysisReport, GlobalSourceAnalyzer
from repro.core.local_analysis import LocalAnalysisReport, LocalAnalyzer
from repro.core.repetition import RepetitionReport, RepetitionTracker
from repro.core.reuse_buffer import ReuseBuffer, ReuseBufferReport
from repro.core.value_profile import GlobalLoadValueProfiler, ValueProfileReport
from repro.sim.simulator import RunResult, Simulator
from repro.workloads import WORKLOAD_ORDER, Workload, get_workload


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs for one suite run (defaults follow the paper's setup)."""

    #: Input-size multiplier (~150k dynamic instructions per unit).
    scale: int = 1
    #: Unique instances buffered per static instruction (paper: 2000).
    buffer_capacity: int = 2000
    #: Reuse buffer geometry (paper: 8K entries, 4-way).
    reuse_entries: int = 8192
    reuse_associativity: int = 4
    #: Analysis window (paper: skip 500M, run 1B — scaled down here).
    skip_instructions: int = 0
    limit_instructions: Optional[int] = None
    #: "primary" or "secondary" input set.
    input_kind: str = "primary"

    def input_for(self, workload: Workload) -> bytes:
        if self.input_kind == "primary":
            return workload.primary_input(self.scale)
        if self.input_kind == "secondary":
            return workload.secondary_input(self.scale)
        raise ValueError(f"unknown input kind {self.input_kind!r}")


@dataclass
class WorkloadResult:
    """All per-workload reports needed by the tables and figures."""

    workload: Workload
    run: RunResult
    repetition: RepetitionReport
    global_analysis: GlobalAnalysisReport
    function_analysis: FunctionAnalysisReport
    local_analysis: LocalAnalysisReport
    reuse: ReuseBufferReport
    value_profile: ValueProfileReport
    static_program_instructions: int = 0


_CACHE: Dict[Tuple[str, SuiteConfig], WorkloadResult] = {}


def run_workload(workload: Workload, config: SuiteConfig = SuiteConfig()) -> WorkloadResult:
    """Run one workload under the full analyzer stack (cached)."""
    key = (workload.name, config)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    program = workload.program()
    tracker = RepetitionTracker(config.buffer_capacity)
    global_analyzer = GlobalSourceAnalyzer(tracker)
    function_analyzer = FunctionAnalyzer()
    local_analyzer = LocalAnalyzer(tracker)
    reuse = ReuseBuffer(config.reuse_entries, config.reuse_associativity)
    value_profiler = GlobalLoadValueProfiler()
    simulator = Simulator(
        program,
        input_data=config.input_for(workload),
        # Tracker first: downstream analyzers read its per-step flag.
        analyzers=[
            tracker,
            global_analyzer,
            function_analyzer,
            local_analyzer,
            reuse,
            value_profiler,
        ],
    )
    run = simulator.run(limit=config.limit_instructions, skip=config.skip_instructions)
    result = WorkloadResult(
        workload=workload,
        run=run,
        repetition=tracker.report(),
        global_analysis=global_analyzer.report(),
        function_analysis=function_analyzer.report(),
        local_analysis=local_analyzer.report(),
        reuse=reuse.report(),
        value_profile=value_profiler.report(),
        static_program_instructions=program.static_instruction_count,
    )
    _CACHE[key] = result
    return result


def run_suite(
    config: SuiteConfig = SuiteConfig(), names: Optional[Iterable[str]] = None
) -> Dict[str, WorkloadResult]:
    """Run the whole suite (or ``names``) and return results in order."""
    selected = tuple(names) if names is not None else WORKLOAD_ORDER
    return {name: run_workload(get_workload(name), config) for name in selected}


def clear_cache() -> None:
    """Drop cached results (tests use this for isolation where needed)."""
    _CACHE.clear()
