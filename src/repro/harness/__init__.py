"""Experiment harness: suite runner, per-table/figure registry, CLI."""

from repro.harness.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS, Experiment
from repro.harness.parallel import run_suite_parallel
from repro.harness.runner import (
    SuiteConfig,
    WorkloadResult,
    cache_directory,
    clear_cache,
    run_suite,
    run_workload,
    set_cache_dir,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "EXPERIMENTS",
    "EXPERIMENT_ORDER",
    "Experiment",
    "ResultCache",
    "SuiteConfig",
    "WorkloadResult",
    "cache_directory",
    "clear_cache",
    "run_suite",
    "run_suite_parallel",
    "run_workload",
    "set_cache_dir",
]
