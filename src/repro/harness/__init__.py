"""Experiment harness: suite runner, per-table/figure registry, CLI."""

# faults/failures first: cache and runner import them at module load,
# so they must be fully initialized before the rest of the package.
from repro.harness.faults import FaultInjected, FaultPlan
from repro.harness.failures import (
    FailureRecord,
    RecoveryPolicy,
    SuiteReport,
    WorkloadTimeout,
    result_digest,
)
from repro.harness.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS, Experiment
from repro.harness.parallel import run_suite_parallel
from repro.harness.runner import (
    SuiteConfig,
    WorkloadResult,
    cache_directory,
    clear_cache,
    run_suite,
    run_workload,
    set_cache_dir,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "EXPERIMENTS",
    "EXPERIMENT_ORDER",
    "Experiment",
    "FailureRecord",
    "FaultInjected",
    "FaultPlan",
    "RecoveryPolicy",
    "ResultCache",
    "SuiteConfig",
    "SuiteReport",
    "WorkloadResult",
    "WorkloadTimeout",
    "cache_directory",
    "clear_cache",
    "result_digest",
    "run_suite",
    "run_suite_parallel",
    "run_workload",
    "set_cache_dir",
]
