"""Experiment harness: suite runner, per-table/figure registry, CLI."""

from repro.harness.experiments import EXPERIMENT_ORDER, EXPERIMENTS, Experiment
from repro.harness.runner import (
    SuiteConfig,
    WorkloadResult,
    clear_cache,
    run_suite,
    run_workload,
)

__all__ = [
    "EXPERIMENTS",
    "EXPERIMENT_ORDER",
    "Experiment",
    "SuiteConfig",
    "WorkloadResult",
    "clear_cache",
    "run_suite",
    "run_workload",
]
