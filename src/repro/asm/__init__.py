"""Assembler, linker-lite, and program image for the MIPS-I-like ISA.

The public surface is :func:`repro.asm.assemble` (source text to a
:class:`~repro.asm.program.Program`) plus the :class:`Program` /
:class:`FunctionInfo` image types the simulator and analyses consume.
"""

from repro.asm.assembler import Assembler, assemble
from repro.asm.errors import AsmError
from repro.asm.program import FunctionInfo, Program

__all__ = ["AsmError", "Assembler", "FunctionInfo", "Program", "assemble"]
