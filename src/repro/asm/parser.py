"""Parser for assembly source: lines -> labeled statements with operands."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.asm.errors import AsmError
from repro.asm.lexer import Token, iter_logical_lines, tokenize_line
from repro.isa.registers import is_register_name, register_index


@dataclass(frozen=True)
class RegOp:
    """A register operand."""

    index: int


@dataclass(frozen=True)
class ImmOp:
    """An immediate operand (already a plain integer)."""

    value: int


@dataclass(frozen=True)
class SymOp:
    """A symbol reference, optionally with an additive offset."""

    name: str
    offset: int = 0


@dataclass(frozen=True)
class MemOp:
    """A memory operand ``offset(base)``."""

    offset: int
    base: int


@dataclass(frozen=True)
class MemSymOp:
    """A memory operand ``symbol(base)`` — gp-relative global access."""

    sym: SymOp
    base: int


Operand = Union[RegOp, ImmOp, SymOp, MemOp, MemSymOp]


@dataclass
class LabelStmt:
    name: str
    lineno: int


@dataclass
class DirectiveStmt:
    name: str
    args: List[Token]
    lineno: int


@dataclass
class InstrStmt:
    mnemonic: str
    operands: List[Operand]
    lineno: int


Statement = Union[LabelStmt, DirectiveStmt, InstrStmt]


class _LineParser:
    """Parses the token list of a single line."""

    def __init__(self, tokens: List[Token], lineno: int, filename: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.lineno = lineno
        self.filename = filename

    def error(self, message: str) -> AsmError:
        return AsmError(message, self.lineno, self.filename)

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of line")
        self.pos += 1
        return token

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == text:
            self.pos += 1
            return True
        return False

    def expect_punct(self, text: str) -> None:
        if not self.accept_punct(text):
            raise self.error(f"expected {text!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def parse_operand(self) -> Operand:
        token = self.next()
        if token.kind == "reg":
            try:
                return RegOp(register_index(token.text))
            except KeyError:
                raise self.error(f"unknown register {token.text!r}") from None
        if token.kind == "num":
            value = int(token.value)  # type: ignore[arg-type]
            if self.accept_punct("("):
                base = self._parse_base_register()
                return MemOp(value, base)
            return ImmOp(value)
        if token.kind == "punct" and token.text == "(":
            base = self._parse_base_register()
            return MemOp(0, base)
        if token.kind == "ident":
            offset = 0
            following = self.peek()
            if self.accept_punct("+"):
                offset = int(self.next().value)  # type: ignore[arg-type]
            elif self.accept_punct("-"):
                offset = -int(self.next().value)  # type: ignore[arg-type]
            elif (
                following is not None
                and following.kind == "num"
                and following.text[0] in "+-"
            ):
                # The lexer folds the sign into the number: "sym+8".
                self.pos += 1
                offset = int(following.value)  # type: ignore[arg-type]
            sym = SymOp(token.text, offset)
            if self.accept_punct("("):
                base = self._parse_base_register()
                return MemSymOp(sym, base)
            return sym
        raise self.error(f"bad operand {token.text!r}")

    def _parse_base_register(self) -> int:
        token = self.next()
        if token.kind != "reg" or not is_register_name(token.text):
            raise self.error("expected base register")
        self.expect_punct(")")
        return register_index(token.text)


def parse_source(source: str, filename: str = "<asm>") -> List[Statement]:
    """Parse assembly source into a flat statement list."""
    statements: List[Statement] = []
    for lineno, raw in iter_logical_lines(source):
        tokens = tokenize_line(raw, lineno, filename)
        if not tokens:
            continue
        parser = _LineParser(tokens, lineno, filename)
        # Leading labels: ident ':' (may repeat; instruction may follow).
        while True:
            token = parser.peek()
            if (
                token is not None
                and token.kind == "ident"
                and not token.text.startswith(".")
                and parser.pos + 1 < len(tokens)
                and tokens[parser.pos + 1].kind == "punct"
                and tokens[parser.pos + 1].text == ":"
            ):
                parser.pos += 2
                statements.append(LabelStmt(token.text, lineno))
            else:
                break
        if parser.at_end():
            continue
        head = parser.next()
        if head.kind != "ident":
            raise parser.error(f"expected mnemonic or directive, got {head.text!r}")
        if head.text.startswith("."):
            statements.append(DirectiveStmt(head.text, tokens[parser.pos :], lineno))
            continue
        operands: List[Operand] = []
        if not parser.at_end():
            operands.append(parser.parse_operand())
            while parser.accept_punct(","):
                operands.append(parser.parse_operand())
        if not parser.at_end():
            raise parser.error("trailing junk on line")
        statements.append(InstrStmt(head.text.lower(), operands, lineno))
    return statements
