"""Line-oriented tokenizer for assembly source.

Assembly is simple enough that each line is tokenized independently:
labels, a mnemonic or directive, then a comma-separated operand list.
Comments start with ``#`` and run to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.asm.errors import AsmError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<hex>[-+]?0[xX][0-9a-fA-F]+)
  | (?P<num>[-+]?\d+)
  | (?P<reg>\$[a-zA-Z0-9]+)
  | (?P<ident>\.?[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<punct>[():,+-])
    """,
    re.VERBOSE,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


@dataclass(frozen=True)
class Token:
    kind: str  # string | char | num | reg | ident | punct
    text: str
    value: object = None


def unescape(body: str) -> str:
    """Process backslash escapes inside a string or char literal body."""
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize_line(line: str, lineno: int = 0, filename: str = "<asm>") -> List[Token]:
    """Tokenize one source line (comment stripped), raising on bad input."""
    comment = line.find("#")
    if comment >= 0:
        line = line[:comment]
    tokens: List[Token] = []
    pos = 0
    while pos < len(line):
        match = _TOKEN_RE.match(line, pos)
        if match is None:
            raise AsmError(f"unexpected character {line[pos]!r}", lineno, filename)
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "ws":
            continue
        if kind == "string":
            tokens.append(Token("string", text, unescape(text[1:-1])))
        elif kind == "char":
            tokens.append(Token("num", text, ord(unescape(text[1:-1]))))
        elif kind in ("hex", "num"):
            tokens.append(Token("num", text, int(text, 0)))
        elif kind == "reg":
            tokens.append(Token("reg", text))
        elif kind == "ident":
            tokens.append(Token("ident", text))
        else:
            tokens.append(Token("punct", text))
    return tokens


def iter_logical_lines(source: str) -> Iterator["tuple[int, str]"]:
    """Yield ``(lineno, text)`` for each non-blank source line."""
    for lineno, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.strip()
        if stripped:
            yield lineno, raw
