"""Pseudo-instruction expansion.

Pseudo-instructions are expanded into real MIPS-I-like instructions at
assembly time, exactly the way a MIPS assembler does: ``li`` with a large
constant becomes a ``lui``/``ori`` pair (an instruction-set-induced source
of repetition the paper highlights in Section 6), ``la`` of a symbol near
``$gp`` becomes a single ``addiu $rt, $gp, off`` (feeding the paper's
"global address calculation" category), synthesized comparisons use the
assembler temporary ``$at``.

Expansion is split into two stages so the assembler can lay out the text
segment before all symbols are resolved:

* :func:`expansion_length` — how many real instructions a statement
  occupies (depends only on immediate values and on whether a ``la``
  target is a gp-reachable data symbol).
* :func:`expand` — produce :class:`Proto` instructions whose symbolic
  parts (branch targets, ``%hi``/``%lo`` halves) are resolved later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.asm.errors import AsmError
from repro.asm.parser import ImmOp, MemOp, Operand, RegOp, SymOp
from repro.isa.bits import fits_s16, fits_u16, to_u32
from repro.isa.convention import GP_VALUE
from repro.isa.registers import AT, GP, RA, ZERO

#: Relocation kinds for immediates that reference a symbol.
HI16 = "hi16"
LO16 = "lo16"
GPREL = "gprel"


@dataclass(frozen=True)
class SymImm:
    """An immediate that is a relocation against a symbol."""

    kind: str  # HI16 | LO16 | GPREL
    sym: SymOp


@dataclass
class Proto:
    """A real instruction whose symbolic operands await resolution."""

    name: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: Union[int, SymImm] = 0
    shamt: int = 0
    target: Union[int, SymOp, None] = None


#: ``DataSymbolLookup(name) -> address or None`` — returns the final
#: address of a *data-segment* symbol, or None for text/unknown symbols.
DataSymbolLookup = Callable[[str], Optional[int]]

PSEUDO_MNEMONICS = frozenset(
    {
        "li", "la", "move", "b", "beqz", "bnez", "blt", "bge", "bgt", "ble",
        "bltu", "bgeu", "neg", "not", "mul", "rem", "seq", "sne", "sge",
        "sgt", "sle",
    }
)

_BRANCH_SYNTH = {
    # mnemonic: (swap operands for slt, branch-on-nonzero)
    "blt": (False, True),
    "bge": (False, False),
    "bgt": (True, True),
    "ble": (True, False),
}

_SET_SYNTH = frozenset({"seq", "sne", "sge", "sle"})


def _reg(operand: Operand, lineno: int) -> int:
    if not isinstance(operand, RegOp):
        raise AsmError("expected register operand", lineno)
    return operand.index


def _imm(operand: Operand, lineno: int) -> int:
    if not isinstance(operand, ImmOp):
        raise AsmError("expected immediate operand", lineno)
    return operand.value


def _sym(operand: Operand, lineno: int) -> SymOp:
    if not isinstance(operand, SymOp):
        raise AsmError("expected symbol operand", lineno)
    return operand


def _gp_reachable(address: int) -> bool:
    return fits_s16(address - GP_VALUE)


def _li_length(value: int) -> int:
    return 1 if (fits_s16(value) or fits_u16(value)) else 2


def _la_length(sym: SymOp, data_lookup: DataSymbolLookup) -> int:
    address = data_lookup(sym.name)
    if address is not None and _gp_reachable(address + sym.offset):
        return 1
    return 2


def expansion_length(
    mnemonic: str, operands: Sequence[Operand], lineno: int, data_lookup: DataSymbolLookup
) -> int:
    """Number of real instructions this (possibly pseudo) statement emits."""
    if mnemonic == "li":
        return _li_length(_imm(operands[1], lineno)) if len(operands) == 2 else 1
    if mnemonic == "la":
        return _la_length(_sym(operands[1], lineno), data_lookup) if len(operands) == 2 else 1
    if mnemonic in _BRANCH_SYNTH or mnemonic in ("bltu", "bgeu"):
        if len(operands) == 3 and isinstance(operands[1], ImmOp):
            # blt/bge (and unsigned) use slti directly; bgt/ble must
            # materialize the constant first.
            return 2 if mnemonic in ("blt", "bge", "bltu", "bgeu") else 3
        return 2
    if mnemonic in ("mul", "rem"):
        return 2
    if mnemonic == "div" and len(operands) == 3:
        return 2
    if mnemonic == "sgt":
        return 1
    if mnemonic in ("seq", "sne", "sge", "sle"):
        return 2
    return 1


def _expand_li(rt: int, value: int) -> List[Proto]:
    if fits_s16(value):
        return [Proto("addiu", rt=rt, rs=ZERO, imm=value)]
    if fits_u16(value):
        return [Proto("ori", rt=rt, rs=ZERO, imm=value)]
    unsigned = to_u32(value)
    return [
        Proto("lui", rt=rt, imm=(unsigned >> 16) & 0xFFFF),
        Proto("ori", rt=rt, rs=rt, imm=unsigned & 0xFFFF),
    ]


def _expand_la(rt: int, sym: SymOp, data_lookup: DataSymbolLookup) -> List[Proto]:
    address = data_lookup(sym.name)
    if address is not None and _gp_reachable(address + sym.offset):
        return [Proto("addiu", rt=rt, rs=GP, imm=SymImm(GPREL, sym))]
    return [
        Proto("lui", rt=rt, imm=SymImm(HI16, sym)),
        Proto("ori", rt=rt, rs=rt, imm=SymImm(LO16, sym)),
    ]


def _expand_set(kind: str, rd: int, rs: int, rt: int) -> List[Proto]:
    if kind == "seq":
        return [
            Proto("subu", rd=rd, rs=rs, rt=rt),
            Proto("sltiu", rt=rd, rs=rd, imm=1),
        ]
    if kind == "sne":
        return [
            Proto("subu", rd=rd, rs=rs, rt=rt),
            Proto("sltu", rd=rd, rs=ZERO, rt=rd),
        ]
    if kind == "sge":
        return [
            Proto("slt", rd=rd, rs=rs, rt=rt),
            Proto("xori", rt=rd, rs=rd, imm=1),
        ]
    if kind == "sle":
        return [
            Proto("slt", rd=rd, rs=rt, rt=rs),
            Proto("xori", rt=rd, rs=rd, imm=1),
        ]
    raise AssertionError(kind)


def expand(
    mnemonic: str,
    operands: Sequence[Operand],
    lineno: int,
    data_lookup: DataSymbolLookup,
) -> List[Proto]:
    """Expand one statement into real :class:`Proto` instructions.

    Non-pseudo mnemonics are returned as a single :class:`Proto` built by
    the assembler's encoder, so this function only handles the pseudo set
    plus three-operand ``div``.
    """
    if mnemonic == "li":
        return _expand_li(_reg(operands[0], lineno), _imm(operands[1], lineno))
    if mnemonic == "la":
        return _expand_la(_reg(operands[0], lineno), _sym(operands[1], lineno), data_lookup)
    if mnemonic == "move":
        return [Proto("addu", rd=_reg(operands[0], lineno), rs=_reg(operands[1], lineno), rt=ZERO)]
    if mnemonic == "b":
        return [Proto("beq", rs=ZERO, rt=ZERO, target=_sym(operands[0], lineno))]
    if mnemonic == "beqz":
        return [Proto("beq", rs=_reg(operands[0], lineno), rt=ZERO, target=_sym(operands[1], lineno))]
    if mnemonic == "bnez":
        return [Proto("bne", rs=_reg(operands[0], lineno), rt=ZERO, target=_sym(operands[1], lineno))]
    if mnemonic in _BRANCH_SYNTH:
        swap, on_nonzero = _BRANCH_SYNTH[mnemonic]
        branch = "bne" if on_nonzero else "beq"
        rs = _reg(operands[0], lineno)
        label = _sym(operands[2], lineno)
        if isinstance(operands[1], ImmOp):
            value = operands[1].value
            if not fits_s16(value):
                raise AsmError("branch immediate out of 16-bit range", lineno)
            if not swap:  # blt / bge: rs < imm directly via slti
                return [
                    Proto("slti", rt=AT, rs=rs, imm=value),
                    Proto(branch, rs=AT, rt=ZERO, target=label),
                ]
            # bgt / ble: need imm < rs, so materialize the constant.
            return [
                Proto("addiu", rt=AT, rs=ZERO, imm=value),
                Proto("slt", rd=AT, rs=AT, rt=rs),
                Proto(branch, rs=AT, rt=ZERO, target=label),
            ]
        rt = _reg(operands[1], lineno)
        if swap:
            rs, rt = rt, rs
        return [
            Proto("slt", rd=AT, rs=rs, rt=rt),
            Proto(branch, rs=AT, rt=ZERO, target=label),
        ]
    if mnemonic in ("bltu", "bgeu"):
        branch = "bne" if mnemonic == "bltu" else "beq"
        rs = _reg(operands[0], lineno)
        label = _sym(operands[2], lineno)
        if isinstance(operands[1], ImmOp):
            return [
                Proto("sltiu", rt=AT, rs=rs, imm=_imm(operands[1], lineno)),
                Proto(branch, rs=AT, rt=ZERO, target=label),
            ]
        return [
            Proto("sltu", rd=AT, rs=rs, rt=_reg(operands[1], lineno)),
            Proto(branch, rs=AT, rt=ZERO, target=label),
        ]
    if mnemonic == "neg":
        return [Proto("subu", rd=_reg(operands[0], lineno), rs=ZERO, rt=_reg(operands[1], lineno))]
    if mnemonic == "not":
        return [Proto("nor", rd=_reg(operands[0], lineno), rs=_reg(operands[1], lineno), rt=ZERO)]
    if mnemonic == "mul":
        rd, rs, rt = (_reg(op, lineno) for op in operands)
        return [Proto("mult", rs=rs, rt=rt), Proto("mflo", rd=rd)]
    if mnemonic == "rem":
        rd, rs, rt = (_reg(op, lineno) for op in operands)
        return [Proto("div", rs=rs, rt=rt), Proto("mfhi", rd=rd)]
    if mnemonic == "div" and len(operands) == 3:
        rd, rs, rt = (_reg(op, lineno) for op in operands)
        return [Proto("div", rs=rs, rt=rt), Proto("mflo", rd=rd)]
    if mnemonic == "sgt":
        rd, rs, rt = (_reg(op, lineno) for op in operands)
        return [Proto("slt", rd=rd, rs=rt, rt=rs)]
    if mnemonic in _SET_SYNTH:
        rd, rs, rt = (_reg(op, lineno) for op in operands)
        return _expand_set(mnemonic, rd, rs, rt)
    raise AsmError(f"unknown pseudo-instruction {mnemonic!r}", lineno)
