"""Assembler error types."""

from __future__ import annotations


class AsmError(Exception):
    """An error in assembly source, with location information."""

    def __init__(self, message: str, line: int = 0, filename: str = "<asm>") -> None:
        self.message = message
        self.line = line
        self.filename = filename
        super().__init__(f"{filename}:{line}: {message}" if line else message)
