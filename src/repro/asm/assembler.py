"""Two-pass assembler: source text -> :class:`~repro.asm.program.Program`.

Pass structure (data-first, so ``la`` can choose gp-relative forms):

1. parse all statements and partition them into data/text streams;
2. lay out the data segment, assigning every data symbol its address;
3. lay out the text segment — pseudo-instruction expansion lengths are
   computed here, so text labels get final addresses;
4. encode: expand pseudos, build :class:`Instruction` objects, resolve
   symbols and relocations, apply data-word fixups.

Function boundaries come from ``.ent <name>, <argc>`` / ``.end <name>``
directive pairs emitted by the MiniC compiler (or written by hand); they
feed the function-level and local analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.asm.errors import AsmError
from repro.asm.lexer import Token
from repro.asm.parser import (
    DirectiveStmt,
    ImmOp,
    InstrStmt,
    LabelStmt,
    MemOp,
    MemSymOp,
    Operand,
    RegOp,
    Statement,
    SymOp,
    parse_source,
)
from repro.asm.program import FunctionInfo, Program
from repro.asm.pseudo import (
    GPREL,
    HI16,
    LO16,
    PSEUDO_MNEMONICS,
    Proto,
    SymImm,
    expand,
    expansion_length,
)
from repro.isa.bits import fits_s16, fits_u16, to_u32
from repro.isa.convention import DATA_BASE, GP_VALUE, TEXT_BASE
from repro.isa.instructions import Format, Instruction, OPCODES
from repro.isa.registers import GP as GP_REG, RA


@dataclass
class _TextItem:
    stmt: InstrStmt
    address: int
    length: int


class Assembler:
    """Assembles one translation unit into a runnable program image."""

    def __init__(self, filename: str = "<asm>") -> None:
        self.filename = filename

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        statements = parse_source(source, self.filename)
        data_stmts, text_stmts = self._partition(statements)

        data, data_init, data_symbols, fixups = self._layout_data(data_stmts)
        text_symbols, functions, items = self._layout_text(text_stmts, data_symbols)

        symbols: Dict[str, int] = dict(data_symbols)
        for name, address in text_symbols.items():
            if name in symbols:
                raise AsmError(f"duplicate symbol {name!r}", filename=self.filename)
            symbols[name] = address

        instructions = self._encode(items, symbols, data_symbols)
        self._apply_fixups(data, fixups, symbols)

        entry = symbols.get("__start", symbols.get("main"))
        if entry is None:
            raise AsmError("no entry point: define 'main' or '__start'", filename=self.filename)
        return Program(
            text=instructions,
            data=data,
            data_initialized=data_init,
            symbols=symbols,
            functions=functions,
            entry=entry,
        )

    # ------------------------------------------------------------------
    # Pass 1: partition into segments
    # ------------------------------------------------------------------

    def _partition(
        self, statements: Sequence[Statement]
    ) -> Tuple[List[Statement], List[Statement]]:
        data_stmts: List[Statement] = []
        text_stmts: List[Statement] = []
        current = text_stmts
        for stmt in statements:
            if isinstance(stmt, DirectiveStmt) and stmt.name == ".data":
                current = data_stmts
            elif isinstance(stmt, DirectiveStmt) and stmt.name == ".text":
                current = text_stmts
            else:
                current.append(stmt)
        return data_stmts, text_stmts

    # ------------------------------------------------------------------
    # Pass 2: data layout
    # ------------------------------------------------------------------

    def _directive_values(self, args: List[Token], lineno: int) -> List[Union[int, str]]:
        """Parse a comma-separated list of integers / symbols / strings."""
        values: List[Union[int, str]] = []
        i = 0
        while i < len(args):
            token = args[i]
            if token.kind == "num":
                values.append(int(token.value))  # type: ignore[arg-type]
            elif token.kind == "string":
                values.append(str(token.value))
            elif token.kind == "ident":
                values.append(token.text)
            elif token.kind == "punct" and token.text == "-" and i + 1 < len(args):
                i += 1
                values.append(-int(args[i].value))  # type: ignore[arg-type]
            elif token.kind == "punct" and token.text == ",":
                i += 1
                continue
            else:
                raise AsmError(f"bad directive argument {token.text!r}", lineno, self.filename)
            i += 1
        return values

    def _layout_data(
        self, statements: Sequence[Statement]
    ) -> Tuple[bytearray, bytearray, Dict[str, int], List[Tuple[int, str]]]:
        data = bytearray()
        initialized = bytearray()
        symbols: Dict[str, int] = {}
        fixups: List[Tuple[int, str]] = []
        # Labels bind after the *next* directive's alignment padding, so
        # ``tbl: .word ...`` right after an odd-length string still labels
        # the aligned word.
        pending_labels: List[str] = []

        def bind_labels() -> None:
            for name in pending_labels:
                symbols[name] = DATA_BASE + len(data)
            pending_labels.clear()

        def pad_to(alignment: int) -> None:
            while len(data) % alignment:
                data.append(0)
                initialized.append(0)
            bind_labels()

        def emit(value: int, width: int, init: bool = True) -> None:
            bind_labels()
            raw = to_u32(value).to_bytes(4, "little")[:width]
            data.extend(raw)
            initialized.extend((1 if init else 0,) * width)

        for stmt in statements:
            if isinstance(stmt, LabelStmt):
                if stmt.name in symbols or stmt.name in pending_labels:
                    raise AsmError(f"duplicate symbol {stmt.name!r}", stmt.lineno, self.filename)
                pending_labels.append(stmt.name)
                continue
            if isinstance(stmt, InstrStmt):
                raise AsmError("instruction in .data segment", stmt.lineno, self.filename)
            assert isinstance(stmt, DirectiveStmt)
            name = stmt.name
            values = self._directive_values(stmt.args, stmt.lineno)
            if name == ".word":
                pad_to(4)
                for value in values:
                    if isinstance(value, str):
                        fixups.append((len(data), value))
                        emit(0, 4)
                    else:
                        emit(value, 4)
            elif name == ".half":
                pad_to(2)
                for value in values:
                    emit(int(value), 2)
            elif name == ".byte":
                for value in values:
                    emit(int(value), 1)
            elif name == ".asciiz":
                for value in values:
                    if not isinstance(value, str):
                        raise AsmError(".asciiz needs a string", stmt.lineno, self.filename)
                    for char in value.encode("latin-1"):
                        emit(char, 1)
                    emit(0, 1)
            elif name == ".ascii":
                for value in values:
                    if not isinstance(value, str):
                        raise AsmError(".ascii needs a string", stmt.lineno, self.filename)
                    for char in value.encode("latin-1"):
                        emit(char, 1)
            elif name == ".space":
                count = int(values[0]) if values else 0
                for _ in range(count):
                    emit(0, 1, init=False)
            elif name == ".align":
                pad_to(1 << int(values[0]))
            elif name == ".globl":
                continue
            else:
                raise AsmError(f"unknown data directive {name!r}", stmt.lineno, self.filename)
        # Keep the data segment word-padded so whole-word loads at the end
        # of the segment stay in bounds; bind any trailing labels.
        pad_to(4)
        bind_labels()
        return data, initialized, symbols, fixups

    def _apply_fixups(
        self, data: bytearray, fixups: Sequence[Tuple[int, str]], symbols: Dict[str, int]
    ) -> None:
        for offset, name in fixups:
            if name not in symbols:
                raise AsmError(f"undefined symbol {name!r} in .word", filename=self.filename)
            data[offset : offset + 4] = to_u32(symbols[name]).to_bytes(4, "little")

    # ------------------------------------------------------------------
    # Pass 3: text layout
    # ------------------------------------------------------------------

    def _layout_text(
        self, statements: Sequence[Statement], data_symbols: Dict[str, int]
    ) -> Tuple[Dict[str, int], List[FunctionInfo], List[_TextItem]]:
        symbols: Dict[str, int] = {}
        functions: List[FunctionInfo] = []
        items: List[_TextItem] = []
        open_functions: Dict[str, Tuple[int, int]] = {}
        address = TEXT_BASE
        lookup = data_symbols.get

        for stmt in statements:
            if isinstance(stmt, LabelStmt):
                if stmt.name in symbols:
                    raise AsmError(f"duplicate symbol {stmt.name!r}", stmt.lineno, self.filename)
                symbols[stmt.name] = address
            elif isinstance(stmt, DirectiveStmt):
                if stmt.name == ".ent":
                    values = self._directive_values(stmt.args, stmt.lineno)
                    if not values or not isinstance(values[0], str):
                        raise AsmError(".ent needs a function name", stmt.lineno, self.filename)
                    argc = int(values[1]) if len(values) > 1 else 0
                    open_functions[values[0]] = (address, argc)
                elif stmt.name == ".end":
                    values = self._directive_values(stmt.args, stmt.lineno)
                    if not values or not isinstance(values[0], str):
                        raise AsmError(".end needs a function name", stmt.lineno, self.filename)
                    fname = values[0]
                    if fname not in open_functions:
                        raise AsmError(f".end without .ent for {fname!r}", stmt.lineno, self.filename)
                    entry, argc = open_functions.pop(fname)
                    functions.append(FunctionInfo(fname, entry, address, argc))
                elif stmt.name == ".globl":
                    continue
                else:
                    raise AsmError(
                        f"directive {stmt.name!r} not allowed in .text", stmt.lineno, self.filename
                    )
            else:
                assert isinstance(stmt, InstrStmt)
                length = self._statement_length(stmt, lookup)
                items.append(_TextItem(stmt, address, length))
                address += 4 * length
        if open_functions:
            missing = ", ".join(sorted(open_functions))
            raise AsmError(f"function(s) missing .end: {missing}", filename=self.filename)
        return symbols, functions, items

    def _statement_length(self, stmt: InstrStmt, lookup) -> int:
        mnemonic = stmt.mnemonic
        if mnemonic in PSEUDO_MNEMONICS or (mnemonic == "div" and len(stmt.operands) == 3):
            return expansion_length(mnemonic, stmt.operands, stmt.lineno, lookup)
        if mnemonic not in OPCODES:
            raise AsmError(f"unknown mnemonic {mnemonic!r}", stmt.lineno, self.filename)
        return 1

    # ------------------------------------------------------------------
    # Pass 4: encoding
    # ------------------------------------------------------------------

    def _encode(
        self,
        items: Sequence[_TextItem],
        symbols: Dict[str, int],
        data_symbols: Dict[str, int],
    ) -> List[Instruction]:
        instructions: List[Instruction] = []
        lookup = data_symbols.get
        for item in items:
            stmt = item.stmt
            mnemonic = stmt.mnemonic
            if mnemonic in PSEUDO_MNEMONICS or (mnemonic == "div" and len(stmt.operands) == 3):
                protos = expand(mnemonic, stmt.operands, stmt.lineno, lookup)
            else:
                protos = [self._proto_from_real(stmt)]
            if len(protos) != item.length:
                raise AsmError(
                    f"internal: expansion length mismatch for {mnemonic!r}",
                    stmt.lineno,
                    self.filename,
                )
            for offset, proto in enumerate(protos):
                instructions.append(
                    self._finalize(proto, item.address + 4 * offset, symbols, stmt.lineno)
                )
        return instructions

    def _operand_error(self, stmt: InstrStmt) -> AsmError:
        return AsmError(f"bad operands for {stmt.mnemonic!r}", stmt.lineno, self.filename)

    _FORMAT_ARITY = {
        Format.R3: (3,),
        Format.R3_SHIFTV: (3,),
        Format.SHIFT: (3,),
        Format.I2: (3,),
        Format.LUI: (2,),
        Format.MEM: (2,),
        Format.BR2: (3,),
        Format.BR1: (2,),
        Format.J: (1,),
        Format.JR: (1,),
        Format.JALR: (1, 2),
        Format.MULDIV: (2,),
        Format.MFHILO: (1,),
        Format.BARE: (0,),
    }

    def _proto_from_real(self, stmt: InstrStmt) -> Proto:
        info = OPCODES[stmt.mnemonic]
        ops = stmt.operands
        fmt = info.fmt
        if len(ops) not in self._FORMAT_ARITY[fmt]:
            raise self._operand_error(stmt)

        def reg(i: int) -> int:
            if i >= len(ops) or not isinstance(ops[i], RegOp):
                raise self._operand_error(stmt)
            return ops[i].index  # type: ignore[union-attr]

        def imm(i: int) -> int:
            if i >= len(ops) or not isinstance(ops[i], ImmOp):
                raise self._operand_error(stmt)
            return ops[i].value  # type: ignore[union-attr]

        def sym_or_imm(i: int) -> Union[SymOp, int]:
            if i >= len(ops):
                raise self._operand_error(stmt)
            operand = ops[i]
            if isinstance(operand, SymOp):
                return operand
            if isinstance(operand, ImmOp):
                return operand.value
            raise self._operand_error(stmt)

        if fmt == Format.R3:
            return Proto(info.name, rd=reg(0), rs=reg(1), rt=reg(2))
        if fmt == Format.R3_SHIFTV:
            return Proto(info.name, rd=reg(0), rt=reg(1), rs=reg(2))
        if fmt == Format.SHIFT:
            return Proto(info.name, rd=reg(0), rt=reg(1), shamt=imm(2))
        if fmt == Format.I2:
            return Proto(info.name, rt=reg(0), rs=reg(1), imm=imm(2))
        if fmt == Format.LUI:
            return Proto(info.name, rt=reg(0), imm=imm(1))
        if fmt == Format.MEM:
            if len(ops) != 2:
                raise self._operand_error(stmt)
            mem = ops[1]
            if isinstance(mem, MemOp):
                return Proto(info.name, rt=reg(0), rs=mem.base, imm=mem.offset)
            if isinstance(mem, MemSymOp):
                # symbol(base) is only meaningful as a gp-relative access.
                if mem.base != GP_REG:
                    raise AsmError(
                        "symbol(base) memory operands require $gp base",
                        stmt.lineno,
                        self.filename,
                    )
                return Proto(info.name, rt=reg(0), rs=mem.base, imm=SymImm(GPREL, mem.sym))
            raise self._operand_error(stmt)
        if fmt == Format.BR2:
            return Proto(info.name, rs=reg(0), rt=reg(1), target=sym_or_imm(2))
        if fmt == Format.BR1:
            return Proto(info.name, rs=reg(0), target=sym_or_imm(1))
        if fmt == Format.J:
            return Proto(info.name, target=sym_or_imm(0))
        if fmt == Format.JR:
            return Proto(info.name, rs=reg(0))
        if fmt == Format.JALR:
            if len(ops) == 1:
                return Proto(info.name, rd=RA, rs=reg(0))
            return Proto(info.name, rd=reg(0), rs=reg(1))
        if fmt == Format.MULDIV:
            return Proto(info.name, rs=reg(0), rt=reg(1))
        if fmt == Format.MFHILO:
            return Proto(info.name, rd=reg(0))
        if fmt == Format.BARE:
            return Proto(info.name)
        raise AsmError(f"unhandled format {fmt!r}", stmt.lineno, self.filename)

    def _resolve_symbol(self, sym: SymOp, symbols: Dict[str, int], lineno: int) -> int:
        if sym.name not in symbols:
            raise AsmError(f"undefined symbol {sym.name!r}", lineno, self.filename)
        return symbols[sym.name] + sym.offset

    def _finalize(
        self, proto: Proto, address: int, symbols: Dict[str, int], lineno: int
    ) -> Instruction:
        info = OPCODES[proto.name]
        imm = proto.imm
        label: Optional[str] = None
        if isinstance(imm, SymImm):
            resolved = self._resolve_symbol(imm.sym, symbols, lineno)
            if imm.kind == GPREL:
                imm = resolved - GP_VALUE
            elif imm.kind == HI16:
                imm = (resolved >> 16) & 0xFFFF
            elif imm.kind == LO16:
                imm = resolved & 0xFFFF
            else:  # pragma: no cover - exhaustive
                raise AsmError(f"bad relocation {imm.kind!r}", lineno, self.filename)
        target = 0
        if proto.target is not None:
            if isinstance(proto.target, SymOp):
                label = proto.target.name
                target = self._resolve_symbol(proto.target, symbols, lineno)
            else:
                target = proto.target
        if isinstance(imm, int) and info.fmt in (Format.I2, Format.MEM, Format.LUI):
            if info.unsigned_imm:
                if not fits_u16(imm):
                    raise AsmError(
                        f"immediate {imm} out of unsigned 16-bit range", lineno, self.filename
                    )
            elif not fits_s16(imm):
                raise AsmError(
                    f"immediate {imm} out of signed 16-bit range", lineno, self.filename
                )
        return Instruction(
            info,
            rd=proto.rd,
            rs=proto.rs,
            rt=proto.rt,
            imm=int(imm),
            shamt=proto.shamt,
            target=target,
            addr=address,
            label=label,
        )


def assemble(source: str, filename: str = "<asm>") -> Program:
    """Assemble ``source`` into a :class:`Program` (convenience wrapper)."""
    return Assembler(filename).assemble(source)
