"""Executable program image produced by the assembler.

A :class:`Program` bundles the decoded text segment, the initialized data
segment, the symbol table, and per-function metadata.  Function metadata
(entry address, static size, argument count) is the assembler-level
equivalent of the symbol-table information the paper's simulator used to
drive its function-level and local analyses.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.convention import DATA_BASE, TEXT_BASE
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class FunctionInfo:
    """Static metadata about one function in the program."""

    name: str
    entry: int
    #: Address one past the function's last instruction.
    end: int
    #: Number of register arguments (0..4) declared via ``.ent``.
    num_args: int

    @property
    def size(self) -> int:
        """Static size in instructions."""
        return (self.end - self.entry) // 4

    def contains(self, address: int) -> bool:
        return self.entry <= address < self.end


@dataclass
class Program:
    """A loaded program image."""

    text: List[Instruction]
    data: bytearray
    #: Parallel to ``data``; nonzero bytes were explicitly initialized
    #: (``.word``/``.byte``/``.asciiz``...), zero bytes are bss-like.
    data_initialized: bytearray
    symbols: Dict[str, int]
    functions: List[FunctionInfo] = field(default_factory=list)
    entry: int = 0
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE

    def __post_init__(self) -> None:
        self.functions = sorted(self.functions, key=lambda f: f.entry)
        self._entries = [f.entry for f in self.functions]
        self._by_entry = {f.entry: f for f in self.functions}
        self._by_name = {f.name: f for f in self.functions}

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.text)

    def instruction_at(self, address: int) -> Instruction:
        """Fetch the decoded instruction at ``address``."""
        index = (address - self.text_base) >> 2
        return self.text[index]

    def function_at(self, address: int) -> Optional[FunctionInfo]:
        """The function whose body contains ``address``, if any."""
        index = bisect.bisect_right(self._entries, address) - 1
        if index < 0:
            return None
        candidate = self.functions[index]
        return candidate if candidate.contains(address) else None

    def function_by_entry(self, address: int) -> Optional[FunctionInfo]:
        return self._by_entry.get(address)

    def function_by_name(self, name: str) -> Optional[FunctionInfo]:
        return self._by_name.get(name)

    @property
    def static_instruction_count(self) -> int:
        return len(self.text)

    def disassemble(self) -> str:
        """Disassembly of the whole text segment, for debugging."""
        labels = {addr: name for name, addr in self.symbols.items()}
        lines = []
        for instr in self.text:
            if instr.addr in labels:
                lines.append(f"{labels[instr.addr]}:")
            lines.append(f"  {instr.addr:#010x}  {instr.disassemble()}")
        return "\n".join(lines)
