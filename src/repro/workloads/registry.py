"""The eight-workload suite, one per SPEC '95 integer benchmark.

Input generators are tuned so that ``scale=1`` yields roughly 100k-300k
dynamic instructions per workload — small enough for the pure-Python
instrumentation stack, large enough for steady-state behaviour.  The
*secondary* inputs implement the paper's input-sensitivity check
(Section 3 ran go/gcc/ijpeg/perl/compress with second inputs and saw the
same trends).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.base import DeterministicRandom, Workload, numbers_text, words_text


def _go_input(seed: int, scale: int) -> bytes:
    # External input only sets the game length (go's null.in is famously
    # tiny); seeds vary the setup-stone count across input sets.
    setup_moves = 4 + (seed % 5)
    return f"{2 * scale} {setup_moves}\n".encode("ascii")


def _m88k_input(seed: int, scale: int) -> bytes:
    return f"{15 * scale + seed % 3}\n".encode("ascii")


def _ijpeg_input(seed: int, scale: int) -> bytes:
    # seed, frames, width-blocks-1 (5 -> 48px), height-blocks-1 (1 -> 16px)
    return f"{seed} {scale} 5 1\n".encode("ascii")


def _perl_input(seed: int, scale: int) -> bytes:
    return words_text(seed, 300 * scale)


def _vortex_input(seed: int, scale: int) -> bytes:
    return f"{800 * scale} {50 + seed % 30}\n".encode("ascii")


def _li_input(seed: int, scale: int) -> bytes:
    return f"{seed} {8 * scale}\n".encode("ascii")


def _gcc_input(seed: int, scale: int) -> bytes:
    return f"{2 * scale + seed % 3}\n".encode("ascii")


def _compress_input(seed: int, scale: int) -> bytes:
    return words_text(seed, 150 * scale, vocabulary_size=120)


def _pair(maker, primary_seed: int, secondary_seed: int) -> Tuple:
    return (
        lambda scale: maker(primary_seed, scale),
        lambda scale: maker(secondary_seed, scale),
    )


def _build_registry() -> Dict[str, Workload]:
    entries = (
        Workload(
            "go",
            "go (SPEC95 099.go)",
            "board-game evaluator over global board state",
            "go_like.mc",
            *_pair(_go_input, 12345, 54321),
        ),
        Workload(
            "m88ksim",
            "m88ksim (SPEC95 124.m88ksim)",
            "table-driven CPU interpreter running a fixed kernel",
            "m88k_like.mc",
            *_pair(_m88k_input, 1, 2),
        ),
        Workload(
            "ijpeg",
            "ijpeg (SPEC95 132.ijpeg)",
            "image pipeline: blocked transform, quantization, entropy cost",
            "ijpeg_like.mc",
            *_pair(_ijpeg_input, 17, 91),
        ),
        Workload(
            "perl",
            "perl (SPEC95 134.perl)",
            "word-scoring interpreter with a heap hash table",
            "perl_like.mc",
            *_pair(_perl_input, 11, 47),
        ),
        Workload(
            "vortex",
            "vortex (SPEC95 147.vortex)",
            "object store with deep Mem/Chunk/Obj/Tm call layering",
            "vortex_like.mc",
            *_pair(_vortex_input, 9, 77),
        ),
        Workload(
            "li",
            "li (SPEC95 130.li)",
            "lisp-style cons-cell lists with recursive evaluation",
            "li_like.mc",
            *_pair(_li_input, 5, 23),
        ),
        Workload(
            "gcc",
            "gcc (SPEC95 126.gcc)",
            "toy compiler passes over pseudo-random three-address IR",
            "gcc_like.mc",
            *_pair(_gcc_input, 3, 19),
        ),
        Workload(
            "compress",
            "compress (SPEC95 129.compress)",
            "LZW compression over generated text",
            "compress_like.mc",
            *_pair(_compress_input, 7, 29),
        ),
    )
    return {workload.name: workload for workload in entries}


#: Workloads in the paper's Table 1 row order.
WORKLOADS: Dict[str, Workload] = _build_registry()

WORKLOAD_ORDER = tuple(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload by its paper-style name (e.g. ``"go"``)."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOAD_ORDER)
        raise KeyError(f"unknown workload {name!r} (known: {known})") from None
