"""Workload descriptors and deterministic input generation.

Each workload stands in for one SPEC '95 integer benchmark (see
DESIGN.md §4).  A workload bundles a MiniC source file with two
deterministic input generators — a *primary* input (the one the tables
report) and a *secondary* input for the paper's input-sensitivity check.
Inputs scale with a single ``scale`` knob so tests can run small and
benchmarks larger.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

from repro.asm.program import Program
from repro.lang import compile_source


class DeterministicRandom:
    """A small LCG used by input generators (numpy-free, stable forever)."""

    _MULTIPLIER = 1103515245
    _INCREMENT = 12345
    _MASK = 0x7FFFFFFF

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next_int(self, bound: int) -> int:
        """Uniform-ish integer in ``[0, bound)``."""
        self._state = (self._state * self._MULTIPLIER + self._INCREMENT) & self._MASK
        return (self._state >> 7) % bound

    def choice(self, items: str) -> str:
        return items[self.next_int(len(items))]


@dataclass(frozen=True)
class Workload:
    """One synthetic benchmark."""

    name: str
    spec_analogue: str
    description: str
    source_file: str
    #: ``(scale) -> bytes`` generators.
    primary_input: Callable[[int], bytes]
    secondary_input: Callable[[int], bytes]
    #: Expected final line(s) of output per (input kind, scale) are not
    #: fixed here; tests assert determinism by running twice instead.

    def __reduce__(self):
        # The input generators are registry lambdas, which don't pickle;
        # reduce to a name lookup so results can cross process boundaries.
        from repro.workloads.registry import get_workload

        return (get_workload, (self.name,))

    def source(self) -> str:
        return _load_source(self.source_file)

    def program(self) -> Program:
        """The compiled program image (cached per source file)."""
        return _compile_cached(self.source_file)


@lru_cache(maxsize=None)
def _load_source(filename: str) -> str:
    package = importlib.resources.files("repro.workloads") / "minic" / filename
    return package.read_text()


@lru_cache(maxsize=None)
def _compile_cached(filename: str) -> Program:
    return compile_source(_load_source(filename), filename)


def words_text(seed: int, word_count: int, vocabulary_size: int = 180) -> bytes:
    """Generate text made of a bounded vocabulary (Zipf-ish repetition)."""
    rng = DeterministicRandom(seed)
    vocabulary = []
    for index in range(vocabulary_size):
        length = 2 + rng.next_int(7)
        vocabulary.append(
            "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(length))
        )
    words = []
    for _ in range(word_count):
        # Skew toward early vocabulary entries (repeated words, like text).
        index = min(rng.next_int(vocabulary_size), rng.next_int(vocabulary_size))
        words.append(vocabulary[index])
    return (" ".join(words) + "\n").encode("ascii")


def numbers_text(seed: int, count: int, bound: int) -> bytes:
    """Generate whitespace-separated decimal integers."""
    rng = DeterministicRandom(seed)
    return (" ".join(str(rng.next_int(bound)) for _ in range(count)) + "\n").encode("ascii")
