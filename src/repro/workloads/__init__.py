"""Synthetic SPEC '95 integer workload suite (see DESIGN.md §4).

Each :class:`Workload` couples a MiniC program with deterministic primary
and secondary input generators; :data:`WORKLOADS` holds the suite in the
paper's table order.
"""

from repro.workloads.base import DeterministicRandom, Workload, numbers_text, words_text
from repro.workloads.registry import WORKLOADS, WORKLOAD_ORDER, get_workload

__all__ = [
    "DeterministicRandom",
    "WORKLOADS",
    "WORKLOAD_ORDER",
    "Workload",
    "get_workload",
    "numbers_text",
    "words_text",
]
