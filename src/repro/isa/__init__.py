"""MIPS-I-like instruction set definition.

This subpackage is the ISA substrate: register file and ABI roles
(:mod:`repro.isa.registers`), opcode table and decoded-instruction
representation (:mod:`repro.isa.instructions`), memory map / calling
convention / syscalls (:mod:`repro.isa.convention`), and 32-bit arithmetic
helpers (:mod:`repro.isa.bits`).
"""

from repro.isa.convention import (
    DATA_BASE,
    GP_VALUE,
    HEAP_BASE,
    MAX_REGISTER_ARGS,
    STACK_TOP,
    Syscall,
    TEXT_BASE,
    segment_of,
)
from repro.isa.instructions import Format, Instruction, Kind, OPCODES, OpcodeInfo
from repro.isa.registers import (
    ARG_REGISTERS,
    CALLEE_SAVED_REGISTERS,
    NUM_REGISTERS,
    REGISTER_NAMES,
    register_index,
    register_name,
)

__all__ = [
    "ARG_REGISTERS",
    "CALLEE_SAVED_REGISTERS",
    "DATA_BASE",
    "Format",
    "GP_VALUE",
    "HEAP_BASE",
    "Instruction",
    "Kind",
    "MAX_REGISTER_ARGS",
    "NUM_REGISTERS",
    "OPCODES",
    "OpcodeInfo",
    "REGISTER_NAMES",
    "STACK_TOP",
    "Syscall",
    "TEXT_BASE",
    "register_index",
    "register_name",
    "segment_of",
]
