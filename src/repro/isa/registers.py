"""Register file definition for the MIPS-I-like ISA.

The register set and ABI names follow the MIPS o32 convention, which the
paper's analyses depend on: arguments in ``$a0..$a3``, results in
``$v0/$v1``, callee-saved ``$s0..$s7``, the global pointer ``$gp`` used for
small-data addressing (the paper's "global address calculation" category),
the stack pointer ``$sp`` (the paper's "SP" category), and ``$ra`` holding
return addresses (the paper's "returns" category).
"""

from __future__ import annotations

NUM_REGISTERS = 32

REGISTER_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

# Canonical register indices by ABI role.
ZERO = 0
AT = 1
V0, V1 = 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23
T8, T9 = 24, 25
K0, K1 = 26, 27
GP, SP, FP, RA = 28, 29, 30, 31

ARG_REGISTERS = (A0, A1, A2, A3)
RETURN_VALUE_REGISTERS = (V0, V1)
CALLEE_SAVED_REGISTERS = (S0, S1, S2, S3, S4, S5, S6, S7)
TEMP_REGISTERS = (T0, T1, T2, T3, T4, T5, T6, T7, T8, T9)

_NAME_TO_INDEX = {name: index for index, name in enumerate(REGISTER_NAMES)}
# Numeric aliases ($0..$31) are also accepted.
for _i in range(NUM_REGISTERS):
    _NAME_TO_INDEX[str(_i)] = _i
# fp is also known as s8 in some toolchains.
_NAME_TO_INDEX["s8"] = FP


def register_index(name: str) -> int:
    """Resolve a register name (with or without leading ``$``) to its index.

    Raises ``KeyError`` for unknown names.
    """
    stripped = name[1:] if name.startswith("$") else name
    return _NAME_TO_INDEX[stripped]


def register_name(index: int) -> str:
    """Return the canonical ABI name (``$``-prefixed) for a register index."""
    return "$" + REGISTER_NAMES[index]


def is_register_name(name: str) -> bool:
    """True if ``name`` (with or without ``$``) denotes a register."""
    stripped = name[1:] if name.startswith("$") else name
    return stripped in _NAME_TO_INDEX
