"""32-bit two's-complement arithmetic helpers.

All register and memory values in the simulator are stored as unsigned
32-bit integers (Python ints in ``[0, 2**32)``).  These helpers convert
between signed and unsigned views and implement the handful of operations
whose Python semantics differ from 32-bit hardware semantics (shifts,
signed division, multiplication high words).
"""

from __future__ import annotations

WORD_MASK = 0xFFFFFFFF
WORD_SIGN = 0x80000000
HALF_MASK = 0xFFFF
BYTE_MASK = 0xFF

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


def to_u32(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 32-bit value."""
    return value & WORD_MASK


def to_s32(value: int) -> int:
    """Interpret an unsigned 32-bit value as a signed 32-bit integer."""
    value &= WORD_MASK
    if value & WORD_SIGN:
        return value - (1 << 32)
    return value


def to_u16(value: int) -> int:
    """Truncate an arbitrary Python int to an unsigned 16-bit value."""
    return value & HALF_MASK


def to_s16(value: int) -> int:
    """Interpret an unsigned 16-bit value as a signed 16-bit integer."""
    value &= HALF_MASK
    if value & 0x8000:
        return value - (1 << 16)
    return value


def to_s8(value: int) -> int:
    """Interpret an unsigned 8-bit value as a signed 8-bit integer."""
    value &= BYTE_MASK
    if value & 0x80:
        return value - (1 << 8)
    return value


def fits_s16(value: int) -> bool:
    """True if ``value`` fits in a signed 16-bit immediate field."""
    return -(2**15) <= value < 2**15


def fits_u16(value: int) -> bool:
    """True if ``value`` fits in an unsigned 16-bit immediate field."""
    return 0 <= value < 2**16


def add32(a: int, b: int) -> int:
    """32-bit wrap-around addition of unsigned values."""
    return (a + b) & WORD_MASK


def sub32(a: int, b: int) -> int:
    """32-bit wrap-around subtraction of unsigned values."""
    return (a - b) & WORD_MASK


def sll32(value: int, shamt: int) -> int:
    """Logical left shift by ``shamt`` (0..31)."""
    return (value << (shamt & 31)) & WORD_MASK


def srl32(value: int, shamt: int) -> int:
    """Logical right shift by ``shamt`` (0..31)."""
    return (value & WORD_MASK) >> (shamt & 31)


def sra32(value: int, shamt: int) -> int:
    """Arithmetic right shift by ``shamt`` (0..31)."""
    return to_u32(to_s32(value) >> (shamt & 31))


def mult32(a: int, b: int) -> "tuple[int, int]":
    """Signed 32x32 -> 64 multiply; returns ``(hi, lo)`` unsigned words."""
    product = to_s32(a) * to_s32(b)
    product &= (1 << 64) - 1
    return (product >> 32) & WORD_MASK, product & WORD_MASK


def multu32(a: int, b: int) -> "tuple[int, int]":
    """Unsigned 32x32 -> 64 multiply; returns ``(hi, lo)`` unsigned words."""
    product = (a & WORD_MASK) * (b & WORD_MASK)
    return (product >> 32) & WORD_MASK, product & WORD_MASK


def div32(a: int, b: int) -> "tuple[int, int]":
    """Signed division; returns ``(hi=remainder, lo=quotient)``.

    Quotient truncates toward zero (C semantics), unlike Python's floor
    division.  Division by zero leaves hi/lo at zero, mirroring the
    "undefined but non-trapping" MIPS behaviour in a deterministic way.
    """
    sa, sb = to_s32(a), to_s32(b)
    if sb == 0:
        return 0, 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    remainder = sa - quotient * sb
    return to_u32(remainder), to_u32(quotient)


def divu32(a: int, b: int) -> "tuple[int, int]":
    """Unsigned division; returns ``(hi=remainder, lo=quotient)``."""
    ua, ub = a & WORD_MASK, b & WORD_MASK
    if ub == 0:
        return 0, 0
    return ua % ub, ua // ub
