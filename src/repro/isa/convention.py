"""ABI constants: memory map, calling convention, syscall numbers.

The memory layout mirrors the classic MIPS/SPIM layout the paper's
environment used: text low, static data at 0x1000_0000 addressed through
``$gp``, a heap well above the data segment, and a stack growing down from
just below 0x8000_0000.  The analyses classify addresses into segments
using these boundaries (data = "global", heap = "heap", stack = local).
"""

from __future__ import annotations

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
#: $gp points 32KB into the data segment so that the first 64KB of static
#: data is reachable with a single signed 16-bit offset.
GP_OFFSET = 0x8000
GP_VALUE = DATA_BASE + GP_OFFSET
HEAP_BASE = 0x3000_0000
STACK_TOP = 0x7FFF_FF00
#: Stack may grow down to this address before the simulator faults.
STACK_LIMIT = 0x7000_0000

#: Number of argument registers ($a0..$a3); MiniC caps functions at this.
MAX_REGISTER_ARGS = 4


class Syscall:
    """Syscall numbers (selected in ``$v0``), SPIM-flavoured.

    The services that *consume input* (``READ_INT``, ``READ_CHAR``) are the
    boundary where the global analysis tags values as *external input*.
    """

    PRINT_INT = 1
    PRINT_STRING = 4
    READ_INT = 5
    SBRK = 9
    EXIT = 10
    PRINT_CHAR = 11
    READ_CHAR = 12


def segment_of(address: int) -> str:
    """Classify an address into ``text``/``data``/``heap``/``stack``/``other``."""
    if DATA_BASE <= address < HEAP_BASE:
        return "data"
    if HEAP_BASE <= address < STACK_LIMIT:
        return "heap"
    if STACK_LIMIT <= address <= STACK_TOP:
        return "stack"
    if TEXT_BASE <= address < DATA_BASE:
        return "text"
    return "other"
