"""Instruction definitions for the MIPS-I-like ISA.

Every opcode the assembler and simulator understand is declared here as an
:class:`OpcodeInfo` carrying its assembly format and semantic class.  The
semantic class (ALU / load / store / branch / call / ...) is what the
paper's analyses key off: e.g. the repetition tracker treats a load's
output as the loaded value, and the local analysis recognizes ``jal``/
``jr $ra`` as call/return boundaries.

Instructions are represented decoded (:class:`Instruction`), not as raw
bit patterns; encoding-level *constraints* (16-bit immediate fields) are
still enforced by the assembler because they matter to the paper (large
constants must be synthesized with ``lui``/``ori`` sequences, one of the
repetition sources discussed in Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.registers import RA, register_name


class Format:
    """Assembly operand formats (how an instruction is written/parsed)."""

    R3 = "r3"            # op rd, rs, rt
    R3_SHIFTV = "r3sv"   # op rd, rt, rs   (variable shifts)
    SHIFT = "shift"      # op rd, rt, shamt
    I2 = "i2"            # op rt, rs, imm
    LUI = "lui"          # op rt, imm
    MEM = "mem"          # op rt, imm(rs)
    BR2 = "br2"          # op rs, rt, label
    BR1 = "br1"          # op rs, label
    J = "j"              # op label
    JR = "jr"            # op rs
    JALR = "jalr"        # op rd, rs
    MULDIV = "muldiv"    # op rs, rt
    MFHILO = "mfhilo"    # op rd
    BARE = "bare"        # op            (syscall, nop, break)


class Kind:
    """Semantic instruction classes used by the analyses."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"          # j
    CALL = "call"          # jal, jalr
    JUMP_REG = "jump_reg"  # jr (return when rs == $ra)
    MULDIV = "muldiv"      # writes hi/lo
    MFHILO = "mfhilo"      # reads hi/lo
    SYSCALL = "syscall"
    NOP = "nop"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    name: str
    fmt: str
    kind: str
    #: Byte width of the memory access for loads/stores, else 0.
    mem_width: int = 0
    #: Loads: sign-extend the loaded value?
    signed_load: bool = False
    #: Immediate is zero-extended (logical ops) rather than sign-extended.
    unsigned_imm: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpcodeInfo({self.name})"


def _op(name: str, fmt: str, kind: str, **kwargs: object) -> OpcodeInfo:
    return OpcodeInfo(name=name, fmt=fmt, kind=kind, **kwargs)  # type: ignore[arg-type]


#: All real (non-pseudo) opcodes, keyed by mnemonic.
OPCODES: "dict[str, OpcodeInfo]" = {
    info.name: info
    for info in (
        # Three-register ALU.
        _op("add", Format.R3, Kind.ALU),
        _op("addu", Format.R3, Kind.ALU),
        _op("sub", Format.R3, Kind.ALU),
        _op("subu", Format.R3, Kind.ALU),
        _op("and", Format.R3, Kind.ALU),
        _op("or", Format.R3, Kind.ALU),
        _op("xor", Format.R3, Kind.ALU),
        _op("nor", Format.R3, Kind.ALU),
        _op("slt", Format.R3, Kind.ALU),
        _op("sltu", Format.R3, Kind.ALU),
        # Variable shifts (rd, rt, rs -- rs holds the shift amount).
        _op("sllv", Format.R3_SHIFTV, Kind.ALU),
        _op("srlv", Format.R3_SHIFTV, Kind.ALU),
        _op("srav", Format.R3_SHIFTV, Kind.ALU),
        # Immediate shifts.
        _op("sll", Format.SHIFT, Kind.ALU),
        _op("srl", Format.SHIFT, Kind.ALU),
        _op("sra", Format.SHIFT, Kind.ALU),
        # Immediate ALU.
        _op("addi", Format.I2, Kind.ALU),
        _op("addiu", Format.I2, Kind.ALU),
        _op("andi", Format.I2, Kind.ALU, unsigned_imm=True),
        _op("ori", Format.I2, Kind.ALU, unsigned_imm=True),
        _op("xori", Format.I2, Kind.ALU, unsigned_imm=True),
        _op("slti", Format.I2, Kind.ALU),
        _op("sltiu", Format.I2, Kind.ALU),
        _op("lui", Format.LUI, Kind.ALU, unsigned_imm=True),
        # Multiply / divide and hi/lo moves.
        _op("mult", Format.MULDIV, Kind.MULDIV),
        _op("multu", Format.MULDIV, Kind.MULDIV),
        _op("div", Format.MULDIV, Kind.MULDIV),
        _op("divu", Format.MULDIV, Kind.MULDIV),
        _op("mfhi", Format.MFHILO, Kind.MFHILO),
        _op("mflo", Format.MFHILO, Kind.MFHILO),
        # Loads.
        _op("lw", Format.MEM, Kind.LOAD, mem_width=4, signed_load=True),
        _op("lh", Format.MEM, Kind.LOAD, mem_width=2, signed_load=True),
        _op("lhu", Format.MEM, Kind.LOAD, mem_width=2),
        _op("lb", Format.MEM, Kind.LOAD, mem_width=1, signed_load=True),
        _op("lbu", Format.MEM, Kind.LOAD, mem_width=1),
        # Stores.
        _op("sw", Format.MEM, Kind.STORE, mem_width=4),
        _op("sh", Format.MEM, Kind.STORE, mem_width=2),
        _op("sb", Format.MEM, Kind.STORE, mem_width=1),
        # Branches.
        _op("beq", Format.BR2, Kind.BRANCH),
        _op("bne", Format.BR2, Kind.BRANCH),
        _op("blez", Format.BR1, Kind.BRANCH),
        _op("bgtz", Format.BR1, Kind.BRANCH),
        _op("bltz", Format.BR1, Kind.BRANCH),
        _op("bgez", Format.BR1, Kind.BRANCH),
        # Jumps and calls.
        _op("j", Format.J, Kind.JUMP),
        _op("jal", Format.J, Kind.CALL),
        _op("jr", Format.JR, Kind.JUMP_REG),
        _op("jalr", Format.JALR, Kind.CALL),
        # System.
        _op("syscall", Format.BARE, Kind.SYSCALL),
        _op("nop", Format.BARE, Kind.NOP),
        _op("break", Format.BARE, Kind.SYSCALL),
    )
}


class Instruction:
    """One decoded static instruction.

    Fields not used by an opcode's format are left at their defaults.
    ``imm`` holds the (already sign- or zero-extended) immediate; ``target``
    holds a resolved absolute address for jumps/branches.  ``addr`` is the
    instruction's own address, assigned by the assembler, and ``label`` is
    the original symbolic target, kept for disassembly.
    """

    __slots__ = ("op", "rd", "rs", "rt", "imm", "shamt", "target", "addr", "label")

    def __init__(
        self,
        op: OpcodeInfo,
        rd: int = 0,
        rs: int = 0,
        rt: int = 0,
        imm: int = 0,
        shamt: int = 0,
        target: int = 0,
        addr: int = 0,
        label: Optional[str] = None,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rs = rs
        self.rt = rt
        self.imm = imm
        self.shamt = shamt
        self.target = target
        self.addr = addr
        self.label = label

    @property
    def is_load(self) -> bool:
        return self.op.kind == Kind.LOAD

    @property
    def is_store(self) -> bool:
        return self.op.kind == Kind.STORE

    @property
    def is_call(self) -> bool:
        return self.op.kind == Kind.CALL

    @property
    def is_return(self) -> bool:
        return self.op.kind == Kind.JUMP_REG and self.rs == RA

    def source_registers(self) -> "tuple[int, ...]":
        """Register indices this instruction reads, in operand order."""
        fmt = self.op.fmt
        if fmt in (Format.R3, Format.BR2, Format.MULDIV):
            return (self.rs, self.rt)
        if fmt == Format.R3_SHIFTV:
            return (self.rt, self.rs)
        if fmt == Format.SHIFT:
            return (self.rt,)
        if fmt in (Format.I2, Format.MEM, Format.BR1, Format.JR, Format.JALR):
            if self.op.kind == Kind.STORE:
                return (self.rt, self.rs)
            return (self.rs,)
        return ()

    def dest_register(self) -> Optional[int]:
        """The general register this instruction writes, if any."""
        fmt = self.op.fmt
        kind = self.op.kind
        if fmt in (Format.R3, Format.R3_SHIFTV, Format.SHIFT, Format.MFHILO):
            return self.rd
        if fmt == Format.JALR:
            return self.rd
        if fmt in (Format.I2, Format.LUI):
            return self.rt
        if kind == Kind.LOAD:
            return self.rt
        if kind == Kind.CALL and fmt == Format.J:
            return RA
        return None

    def disassemble(self) -> str:
        """Render the instruction back to assembly text."""
        op, fmt = self.op, self.op.fmt
        rd, rs, rt = register_name(self.rd), register_name(self.rs), register_name(self.rt)
        target = self.label if self.label is not None else hex(self.target)
        if fmt == Format.R3:
            return f"{op.name} {rd}, {rs}, {rt}"
        if fmt == Format.R3_SHIFTV:
            return f"{op.name} {rd}, {rt}, {rs}"
        if fmt == Format.SHIFT:
            return f"{op.name} {rd}, {rt}, {self.shamt}"
        if fmt == Format.I2:
            return f"{op.name} {rt}, {rs}, {self.imm}"
        if fmt == Format.LUI:
            return f"{op.name} {rt}, {self.imm}"
        if fmt == Format.MEM:
            return f"{op.name} {rt}, {self.imm}({rs})"
        if fmt == Format.BR2:
            return f"{op.name} {rs}, {rt}, {target}"
        if fmt == Format.BR1:
            return f"{op.name} {rs}, {target}"
        if fmt == Format.J:
            return f"{op.name} {target}"
        if fmt == Format.JR:
            return f"{op.name} {rs}"
        if fmt == Format.JALR:
            return f"{op.name} {rd}, {rs}"
        if fmt == Format.MULDIV:
            return f"{op.name} {rs}, {rt}"
        if fmt == Format.MFHILO:
            return f"{op.name} {rd}"
        return op.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instruction {hex(self.addr)}: {self.disassemble()}>"
