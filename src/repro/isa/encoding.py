"""Binary encoding/decoding of instructions to real MIPS-I machine words.

The simulator executes decoded :class:`~repro.isa.instructions.Instruction`
objects directly, but the encoder exists so that programs can be emitted
as genuine 32-bit MIPS-I machine code (e.g. to inspect code size, build
binary traces, or cross-check against an external disassembler).  The
opcode/funct numbers follow the MIPS-I manual.

Encoding formats::

    R: | op:6 | rs:5 | rt:5 | rd:5 | shamt:5 | funct:6 |
    I: | op:6 | rs:5 | rt:5 |        imm:16           |
    J: | op:6 |            target:26                  |

Branch immediates are PC-relative word offsets from the slot after the
branch (standard MIPS), so :func:`decode` needs the instruction's own
address to reconstruct absolute targets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.bits import to_s16, to_u16
from repro.isa.instructions import Format, Instruction, Kind, OPCODES
from repro.isa.registers import RA


class EncodingError(Exception):
    """Instruction cannot be encoded/decoded."""


#: R-type (SPECIAL, op=0) funct codes.
_FUNCT: Dict[str, int] = {
    "sll": 0x00, "srl": 0x02, "sra": 0x03,
    "sllv": 0x04, "srlv": 0x06, "srav": 0x07,
    "jr": 0x08, "jalr": 0x09, "syscall": 0x0C, "break": 0x0D,
    "mfhi": 0x10, "mflo": 0x12,
    "mult": 0x18, "multu": 0x19, "div": 0x1A, "divu": 0x1B,
    "add": 0x20, "addu": 0x21, "sub": 0x22, "subu": 0x23,
    "and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
    "slt": 0x2A, "sltu": 0x2B,
}
_FUNCT_REVERSE = {code: name for name, code in _FUNCT.items()}

#: I/J-type primary opcodes.
_PRIMARY: Dict[str, int] = {
    "j": 0x02, "jal": 0x03,
    "beq": 0x04, "bne": 0x05, "blez": 0x06, "bgtz": 0x07,
    "addi": 0x08, "addiu": 0x09, "slti": 0x0A, "sltiu": 0x0B,
    "andi": 0x0C, "ori": 0x0D, "xori": 0x0E, "lui": 0x0F,
    "lb": 0x20, "lh": 0x21, "lw": 0x23, "lbu": 0x24, "lhu": 0x25,
    "sb": 0x28, "sh": 0x29, "sw": 0x2B,
}
_PRIMARY_REVERSE = {code: name for name, code in _PRIMARY.items()}

#: REGIMM (op=1) rt codes.
_REGIMM = {"bltz": 0x00, "bgez": 0x01}
_REGIMM_REVERSE = {code: name for name, code in _REGIMM.items()}


def _branch_offset(instr: Instruction) -> int:
    offset = (instr.target - (instr.addr + 4)) >> 2
    if not -(2**15) <= offset < 2**15:
        raise EncodingError(f"branch offset out of range at {instr.addr:#x}")
    return to_u16(offset)


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into a 32-bit MIPS-I word."""
    name = instr.op.name
    fmt = instr.op.fmt

    if name == "nop":
        return 0  # sll $zero, $zero, 0

    if name in _FUNCT:
        word = _FUNCT[name]
        if fmt in (Format.R3, Format.R3_SHIFTV):
            return word | (instr.rd << 11) | (instr.rt << 16) | (instr.rs << 21)
        if fmt == Format.SHIFT:
            return word | (instr.shamt << 6) | (instr.rd << 11) | (instr.rt << 16)
        if fmt == Format.JR:
            return word | (instr.rs << 21)
        if fmt == Format.JALR:
            return word | (instr.rd << 11) | (instr.rs << 21)
        if fmt == Format.MULDIV:
            return word | (instr.rt << 16) | (instr.rs << 21)
        if fmt == Format.MFHILO:
            return word | (instr.rd << 11)
        if fmt == Format.BARE:
            return word
        raise EncodingError(f"unhandled R-type format for {name}")

    if name in _REGIMM:
        return (0x01 << 26) | (instr.rs << 21) | (_REGIMM[name] << 16) | _branch_offset(instr)

    if name in _PRIMARY:
        op = _PRIMARY[name] << 26
        if fmt == Format.J:
            return op | ((instr.target >> 2) & 0x03FF_FFFF)
        if fmt == Format.BR2:
            return op | (instr.rs << 21) | (instr.rt << 16) | _branch_offset(instr)
        if fmt == Format.BR1:  # blez/bgtz: rt must be 0
            return op | (instr.rs << 21) | _branch_offset(instr)
        if fmt in (Format.I2, Format.MEM):
            return op | (instr.rs << 21) | (instr.rt << 16) | to_u16(instr.imm)
        if fmt == Format.LUI:
            return op | (instr.rt << 16) | to_u16(instr.imm)
        raise EncodingError(f"unhandled I-type format for {name}")

    raise EncodingError(f"no encoding for {name}")


def decode(word: int, addr: int = 0) -> Instruction:
    """Decode a 32-bit MIPS-I word back into an Instruction."""
    word &= 0xFFFFFFFF
    primary = word >> 26
    rs = (word >> 21) & 31
    rt = (word >> 16) & 31
    rd = (word >> 11) & 31
    shamt = (word >> 6) & 31
    imm16 = word & 0xFFFF

    if primary == 0:  # SPECIAL
        if word == 0:
            return Instruction(OPCODES["nop"], addr=addr)
        funct = word & 0x3F
        name = _FUNCT_REVERSE.get(funct)
        if name is None:
            raise EncodingError(f"unknown funct {funct:#x}")
        info = OPCODES[name]
        if info.fmt in (Format.R3, Format.R3_SHIFTV):
            return Instruction(info, rd=rd, rs=rs, rt=rt, addr=addr)
        if info.fmt == Format.SHIFT:
            return Instruction(info, rd=rd, rt=rt, shamt=shamt, addr=addr)
        if info.fmt == Format.JR:
            return Instruction(info, rs=rs, addr=addr)
        if info.fmt == Format.JALR:
            return Instruction(info, rd=rd or RA, rs=rs, addr=addr)
        if info.fmt == Format.MULDIV:
            return Instruction(info, rs=rs, rt=rt, addr=addr)
        if info.fmt == Format.MFHILO:
            return Instruction(info, rd=rd, addr=addr)
        if info.fmt == Format.BARE:
            return Instruction(info, addr=addr)
        raise EncodingError(f"undecodable SPECIAL {name}")

    if primary == 1:  # REGIMM
        name = _REGIMM_REVERSE.get(rt)
        if name is None:
            raise EncodingError(f"unknown REGIMM rt {rt:#x}")
        target = addr + 4 + (to_s16(imm16) << 2)
        return Instruction(OPCODES[name], rs=rs, target=target, addr=addr)

    name = _PRIMARY_REVERSE.get(primary)
    if name is None:
        raise EncodingError(f"unknown opcode {primary:#x}")
    info = OPCODES[name]
    if info.fmt == Format.J:
        target = ((addr + 4) & 0xF000_0000) | ((word & 0x03FF_FFFF) << 2)
        return Instruction(info, target=target, addr=addr)
    if info.fmt == Format.BR2:
        target = addr + 4 + (to_s16(imm16) << 2)
        return Instruction(info, rs=rs, rt=rt, target=target, addr=addr)
    if info.fmt == Format.BR1:
        target = addr + 4 + (to_s16(imm16) << 2)
        return Instruction(info, rs=rs, target=target, addr=addr)
    if info.fmt in (Format.I2, Format.MEM):
        imm = imm16 if info.unsigned_imm else to_s16(imm16)
        return Instruction(info, rt=rt, rs=rs, imm=imm, addr=addr)
    if info.fmt == Format.LUI:
        return Instruction(info, rt=rt, imm=imm16, addr=addr)
    raise EncodingError(f"undecodable {name}")


def encode_program(instructions: List[Instruction]) -> bytes:
    """Encode a text segment into little-endian machine code."""
    out = bytearray()
    for instr in instructions:
        out.extend(encode(instr).to_bytes(4, "little"))
    return bytes(out)


def decode_program(code: bytes, base: int) -> List[Instruction]:
    """Decode little-endian machine code back into instructions."""
    if len(code) % 4:
        raise EncodingError("code length not word-aligned")
    return [
        decode(int.from_bytes(code[offset : offset + 4], "little"), base + offset)
        for offset in range(0, len(code), 4)
    ]


def equivalent(a: Instruction, b: Instruction) -> bool:
    """Structural equality of two decoded instructions."""
    return (
        a.op.name == b.op.name
        and a.rd == b.rd
        and a.rs == b.rs
        and a.rt == b.rt
        and a.imm == b.imm
        and a.shamt == b.shamt
        and a.target == b.target
    )
