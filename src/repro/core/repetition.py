"""Instruction repetition tracking (the paper's Section 3 methodology).

A dynamic instance of a static instruction is *repeated* iff its
``(inputs, outputs)`` pair matches one of the previously buffered unique
instances of that instruction.  Up to ``buffer_capacity`` (paper: 2000)
unique instances are buffered per static instruction; once the buffer is
full, new unique instances are neither buffered nor learned — exactly the
paper's setup.

The tracker feeds Table 1 (dynamic/static repetition percentages),
Table 2 (unique repeatable instances and average repeats), Figure 1
(static instruction coverage of repetition), Figure 3 (repetition by
unique-instance-count bucket), and Figure 4 (instance coverage of
repetition).  Other analyses that need a per-step "was this repeated?"
flag (Tables 3, 6, 7, 9, 10) read :attr:`last_was_repeated`, which is
valid for the most recent step delivered to the tracker — attach the
tracker *before* those analyzers so the flag is fresh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.coverage import bucket_label, bucket_shares
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer

#: The paper buffers up to 2000 unique instances per static instruction.
DEFAULT_BUFFER_CAPACITY = 2000


class _StaticEntry:
    """Per-static-instruction repetition state."""

    __slots__ = ("executed", "repeated", "instances")

    def __init__(self) -> None:
        self.executed = 0
        self.repeated = 0
        #: (inputs, outputs) -> number of times *repeated* (0 = buffered
        #: but never repeated yet).
        self.instances: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}


@dataclass
class RepetitionReport:
    """Aggregated repetition statistics for one run."""

    dynamic_total: int
    dynamic_repeated: int
    static_executed: int
    static_repeated: int
    #: Total unique repeatable instances (buffered instances repeated >= 1x).
    unique_repeatable_instances: int
    #: Repeats per unique repeatable instance, unsorted.
    instance_repeat_counts: List[int] = field(repr=False, default_factory=list)
    #: Repeated-instruction count per repeated static instruction.
    static_repeat_weights: List[int] = field(repr=False, default_factory=list)
    #: Figure 3: bucket label -> repeated instructions from static
    #: instructions with that many unique repeatable instances.
    bucket_weights: Dict[str, int] = field(default_factory=dict)

    @property
    def dynamic_repeated_pct(self) -> float:
        return 100.0 * self.dynamic_repeated / self.dynamic_total if self.dynamic_total else 0.0

    @property
    def static_repeated_pct(self) -> float:
        """Percentage of executed static instructions that repeat."""
        return 100.0 * self.static_repeated / self.static_executed if self.static_executed else 0.0

    @property
    def average_repeats(self) -> float:
        """Table 2: average times each unique repeatable instance repeats."""
        if not self.unique_repeatable_instances:
            return 0.0
        return self.dynamic_repeated / self.unique_repeatable_instances

    def bucket_shares(self) -> Dict[str, float]:
        """Figure 3: share of repetition per unique-instance-count bucket."""
        return bucket_shares(self.bucket_weights)


class RepetitionTracker(Analyzer):
    """Tracks instruction repetition over the execution stream."""

    def __init__(self, buffer_capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be positive")
        self.buffer_capacity = buffer_capacity
        self.dynamic_total = 0
        self.dynamic_repeated = 0
        self._static: Dict[int, _StaticEntry] = {}
        #: True iff the most recent step was classified repeated.
        self.last_was_repeated = False
        #: Index of the most recent step (for composition sanity checks).
        self.last_index = -1

    def on_step(self, record: StepRecord) -> None:
        entry = self._static.get(record.pc)
        if entry is None:
            entry = _StaticEntry()
            self._static[record.pc] = entry
        entry.executed += 1
        self.dynamic_total += 1
        key = (record.inputs, record.outputs)
        instances = entry.instances
        count = instances.get(key)
        if count is not None:
            instances[key] = count + 1
            entry.repeated += 1
            self.dynamic_repeated += 1
            repeated = True
        else:
            if len(instances) < self.buffer_capacity:
                instances[key] = 0
            repeated = False
        self.last_was_repeated = repeated
        self.last_index = record.index

    # -- reporting ---------------------------------------------------------

    def was_repeated(self, record: StepRecord) -> bool:
        """Repetition flag for ``record`` (must be the most recent step)."""
        if record.index != self.last_index:
            raise RuntimeError(
                "RepetitionTracker.was_repeated() queried out of order; "
                "attach the tracker before dependent analyzers"
            )
        return self.last_was_repeated

    def report(self) -> RepetitionReport:
        """Aggregate the per-static state into a report."""
        static_repeated = 0
        unique_instances = 0
        instance_repeats: List[int] = []
        static_weights: List[int] = []
        buckets: Dict[str, int] = {}
        for entry in self._static.values():
            if entry.repeated == 0:
                continue
            static_repeated += 1
            static_weights.append(entry.repeated)
            repeatable = [c for c in entry.instances.values() if c > 0]
            unique_instances += len(repeatable)
            instance_repeats.extend(repeatable)
            if repeatable:
                label = bucket_label(len(repeatable))
                buckets[label] = buckets.get(label, 0) + entry.repeated
        return RepetitionReport(
            dynamic_total=self.dynamic_total,
            dynamic_repeated=self.dynamic_repeated,
            static_executed=len(self._static),
            static_repeated=static_repeated,
            unique_repeatable_instances=unique_instances,
            instance_repeat_counts=instance_repeats,
            static_repeat_weights=static_weights,
            bucket_weights=buckets,
        )

    # -- queries used by tests ----------------------------------------------

    def executed_count(self, pc: int) -> int:
        entry = self._static.get(pc)
        return entry.executed if entry else 0

    def repeated_count(self, pc: int) -> int:
        entry = self._static.get(pc)
        return entry.repeated if entry else 0

    def buffered_instances(self, pc: int) -> int:
        entry = self._static.get(pc)
        return len(entry.instances) if entry else 0
