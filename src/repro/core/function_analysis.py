"""Function-level analysis (the paper's Sections 5.2 and 6).

Tracks, per static function:

* argument repetition across dynamic calls — Table 4's *all-argument*
  and *no-argument* repetition percentages;
* the frequency distribution of argument tuples — Figure 5's coverage of
  all-argument repetition by the five most frequent argument sets;
* side effects and implicit inputs over each call's full dynamic extent
  (including callees) — Table 8's memoization-candidate percentages.

Side effects are stores to global (data-segment) or heap memory, output
syscalls, and heap allocation; implicit inputs are loads from global or
heap memory and input syscalls.  Both are detected with global event
counters snapshotted at call entry, so marking a whole call stack is
O(1) per event.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.convention import segment_of
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.observer import Analyzer

#: Memory segments whose contents persist beyond a call's own frame —
#: accesses here are the paper's §5.2 purity events.
IMPURE_SEGMENTS = ("data", "heap")


def classify_memory_access(address: int, is_store: bool) -> Optional[str]:
    """Purity event for one memory access, or ``None`` if it has none.

    Stores to global (data-segment) or heap memory are ``"side_effect"``
    events; loads from them are ``"implicit_input"`` events.  Stack and
    other accesses are invisible to the §5.2 analysis.  The trace-safety
    filter (:mod:`repro.traces.safety`) reuses this classification for
    its strict no-implicit-inputs mode.
    """
    if segment_of(address) not in IMPURE_SEGMENTS:
        return None
    return "side_effect" if is_store else "implicit_input"


@dataclass
class _FunctionStats:
    """Per-static-function call statistics."""

    name: str
    num_args: int
    calls: int = 0
    all_args_repeated: int = 0
    no_args_repeated: int = 0
    pure_calls: int = 0
    pure_all_repeated_calls: int = 0
    seen_tuples: set = field(default_factory=set, repr=False)
    seen_per_position: List[set] = field(default_factory=list, repr=False)
    tuple_counts: Counter = field(default_factory=Counter, repr=False)


class _Frame:
    __slots__ = (
        "stats",
        "all_repeated",
        "side_effects_at_entry",
        "implicit_at_entry",
        "counted",
    )

    def __init__(
        self,
        stats: Optional[_FunctionStats],
        all_repeated: bool,
        side_effects_at_entry: int,
        implicit_at_entry: int,
        counted: bool,
    ) -> None:
        self.stats = stats
        self.all_repeated = all_repeated
        self.side_effects_at_entry = side_effects_at_entry
        self.implicit_at_entry = implicit_at_entry
        self.counted = counted


@dataclass
class FunctionAnalysisReport:
    """Aggregates for Table 4, Table 8, and Figure 5."""

    num_functions: int
    dynamic_calls: int
    all_args_repeated: int
    no_args_repeated: int
    pure_calls: int
    pure_all_repeated_calls: int
    #: Figure 5: cumulative coverage of all-arg repetition by the top-k
    #: most frequent argument tuples, k = 1..5.
    top_k_coverage: Tuple[float, float, float, float, float]
    per_function: Dict[str, _FunctionStats] = field(repr=False, default_factory=dict)

    @property
    def all_args_repeated_pct(self) -> float:
        return 100.0 * self.all_args_repeated / self.dynamic_calls if self.dynamic_calls else 0.0

    @property
    def no_args_repeated_pct(self) -> float:
        return 100.0 * self.no_args_repeated / self.dynamic_calls if self.dynamic_calls else 0.0

    @property
    def pure_pct(self) -> float:
        """Table 8 column 2: % of dynamic calls without side effects or
        implicit inputs."""
        return 100.0 * self.pure_calls / self.dynamic_calls if self.dynamic_calls else 0.0

    @property
    def pure_all_repeated_pct(self) -> float:
        """Table 8 column 3: % of all-arg-repeated calls that are pure."""
        if not self.all_args_repeated:
            return 0.0
        return 100.0 * self.pure_all_repeated_calls / self.all_args_repeated


class FunctionAnalyzer(Analyzer):
    """Drives Table 4, Table 8, and Figure 5."""

    def __init__(self) -> None:
        self._functions: Dict[str, _FunctionStats] = {}
        self._stack: List[_Frame] = []
        # Global event counters (O(1) impurity tracking for whole stacks).
        self._side_effect_events = 0
        self._implicit_input_events = 0
        self.dynamic_calls = 0

    # -- call boundaries ----------------------------------------------------

    def on_call(self, event: CallEvent) -> None:
        stats: Optional[_FunctionStats] = None
        all_repeated = False
        counted = not event.warmup
        if event.function is not None:
            name = event.function.name
            stats = self._functions.get(name)
            if stats is None:
                stats = _FunctionStats(name, event.function.num_args)
                stats.seen_per_position = [set() for _ in range(event.function.num_args)]
                self._functions[name] = stats
            args = event.args
            seen_tuple = args in stats.seen_tuples
            if counted:
                stats.calls += 1
                self.dynamic_calls += 1
                if seen_tuple:
                    stats.all_args_repeated += 1
                    stats.tuple_counts[args] += 1
                    all_repeated = True
                if stats.num_args and all(
                    args[i] not in stats.seen_per_position[i] for i in range(stats.num_args)
                ):
                    stats.no_args_repeated += 1
            stats.seen_tuples.add(args)
            for i, value in enumerate(args):
                stats.seen_per_position[i].add(value)
        self._stack.append(
            _Frame(
                stats,
                all_repeated,
                self._side_effect_events,
                self._implicit_input_events,
                counted,
            )
        )

    def on_return(self, event: ReturnEvent) -> None:
        if not self._stack:
            return
        frame = self._stack.pop()
        if frame.stats is None or not frame.counted:
            return
        pure = (
            self._side_effect_events == frame.side_effects_at_entry
            and self._implicit_input_events == frame.implicit_at_entry
        )
        if pure:
            frame.stats.pure_calls += 1
            if frame.all_repeated:
                frame.stats.pure_all_repeated_calls += 1

    # -- impurity events -----------------------------------------------------

    def on_step(self, record: StepRecord) -> None:
        address = record.mem_addr
        if address is None:
            return
        event = classify_memory_access(address, record.store_value is not None)
        if event == "side_effect":
            self._side_effect_events += 1
        elif event == "implicit_input":
            self._implicit_input_events += 1

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.is_output:
            self._side_effect_events += 1
        elif event.is_input:
            self._implicit_input_events += 1
        else:
            # sbrk / exit mutate process state.
            self._side_effect_events += 1

    # -- reporting -----------------------------------------------------------

    def report(self) -> FunctionAnalysisReport:
        all_repeated = sum(s.all_args_repeated for s in self._functions.values())
        none_repeated = sum(s.no_args_repeated for s in self._functions.values())
        pure = sum(s.pure_calls for s in self._functions.values())
        pure_all = sum(s.pure_all_repeated_calls for s in self._functions.values())

        # Figure 5: coverage of all-arg repetition by top-k argument tuples.
        covered = [0] * 5
        for stats in self._functions.values():
            top = stats.tuple_counts.most_common(5)
            for k in range(5):
                covered[k] += sum(count for _, count in top[: k + 1])
        coverage = tuple(
            (100.0 * covered[k] / all_repeated if all_repeated else 0.0) for k in range(5)
        )
        return FunctionAnalysisReport(
            num_functions=len(self._functions),
            dynamic_calls=self.dynamic_calls,
            all_args_repeated=all_repeated,
            no_args_repeated=none_repeated,
            pure_calls=pure,
            pure_all_repeated_calls=pure_all,
            top_k_coverage=coverage,  # type: ignore[arg-type]
            per_function=dict(self._functions),
        )
