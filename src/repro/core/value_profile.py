"""Global-load value profiling (the paper's Figure 6).

For every static load whose address falls in the data segment or the
heap, profile the distribution of loaded values.  Figure 6 asks: if the
slice rooted at each such load were specialized for that load's k most
frequent values (k = 1..5), what share of the load's *repetition* would
be covered?

A load instance counts as value-repetition when its loaded value was
seen before at the same static load (the first occurrence of each value
is the specialization's learning cost, not covered repetition).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.isa.convention import segment_of
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer

#: Per-static-load cap on distinct profiled values, bounding memory on
#: pathological loads (e.g. a pointer-chasing scan).  Values beyond the
#: cap still count toward the load's totals via the overflow bucket.
DEFAULT_VALUE_CAP = 4096


@dataclass
class ValueProfileReport:
    """Figure 6: coverage of global-load repetition by top-k values."""

    #: Cumulative coverage (percent) for k = 1..5.
    top_k_coverage: Tuple[float, float, float, float, float]
    #: Total dynamic global/heap loads profiled.
    loads_profiled: int
    #: Total value-repetition among them.
    load_repetition: int
    static_loads: int


class GlobalLoadValueProfiler(Analyzer):
    """Profiles loaded-value distributions of global/heap loads."""

    def __init__(self, value_cap: int = DEFAULT_VALUE_CAP) -> None:
        self.value_cap = value_cap
        self._profiles: Dict[int, Counter] = {}
        self._overflow: Dict[int, int] = {}
        self.loads_profiled = 0

    def on_step(self, record: StepRecord) -> None:
        if not record.instr.is_load:
            return
        if segment_of(record.mem_addr) not in ("data", "heap"):  # type: ignore[arg-type]
            return
        self.loads_profiled += 1
        profile = self._profiles.get(record.pc)
        if profile is None:
            profile = Counter()
            self._profiles[record.pc] = profile
        value = record.dest_value
        if value in profile or len(profile) < self.value_cap:
            profile[value] += 1
        else:
            self._overflow[record.pc] = self._overflow.get(record.pc, 0) + 1

    def report(self) -> ValueProfileReport:
        covered = [0] * 5
        total_repetition = 0
        for pc, profile in self._profiles.items():
            # Repetition for this load: every occurrence beyond the first
            # per distinct value.  Overflowed (uncapped) values are treated
            # as unique, which can only understate coverage.
            repetition = sum(count - 1 for count in profile.values())
            total_repetition += repetition
            top = profile.most_common(5)
            for k in range(5):
                covered[k] += sum(count - 1 for _, count in top[: k + 1])
        coverage = tuple(
            (100.0 * covered[k] / total_repetition if total_repetition else 0.0)
            for k in range(5)
        )
        return ValueProfileReport(
            top_k_coverage=coverage,  # type: ignore[arg-type]
            loads_profiled=self.loads_profiled,
            load_repetition=total_repetition,
            static_loads=len(self._profiles),
        )
