"""Global source-slice analysis (the paper's Section 5.1, Table 3).

Every value in the machine is tagged with the ultimate *source* of the
dynamic slice it belongs to:

* ``external input`` — produced (transitively) from a read syscall;
* ``global init data`` — originates at a load of statically-initialized
  data-segment memory;
* ``program internals`` — originates from immediates (and values computed
  only from immediates);
* ``uninit`` — an uninitialized register or memory word.

Tags propagate along dataflow.  Where slices meet, the paper's supersede
rule applies: ``external > global-init > internal > uninit`` — encoded
here as a numeric priority so "combine" is just ``max``.

Each dynamic instruction is categorized by the supersede of its input
tags, and the analyzer reports, per category: overall share, share of
repeated instructions, and propensity (fraction of the category that is
repeated) — the three panels of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.asm.program import Program
from repro.isa.convention import DATA_BASE, segment_of
from repro.isa.instructions import Format, Kind
from repro.isa.registers import GP, NUM_REGISTERS, RA, SP, V0, ZERO
from repro.sim.events import StepRecord, SyscallEvent
from repro.sim.observer import Analyzer
from repro.core.repetition import RepetitionTracker

# Tag priorities: the supersede rule is combine-by-max.
UNINIT = 0
INTERNAL = 1
GLOBAL_INIT = 2
EXTERNAL = 3

TAG_NAMES = {
    UNINIT: "uninit",
    INTERNAL: "internals",
    GLOBAL_INIT: "global init data",
    EXTERNAL: "external input",
}

#: Display order used by Table 3.
CATEGORY_ORDER = ("internals", "global init data", "external input", "uninit")


@dataclass
class CategoryStats:
    """Counters for one source category."""

    total: int = 0
    repeated: int = 0

    @property
    def propensity_pct(self) -> float:
        return 100.0 * self.repeated / self.total if self.total else 0.0


@dataclass
class GlobalAnalysisReport:
    """Table 3: per-category overall / repeated / propensity numbers."""

    categories: Dict[str, CategoryStats]
    dynamic_total: int
    dynamic_repeated: int

    def overall_pct(self, name: str) -> float:
        stats = self.categories[name]
        return 100.0 * stats.total / self.dynamic_total if self.dynamic_total else 0.0

    def repeated_pct(self, name: str) -> float:
        stats = self.categories[name]
        return 100.0 * stats.repeated / self.dynamic_repeated if self.dynamic_repeated else 0.0

    def propensity_pct(self, name: str) -> float:
        return self.categories[name].propensity_pct


class GlobalSourceAnalyzer(Analyzer):
    """Propagates source tags and bins instructions into Table 3 categories.

    Needs a :class:`RepetitionTracker` attached *earlier* in the analyzer
    list so the per-step repetition flag is fresh.
    """

    def __init__(self, tracker: Optional[RepetitionTracker] = None) -> None:
        self.tracker = tracker
        self.reg_tags = [UNINIT] * NUM_REGISTERS
        self.hilo_tag = UNINIT
        #: Word-address -> tag, for memory written during execution.
        self.mem_tags: Dict[int, int] = {}
        self.stats = {name: CategoryStats() for name in TAG_NAMES.values()}
        self.dynamic_total = 0
        self.dynamic_repeated = 0
        self._initialized_words: frozenset = frozenset()

    def on_start(self, program: Program) -> None:
        # The loader sets $zero/$gp/$sp to program constants.
        self.reg_tags[ZERO] = INTERNAL
        self.reg_tags[GP] = INTERNAL
        self.reg_tags[SP] = INTERNAL
        self.reg_tags[RA] = INTERNAL
        init_flags = program.data_initialized
        base = program.data_base
        initialized = set()
        for offset in range(0, len(init_flags) - 3, 4):
            if any(init_flags[offset : offset + 4]):
                initialized.add(base + offset)
        self._initialized_words = frozenset(initialized)

    # -- tag helpers -------------------------------------------------------

    def _memory_tag(self, address: int) -> int:
        word = address & ~3
        tag = self.mem_tags.get(word)
        if tag is not None:
            return tag
        if segment_of(word) == "data" and word in self._initialized_words:
            return GLOBAL_INIT
        return UNINIT

    # -- event handlers ------------------------------------------------------

    def on_step(self, record: StepRecord) -> None:
        instr = record.instr
        op = instr.op
        kind = op.kind
        reg_tags = self.reg_tags

        if kind == Kind.LOAD:
            tag = max(reg_tags[instr.rs], self._memory_tag(record.mem_addr))  # type: ignore[arg-type]
            reg_tags[instr.rt] = tag if instr.rt != ZERO else INTERNAL
        elif kind == Kind.STORE:
            tag = max(reg_tags[instr.rt], reg_tags[instr.rs])
            self.mem_tags[record.mem_addr & ~3] = reg_tags[instr.rt]  # type: ignore[operator]
        elif kind == Kind.MULDIV:
            tag = max(reg_tags[instr.rs], reg_tags[instr.rt])
            self.hilo_tag = tag
        elif kind == Kind.MFHILO:
            tag = self.hilo_tag
            if instr.rd != ZERO:
                reg_tags[instr.rd] = tag
        elif kind == Kind.SYSCALL:
            # Category from $v0 (service number) and $a0 (argument); the
            # external tagging of read results happens in on_syscall.
            tag = max(reg_tags[V0], reg_tags[4])
        elif kind in (Kind.JUMP, Kind.NOP):
            tag = INTERNAL
        elif kind == Kind.CALL:
            tag = INTERNAL if op.fmt == Format.J else reg_tags[instr.rs]
            link = instr.dest_register()
            if link:
                reg_tags[link] = INTERNAL
        elif kind == Kind.JUMP_REG:
            tag = reg_tags[instr.rs]
        else:
            sources = instr.source_registers()
            if sources:
                tag = reg_tags[sources[0]]
                for reg in sources[1:]:
                    other = reg_tags[reg]
                    if other > tag:
                        tag = other
            else:
                tag = INTERNAL  # immediate-only (lui)
            dest = instr.dest_register()
            if dest:
                reg_tags[dest] = tag

        stats = self.stats[TAG_NAMES[tag]]
        stats.total += 1
        self.dynamic_total += 1
        if self.tracker is not None and self.tracker.was_repeated(record):
            stats.repeated += 1
            self.dynamic_repeated += 1

    def on_syscall(self, event: SyscallEvent) -> None:
        if event.is_input and event.result is not None:
            self.reg_tags[V0] = EXTERNAL
        elif event.result is not None:
            self.reg_tags[V0] = INTERNAL  # sbrk returns a program constant

    # -- reporting ------------------------------------------------------------

    def report(self) -> GlobalAnalysisReport:
        return GlobalAnalysisReport(
            categories=dict(self.stats),
            dynamic_total=self.dynamic_total,
            dynamic_repeated=self.dynamic_repeated,
        )
