"""Value prediction (the paper's Section 7 companion mechanism).

Section 7 discusses two hardware approaches to exploiting repetition:
dynamic instruction *reuse* (:mod:`repro.core.reuse_buffer`) and *value
prediction* [Lipasti & Shen; Sazeides & Smith; Wang & Franklin].  The
paper argues its characterization "could be exploited to significantly
improve" such predictors; this module provides the predictors so that
claim can be explored:

* :class:`LastValuePredictor` — predicts an instruction's last result
  (Lipasti/Shen-style), with 2-bit confidence counters;
* :class:`StridePredictor` — last value + detected stride;
* :class:`ContextPredictor` — order-N finite-context-method predictor
  (Sazeides & Smith): a value-history hash indexes a second-level value
  table;
* :class:`HybridPredictor` — stride + context with confidence-based
  selection (Wang & Franklin's flavour).

:class:`ValuePredictionAnalyzer` drives any predictor over the execution
stream and reports accuracy over value-producing instructions, split by
whether the instruction instance was repeated (taking the shared
:class:`RepetitionTracker`, like the other repetition-splitting
analyzers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.repetition import RepetitionTracker
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer


class ValuePredictor:
    """Interface: predict the next result of the instruction at ``pc``."""

    name = "base"

    def predict(self, pc: int) -> Optional[int]:
        """Predicted value, or None when not confident."""
        raise NotImplementedError

    def update(self, pc: int, value: int) -> None:
        """Train with the actual produced value."""
        raise NotImplementedError


def _confidence_bump(counter: int, correct: bool, maximum: int = 3) -> int:
    if correct:
        return min(counter + 1, maximum)
    return max(counter - 1, 0)


class LastValuePredictor(ValuePredictor):
    """Predicts the last seen value, gated by a 2-bit confidence counter."""

    name = "last-value"

    def __init__(self, entries: int = 8192, threshold: int = 2) -> None:
        self.entries = entries
        self.threshold = threshold
        #: pc-indexed: value, confidence.
        self._table: Dict[int, List[int]] = {}

    def _slot(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.get(self._slot(pc))
        if entry is None or entry[1] < self.threshold:
            return None
        return entry[0]

    def update(self, pc: int, value: int) -> None:
        slot = self._slot(pc)
        entry = self._table.get(slot)
        if entry is None:
            self._table[slot] = [value, 1]
            return
        entry[1] = _confidence_bump(entry[1], entry[0] == value)
        entry[0] = value


class StridePredictor(ValuePredictor):
    """Predicts last value + stride (classifies constant sequences too:
    a zero stride degenerates to last-value prediction)."""

    name = "stride"

    def __init__(self, entries: int = 8192, threshold: int = 2) -> None:
        self.entries = entries
        self.threshold = threshold
        #: slot -> [last, stride, confidence]
        self._table: Dict[int, List[int]] = {}

    def _slot(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> Optional[int]:
        entry = self._table.get(self._slot(pc))
        if entry is None or entry[2] < self.threshold:
            return None
        return (entry[0] + entry[1]) & 0xFFFFFFFF

    def update(self, pc: int, value: int) -> None:
        slot = self._slot(pc)
        entry = self._table.get(slot)
        if entry is None:
            self._table[slot] = [value, 0, 0]
            return
        new_stride = (value - entry[0]) & 0xFFFFFFFF
        predicted = (entry[0] + entry[1]) & 0xFFFFFFFF
        entry[2] = _confidence_bump(entry[2], predicted == value)
        if new_stride != entry[1]:
            # Re-learn the stride; confidence was already penalized if
            # the prediction missed.
            entry[1] = new_stride
        entry[0] = value


class ContextPredictor(ValuePredictor):
    """Order-N finite context method predictor (Sazeides & Smith).

    Level 1 keeps the last ``order`` values per static instruction;
    level 2 maps a hash of that history to the value that followed it
    last time, with a confidence counter.
    """

    name = "context"

    def __init__(
        self, entries: int = 8192, order: int = 2, level2_entries: int = 65536,
        threshold: int = 1,
    ) -> None:
        self.entries = entries
        self.order = order
        self.level2_entries = level2_entries
        self.threshold = threshold
        self._history: Dict[int, Tuple[int, ...]] = {}
        #: level-2: hash -> [value, confidence]
        self._values: Dict[int, List[int]] = {}

    def _slot(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def _hash(self, pc: int, history: Tuple[int, ...]) -> int:
        mixed = pc
        for value in history:
            mixed = (mixed * 0x9E3779B1 + value) & 0xFFFFFFFF
        return mixed % self.level2_entries

    def predict(self, pc: int) -> Optional[int]:
        history = self._history.get(self._slot(pc))
        if history is None or len(history) < self.order:
            return None
        entry = self._values.get(self._hash(pc, history))
        if entry is None or entry[1] < self.threshold:
            return None
        return entry[0]

    def update(self, pc: int, value: int) -> None:
        slot = self._slot(pc)
        history = self._history.get(slot, ())
        if len(history) >= self.order:
            key = self._hash(pc, history)
            entry = self._values.get(key)
            if entry is None:
                self._values[key] = [value, 1]
            else:
                entry[1] = _confidence_bump(entry[1], entry[0] == value)
                entry[0] = value
        self._history[slot] = (history + (value,))[-self.order :]


class HybridPredictor(ValuePredictor):
    """Stride + context hybrid with per-pc chooser counters."""

    name = "hybrid"

    def __init__(self, entries: int = 8192, order: int = 2) -> None:
        self.stride = StridePredictor(entries)
        self.context = ContextPredictor(entries, order=order)
        #: chooser: >=2 prefers context.
        self._chooser: Dict[int, int] = {}
        self.entries = entries

    def _slot(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> Optional[int]:
        from_context = self.context.predict(pc)
        from_stride = self.stride.predict(pc)
        if from_context is None:
            return from_stride
        if from_stride is None:
            return from_context
        return from_context if self._chooser.get(self._slot(pc), 2) >= 2 else from_stride

    def update(self, pc: int, value: int) -> None:
        from_context = self.context.predict(pc)
        from_stride = self.stride.predict(pc)
        if from_context is not None and from_stride is not None:
            slot = self._slot(pc)
            counter = self._chooser.get(slot, 2)
            if (from_context == value) != (from_stride == value):
                counter = _confidence_bump(counter, from_context == value)
                self._chooser[slot] = counter
        self.stride.update(pc, value)
        self.context.update(pc, value)


@dataclass
class ValuePredictionReport:
    """Accuracy of one predictor over value-producing instructions."""

    predictor: str
    eligible: int
    attempted: int
    correct: int
    correct_on_repeated: int
    repeated_eligible: int

    @property
    def coverage_pct(self) -> float:
        """Share of eligible instructions the predictor attempted."""
        return 100.0 * self.attempted / self.eligible if self.eligible else 0.0

    @property
    def accuracy_pct(self) -> float:
        """Correct predictions among attempted ones."""
        return 100.0 * self.correct / self.attempted if self.attempted else 0.0

    @property
    def correct_of_all_pct(self) -> float:
        """Correct predictions over all eligible instructions."""
        return 100.0 * self.correct / self.eligible if self.eligible else 0.0

    @property
    def repeated_capture_pct(self) -> float:
        """Correct predictions over the *repeated* eligible instructions
        (comparable to Table 10's reuse-capture column)."""
        if not self.repeated_eligible:
            return 0.0
        return 100.0 * self.correct_on_repeated / self.repeated_eligible


class ValuePredictionAnalyzer(Analyzer):
    """Evaluates a value predictor over the execution stream.

    Eligible instructions are those producing a register value (loads,
    ALU ops, ...).  Pass the shared tracker to also split accuracy over
    repeated instances; attach the tracker earlier in the analyzer list.
    """

    def __init__(
        self, predictor: ValuePredictor, tracker: Optional[RepetitionTracker] = None
    ) -> None:
        self.predictor = predictor
        self.tracker = tracker
        self.eligible = 0
        self.attempted = 0
        self.correct = 0
        self.correct_on_repeated = 0
        self.repeated_eligible = 0

    def on_step(self, record: StepRecord) -> None:
        if record.dest_reg is None or record.dest_reg == 0:
            return
        self.eligible += 1
        repeated = self.tracker is not None and self.tracker.was_repeated(record)
        if repeated:
            self.repeated_eligible += 1
        value = record.dest_value
        predicted = self.predictor.predict(record.pc)
        if predicted is not None:
            self.attempted += 1
            if predicted == value:
                self.correct += 1
                if repeated:
                    self.correct_on_repeated += 1
        self.predictor.update(record.pc, value)

    def report(self) -> ValuePredictionReport:
        return ValuePredictionReport(
            predictor=self.predictor.name,
            eligible=self.eligible,
            attempted=self.attempted,
            correct=self.correct,
            correct_on_repeated=self.correct_on_repeated,
            repeated_eligible=self.repeated_eligible,
        )
