"""Local (within-function) analysis (the paper's Section 5.3).

Dynamic instructions are binned into the paper's ten categories using two
criteria:

*Task-based* (identified structurally, highest precedence):

* ``prologue`` — stores of still-uninitialized (callee-saved) registers
  to the stack, and stack-frame allocation (``addiu $sp, $sp, -N``);
* ``epilogue`` — loads that read back prologue-saved slots, and frame
  deallocation;
* ``return`` — ``jr $ra``;
* remaining categories come from per-frame *source tags* below.

*Source-based* (dataflow tags, reset at every function entry, combined
with the paper's local supersede rule ``argument > return value >
(global, heap) > function internal``):

* ``arguments`` — slices rooted at the incoming ``$a`` registers;
* ``return values`` — slices rooted at ``$v0`` after a call (or after a
  value-returning syscall, which models the C library's getchar/malloc);
* ``global`` / ``heap`` — slices rooted at loads from the data segment /
  the heap;
* ``glb_addr_calc`` — slices computing global addresses: operations on
  ``$gp`` and ``lui``/``ori`` pairs that synthesize data-segment
  addresses;
* ``SP`` — arithmetic on the stack pointer (local address formation);
* ``function internals`` — slices rooted only at immediates.

The tag priorities encode the supersede rule so combining is ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.program import FunctionInfo, Program
from repro.isa.convention import DATA_BASE, HEAP_BASE, segment_of
from repro.isa.instructions import Format, Kind
from repro.isa.registers import A0, GP, NUM_REGISTERS, RA, SP, V0, ZERO
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.observer import Analyzer
from repro.core.repetition import RepetitionTracker

# Local source tags, priority-ordered for the supersede rule (max-combine):
# argument > return value > (heap, global) > glb-addr > sp-addr > internal.
UNINIT = 0
INTERNAL = 1
SP_ADDR = 2
GLB_ADDR = 3
GLOBAL = 4
HEAP = 5
RETVAL = 6
ARG = 7

_TAG_CATEGORY = {
    UNINIT: "function internals",
    INTERNAL: "function internals",
    SP_ADDR: "SP",
    GLB_ADDR: "glb_addr_calc",
    GLOBAL: "global",
    HEAP: "heap",
    RETVAL: "return values",
    ARG: "arguments",
}

#: Row order of Tables 5/6/7.
CATEGORY_ORDER = (
    "prologue",
    "epilogue",
    "function internals",
    "glb_addr_calc",
    "return",
    "SP",
    "return values",
    "arguments",
    "global",
    "heap",
)


class _LocalFrame:
    """Per-activation tag state."""

    __slots__ = ("function", "reg_tags", "hilo_tag", "prologue_slots")

    def __init__(self, function: Optional[FunctionInfo], args: Tuple[int, ...]) -> None:
        self.function = function
        tags = [UNINIT] * NUM_REGISTERS
        tags[ZERO] = INTERNAL
        tags[GP] = GLB_ADDR
        tags[SP] = SP_ADDR
        argc = function.num_args if function is not None else 0
        for index in range(argc):
            tags[A0 + index] = ARG
        self.reg_tags = tags
        self.hilo_tag = UNINIT
        #: Stack word addresses written by prologue stores of this frame.
        self.prologue_slots: set = set()


@dataclass
class CategoryStats:
    total: int = 0
    repeated: int = 0

    @property
    def propensity_pct(self) -> float:
        return 100.0 * self.repeated / self.total if self.total else 0.0


@dataclass
class ProEpiContributor:
    """Table 9 row: one function's prologue+epilogue contribution."""

    name: str
    static_size: int
    repeated: int
    total: int


@dataclass
class LocalAnalysisReport:
    """Tables 5, 6, 7 and the Table 9 contributor list."""

    categories: Dict[str, CategoryStats]
    dynamic_total: int
    dynamic_repeated: int
    prologue_epilogue_by_function: Dict[str, ProEpiContributor] = field(
        repr=False, default_factory=dict
    )

    def overall_pct(self, name: str) -> float:
        stats = self.categories[name]
        return 100.0 * stats.total / self.dynamic_total if self.dynamic_total else 0.0

    def repeated_pct(self, name: str) -> float:
        stats = self.categories[name]
        return 100.0 * stats.repeated / self.dynamic_repeated if self.dynamic_repeated else 0.0

    def propensity_pct(self, name: str) -> float:
        return self.categories[name].propensity_pct

    def top_prologue_contributors(self, count: int = 5) -> List[ProEpiContributor]:
        """Table 9: top functions by prologue+epilogue repetition."""
        contributors = sorted(
            self.prologue_epilogue_by_function.values(),
            key=lambda c: c.repeated,
            reverse=True,
        )
        return contributors[:count]

    def prologue_coverage_pct(self, count: int = 5) -> float:
        """Table 9 'coverage': share of prologue+epilogue repetition from
        the top ``count`` functions."""
        total = sum(c.repeated for c in self.prologue_epilogue_by_function.values())
        if not total:
            return 0.0
        top = self.top_prologue_contributors(count)
        return 100.0 * sum(c.repeated for c in top) / total


class LocalAnalyzer(Analyzer):
    """Bins instructions into the paper's local categories.

    Needs a :class:`RepetitionTracker` attached earlier in the analyzer
    list (pass it in) for the repeated-per-category split; without one,
    only the overall breakdown (Table 5) is populated.
    """

    def __init__(self, tracker: Optional[RepetitionTracker] = None) -> None:
        self.tracker = tracker
        self.stats = {name: CategoryStats() for name in CATEGORY_ORDER}
        self.dynamic_total = 0
        self.dynamic_repeated = 0
        self._stack: List[_LocalFrame] = [_LocalFrame(None, ())]
        #: Stack-segment word address -> local tag of the stored value.
        self._stack_mem_tags: Dict[int, int] = {}
        self._program: Optional[Program] = None
        #: function name -> [prologue+epilogue total, repeated].
        self._proepi: Dict[str, List[int]] = {}

    def on_start(self, program: Program) -> None:
        self._program = program

    # -- call boundaries -----------------------------------------------------

    def on_call(self, event: CallEvent) -> None:
        self._stack.append(_LocalFrame(event.function, event.args))

    def on_return(self, event: ReturnEvent) -> None:
        if len(self._stack) > 1:
            self._stack.pop()
        # In the caller, $v0 now carries a returned value.
        self._stack[-1].reg_tags[V0] = RETVAL

    def on_syscall(self, event: SyscallEvent) -> None:
        # A value-returning syscall plays the role of a C-library call
        # (getchar/malloc): its result starts a return-value slice.
        if event.result is not None:
            self._stack[-1].reg_tags[V0] = RETVAL

    # -- classification --------------------------------------------------------

    def on_step(self, record: StepRecord) -> None:
        frame = self._stack[-1]
        tags = frame.reg_tags
        instr = record.instr
        op = instr.op
        kind = op.kind
        category: str

        if kind == Kind.STORE:
            address = record.mem_addr
            value_tag = tags[instr.rt]
            segment = segment_of(address)  # type: ignore[arg-type]
            if value_tag == UNINIT and segment == "stack":
                category = "prologue"
                frame.prologue_slots.add(address & ~3)
                self._stack_mem_tags[address & ~3] = UNINIT  # type: ignore[operator]
            else:
                # The store belongs to the *data* slice it writes; the
                # base address (SP/gp-derived) does not reclassify it.
                category = _TAG_CATEGORY[value_tag]
                if segment == "stack":
                    self._stack_mem_tags[address & ~3] = value_tag  # type: ignore[operator]
        elif kind == Kind.LOAD:
            address = record.mem_addr
            word = address & ~3  # type: ignore[operator]
            segment = segment_of(address)  # type: ignore[arg-type]
            if segment == "data":
                tag = GLOBAL
                category = "global"
            elif segment == "heap":
                tag = HEAP
                category = "heap"
            elif word in frame.prologue_slots:
                tag = UNINIT
                category = "epilogue"
            else:
                tag = self._stack_mem_tags.get(word, UNINIT)
                category = _TAG_CATEGORY[tag]
            if instr.rt != ZERO:
                tags[instr.rt] = tag
        elif kind == Kind.ALU and instr.rt == SP and instr.rs == SP and op.name == "addiu":
            # Stack frame allocation / deallocation.
            category = "prologue" if instr.imm < 0 else "epilogue"
        elif kind == Kind.JUMP_REG:
            if instr.rs == RA:
                category = "return"
            else:
                category = _TAG_CATEGORY[tags[instr.rs]]
        elif kind in (Kind.JUMP, Kind.NOP):
            category = "function internals"
        elif kind == Kind.CALL:
            if op.fmt == Format.J:
                category = "function internals"
            else:
                category = _TAG_CATEGORY[tags[instr.rs]]
            link = instr.dest_register()
            if link:
                tags[link] = INTERNAL
        elif kind == Kind.MULDIV:
            tag = max(tags[instr.rs], tags[instr.rt])
            frame.hilo_tag = tag
            category = _TAG_CATEGORY[tag]
        elif kind == Kind.MFHILO:
            tag = frame.hilo_tag
            category = _TAG_CATEGORY[tag]
            if instr.rd != ZERO:
                tags[instr.rd] = tag
        elif kind == Kind.SYSCALL:
            category = _TAG_CATEGORY[max(tags[V0], tags[A0])]
        else:
            tag = INTERNAL
            sources = instr.source_registers()
            if sources:
                tag = tags[sources[0]]
                for reg in sources[1:]:
                    other = tags[reg]
                    if other > tag:
                        tag = other
            if op.name == "lui" and DATA_BASE <= record.dest_value < HEAP_BASE:
                # Synthesizing the upper half of a global address.
                tag = GLB_ADDR
            if tag == UNINIT:
                tag = INTERNAL
            category = _TAG_CATEGORY[tag]
            dest = instr.dest_register()
            if dest:
                tags[dest] = tag

        stats = self.stats[category]
        stats.total += 1
        self.dynamic_total += 1
        repeated = self.tracker is not None and self.tracker.was_repeated(record)
        if repeated:
            stats.repeated += 1
            self.dynamic_repeated += 1
        if category in ("prologue", "epilogue") and frame.function is not None:
            entry = self._proepi.get(frame.function.name)
            if entry is None:
                entry = [0, 0]
                self._proepi[frame.function.name] = entry
            entry[0] += 1
            if repeated:
                entry[1] += 1

    # -- reporting ------------------------------------------------------------

    def report(self) -> LocalAnalysisReport:
        contributors: Dict[str, ProEpiContributor] = {}
        for name, (total, repeated) in self._proepi.items():
            size = 0
            if self._program is not None:
                info = self._program.function_by_name(name)
                size = info.size if info is not None else 0
            contributors[name] = ProEpiContributor(name, size, repeated, total)
        return LocalAnalysisReport(
            categories=dict(self.stats),
            dynamic_total=self.dynamic_total,
            dynamic_repeated=self.dynamic_repeated,
            prologue_epilogue_by_function=contributors,
        )
