"""Dynamic instruction reuse buffer (the paper's Section 7, Table 10).

Models the scheme of Sodani & Sohi's "Dynamic Instruction Reuse" (ISCA
'97) at the fidelity Table 10 needs: a PC-indexed set-associative buffer
whose entries hold one dynamic instance (operand values and results) of a
static instruction.  An instruction *reuses* when it hits an entry with
matching PC and operand values — by determinism its results then equal
the buffered results, so every reuse is a repetition; the buffer simply
cannot capture all of it (capacity, associativity conflicts, one instance
per entry, load invalidations).

Loads are entered with their address operands as inputs and the loaded
value as result; a store to a buffered load's address invalidates the
entry, keeping reuse semantically safe (the paper's scheme ``Sv``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import metrics as obs_metrics
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer

#: Paper configuration: 8K entries, 4-way set associative.
DEFAULT_ENTRIES = 8192
DEFAULT_ASSOCIATIVITY = 4


class _Entry:
    __slots__ = ("pc", "inputs", "outputs", "mem_word")

    def __init__(
        self,
        pc: int,
        inputs: Tuple[int, ...],
        outputs: Tuple[int, ...],
        mem_word: Optional[int],
    ) -> None:
        self.pc = pc
        self.inputs = inputs
        self.outputs = outputs
        self.mem_word = mem_word


@dataclass
class ReuseBufferReport:
    """Table 10 numbers (the repeated-instruction share is computed by the
    harness against the repetition tracker's totals)."""

    dynamic_total: int
    reuse_hits: int
    invalidations: int
    #: Entries displaced by capacity pressure (telemetry; not a paper number).
    evictions: int = 0
    #: Entries resident when the run finished (telemetry).
    occupancy: int = 0

    @property
    def hit_pct(self) -> float:
        """Table 10 column 2: % of all dynamic instructions reused."""
        return 100.0 * self.reuse_hits / self.dynamic_total if self.dynamic_total else 0.0

    def repeated_share_pct(self, dynamic_repeated: int) -> float:
        """Table 10 column 3: % of repeated instructions captured."""
        return 100.0 * self.reuse_hits / dynamic_repeated if dynamic_repeated else 0.0


class ReuseBuffer(Analyzer):
    """A PC-indexed, LRU, set-associative reuse buffer."""

    def __init__(
        self,
        entries: int = DEFAULT_ENTRIES,
        associativity: int = DEFAULT_ASSOCIATIVITY,
    ) -> None:
        if entries % associativity:
            raise ValueError("entries must be a multiple of associativity")
        self.num_sets = entries // associativity
        self.associativity = associativity
        #: Sets are MRU-first lists.
        self._sets: List[List[_Entry]] = [[] for _ in range(self.num_sets)]
        #: memory word -> entries caching a load of that word.
        self._by_word: Dict[int, Set[_Entry]] = {}
        self.dynamic_total = 0
        self.reuse_hits = 0
        self.invalidations = 0
        self.evictions = 0
        #: Per-step flag for composition (e.g. the timing model): True iff
        #: the most recent step reused; valid for that step only.
        self.last_was_hit = False
        self.last_index = -1

    def was_reused(self, record: StepRecord) -> bool:
        """Reuse flag for ``record`` (must be the most recent step)."""
        if record.index != self.last_index:
            raise RuntimeError(
                "ReuseBuffer.was_reused() queried out of order; attach the "
                "buffer before dependent analyzers"
            )
        return self.last_was_hit

    def _set_for(self, pc: int) -> List[_Entry]:
        return self._sets[(pc >> 2) % self.num_sets]

    def _drop_word_link(self, entry: _Entry) -> None:
        if entry.mem_word is None:
            return
        linked = self._by_word.get(entry.mem_word)
        if linked is not None:
            linked.discard(entry)
            if not linked:
                del self._by_word[entry.mem_word]

    def on_step(self, record: StepRecord) -> None:
        self.dynamic_total += 1
        self.last_index = record.index
        self.last_was_hit = False
        pc = record.pc
        bucket = self._set_for(pc)

        # Stores invalidate any buffered load of the written word (before
        # the store itself could be entered, order is irrelevant for it).
        if record.store_value is not None:
            word = record.mem_addr & ~3  # type: ignore[operator]
            linked = self._by_word.pop(word, None)
            if linked:
                for entry in linked:
                    entry_set = self._set_for(entry.pc)
                    if entry in entry_set:
                        entry_set.remove(entry)
                        self.invalidations += 1

        for index, entry in enumerate(bucket):
            if entry.pc == pc and entry.inputs == record.inputs:
                # Reuse hit; refresh LRU position.
                if index:
                    bucket.insert(0, bucket.pop(index))
                self.reuse_hits += 1
                self.last_was_hit = True
                return

        # Miss: insert this instance, evicting the LRU entry if needed.
        mem_word = None
        if record.instr.is_load:
            mem_word = record.mem_addr & ~3  # type: ignore[operator]
        new_entry = _Entry(pc, record.inputs, record.outputs, mem_word)
        if len(bucket) >= self.associativity:
            victim = bucket.pop()
            self._drop_word_link(victim)
            self.evictions += 1
        bucket.insert(0, new_entry)
        if mem_word is not None:
            self._by_word.setdefault(mem_word, set()).add(new_entry)

    @property
    def occupancy(self) -> int:
        """Entries currently resident across all sets."""
        return sum(len(bucket) for bucket in self._sets)

    def on_finish(self) -> None:
        registry = obs_metrics.REGISTRY
        if registry.enabled:
            registry.counter("reuse.probes").inc(self.dynamic_total)
            registry.counter("reuse.hits").inc(self.reuse_hits)
            registry.counter("reuse.invalidations").inc(self.invalidations)
            registry.counter("reuse.evictions").inc(self.evictions)
            registry.gauge("reuse.occupancy").set(self.occupancy)

    def report(self) -> ReuseBufferReport:
        return ReuseBufferReport(
            dynamic_total=self.dynamic_total,
            reuse_hits=self.reuse_hits,
            invalidations=self.invalidations,
            evictions=self.evictions,
            occupancy=self.occupancy,
        )
