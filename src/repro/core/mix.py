"""Dynamic instruction-mix characterization.

Section 2 of the paper notes the total analysis "can also be carried out
for different types of instructions, e.g., loads, stores, ALU
operations".  This analyzer provides that per-class view plus the
standard workload-characterization statistics (mix percentages, branch
taken rate, call depth), and — when composed with the shared
:class:`RepetitionTracker` — per-class repetition propensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.repetition import RepetitionTracker
from repro.isa.instructions import Format, Kind
from repro.sim.events import CallEvent, ReturnEvent, StepRecord
from repro.sim.observer import Analyzer

#: Coarse classes used for the mix breakdown, in display order.
MIX_CLASSES = (
    "alu",
    "load",
    "store",
    "branch",
    "jump",
    "call",
    "return",
    "muldiv",
    "syscall",
)

_KIND_TO_CLASS = {
    Kind.ALU: "alu",
    Kind.NOP: "alu",
    Kind.LOAD: "load",
    Kind.STORE: "store",
    Kind.BRANCH: "branch",
    Kind.JUMP: "jump",
    Kind.CALL: "call",
    Kind.MULDIV: "muldiv",
    Kind.MFHILO: "muldiv",
    Kind.SYSCALL: "syscall",
}


@dataclass
class ClassStats:
    total: int = 0
    repeated: int = 0

    @property
    def propensity_pct(self) -> float:
        return 100.0 * self.repeated / self.total if self.total else 0.0


@dataclass
class MixReport:
    """Per-class mix plus control-flow and call-depth statistics."""

    classes: Dict[str, ClassStats]
    dynamic_total: int
    branches: int
    branches_taken: int
    max_call_depth: int
    dynamic_calls: int

    def share_pct(self, name: str) -> float:
        stats = self.classes[name]
        return 100.0 * stats.total / self.dynamic_total if self.dynamic_total else 0.0

    @property
    def branch_taken_pct(self) -> float:
        return 100.0 * self.branches_taken / self.branches if self.branches else 0.0

    @property
    def loads_per_store(self) -> float:
        stores = self.classes["store"].total
        return self.classes["load"].total / stores if stores else 0.0


class InstructionMixAnalyzer(Analyzer):
    """Classifies every retired instruction into a coarse mix class."""

    def __init__(self, tracker: Optional[RepetitionTracker] = None) -> None:
        self.tracker = tracker
        self.classes = {name: ClassStats() for name in MIX_CLASSES}
        self.dynamic_total = 0
        self.branches = 0
        self.branches_taken = 0
        self.max_call_depth = 0
        self.dynamic_calls = 0
        self._depth = 0

    def on_step(self, record: StepRecord) -> None:
        instr = record.instr
        kind = instr.op.kind
        if kind == Kind.JUMP_REG:
            name = "return" if instr.is_return else "jump"
        else:
            name = _KIND_TO_CLASS[kind]
        stats = self.classes[name]
        stats.total += 1
        self.dynamic_total += 1
        if kind == Kind.BRANCH:
            self.branches += 1
            if record.outputs and record.outputs[0]:
                self.branches_taken += 1
        if self.tracker is not None and self.tracker.was_repeated(record):
            stats.repeated += 1

    def on_call(self, event: CallEvent) -> None:
        self._depth += 1
        if not event.warmup:
            self.dynamic_calls += 1
        if self._depth > self.max_call_depth:
            self.max_call_depth = self._depth

    def on_return(self, event: ReturnEvent) -> None:
        if self._depth:
            self._depth -= 1

    def report(self) -> MixReport:
        return MixReport(
            classes=dict(self.classes),
            dynamic_total=self.dynamic_total,
            branches=self.branches,
            branches_taken=self.branches_taken,
            max_call_depth=self.max_call_depth,
            dynamic_calls=self.dynamic_calls,
        )
