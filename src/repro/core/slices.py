"""Dynamic dataflow slice extraction.

The paper's source analyses *tag* dynamic slices (Section 2: "we base
our decisions and analysis solely on data dependence relationships").
This module materializes those slices: :class:`SliceRecorder` logs every
dynamic instruction's data dependences (register def-use plus memory
store-to-load edges), and :func:`backward_slice` recovers the exact set
of dynamic instructions a value was computed from — the paper's
"dynamic program slice" as an inspectable object.

Control dependences are deliberately excluded, matching the paper
(footnote 1: "the notion of a control dependence is somewhat meaningless
in a dynamic instruction stream").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.isa.instructions import Format, Kind
from repro.isa.registers import A0, NUM_REGISTERS, V0, ZERO
from repro.sim.events import StepRecord, SyscallEvent
from repro.sim.observer import Analyzer


@dataclass(frozen=True)
class SliceNode:
    """One dynamic instruction in a slice."""

    index: int
    pc: int
    disassembly: str


@dataclass
class SliceReport:
    """A backward dynamic slice."""

    #: The step the slice was taken from.
    root_index: int
    #: All step indices in the slice (root included), ascending.
    indices: List[int]
    #: Distinct static instructions involved.
    static_pcs: Set[int]

    @property
    def dynamic_size(self) -> int:
        return len(self.indices)

    @property
    def static_size(self) -> int:
        return len(self.static_pcs)


class SliceRecorder(Analyzer):
    """Records per-step data dependences for later slice extraction.

    Dependences per dynamic instruction:

    * register inputs -> the step that last wrote each source register;
    * loads -> additionally the step that last stored to the word;
    * hi/lo readers -> the last mult/div;
    * syscall results are roots (external input has no producer).

    Memory cost is O(steps); intended for runs up to a few hundred
    thousand instructions (the scale of this reproduction).
    """

    def __init__(self) -> None:
        #: step index -> (pc, dep indices)
        self._log: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        self._disasm: Dict[int, str] = {}
        self._reg_writer = [0] * NUM_REGISTERS  # 0 = no producer
        self._hilo_writer = 0
        self._mem_writer: Dict[int, int] = {}
        self.last_index = 0
        #: (service, step index) for every syscall, in order — handy
        #: anchors for slicing ("what fed this output?").
        self.syscall_steps: List[Tuple[int, int]] = []

    # -- recording --------------------------------------------------------

    def on_step(self, record: StepRecord) -> None:
        instr = record.instr
        kind = instr.op.kind
        deps: List[int] = []

        if kind == Kind.MFHILO:
            if self._hilo_writer:
                deps.append(self._hilo_writer)
        elif kind == Kind.SYSCALL:
            # Syscalls read the service number ($v0) and argument ($a0).
            for reg in (V0, A0):
                writer = self._reg_writer[reg]
                if writer:
                    deps.append(writer)
        else:
            for reg in instr.source_registers():
                writer = self._reg_writer[reg]
                if writer:
                    deps.append(writer)
        if kind == Kind.LOAD:
            writer = self._mem_writer.get(record.mem_addr & ~3)  # type: ignore[operator]
            if writer:
                deps.append(writer)

        index = record.index
        self._log[index] = (record.pc, tuple(deps))
        if record.pc not in self._disasm:
            self._disasm[record.pc] = instr.disassemble()
        self.last_index = index

        # Update writer tables.
        if kind == Kind.STORE:
            self._mem_writer[record.mem_addr & ~3] = index  # type: ignore[operator]
        elif kind == Kind.MULDIV:
            self._hilo_writer = index
        dest = instr.dest_register()
        if dest and dest != ZERO:
            self._reg_writer[dest] = index

    def on_syscall(self, event: SyscallEvent) -> None:
        self.syscall_steps.append((event.service, self.last_index))
        if event.result is not None:
            # The syscall step itself was already logged; its $v0 value
            # becomes a fresh root for later consumers (handled because
            # the syscall step is the writer).
            self._reg_writer[V0] = self.last_index

    # -- extraction ----------------------------------------------------------

    def backward_slice(self, index: int) -> SliceReport:
        """The dynamic backward slice rooted at step ``index``."""
        if index not in self._log:
            raise KeyError(f"step {index} was not recorded")
        seen: Set[int] = {index}
        queue = deque([index])
        while queue:
            current = queue.popleft()
            _, deps = self._log[current]
            for dep in deps:
                if dep not in seen:
                    seen.add(dep)
                    queue.append(dep)
        indices = sorted(seen)
        return SliceReport(
            root_index=index,
            indices=indices,
            static_pcs={self._log[i][0] for i in indices},
        )

    def slice_of_register(self, reg: int) -> Optional[SliceReport]:
        """Slice producing a register's current (final) value."""
        writer = self._reg_writer[reg]
        if not writer:
            return None
        return self.backward_slice(writer)

    def nodes(self, report: SliceReport) -> List[SliceNode]:
        """Human-readable nodes for a slice."""
        return [
            SliceNode(i, self._log[i][0], self._disasm[self._log[i][0]])
            for i in report.indices
        ]

    def dependencies_of(self, index: int) -> Tuple[int, ...]:
        return self._log[index][1]

    @property
    def recorded_steps(self) -> int:
        return len(self._log)
