"""The paper's analyses: repetition tracking and its source attribution.

* :class:`RepetitionTracker` — Section 3/4 methodology (Tables 1-2,
  Figures 1/3/4).
* :class:`GlobalSourceAnalyzer` — Section 5.1 global slice analysis
  (Table 3).
* :class:`FunctionAnalyzer` — Section 5.2/6 function-level analysis
  (Tables 4/8, Figure 5).
* :class:`LocalAnalyzer` — Section 5.3 within-function analysis
  (Tables 5/6/7/9).
* :class:`ReuseBuffer` — Section 7 hardware reuse buffer (Table 10).
* :class:`GlobalLoadValueProfiler` — Section 6 value specialization
  (Figure 6).

Composition rule: analyzers that split counts by "repeated" take the
shared :class:`RepetitionTracker`, which must be attached to the
simulator *before* them so its per-step flag is fresh.
"""

from repro.core.function_analysis import FunctionAnalysisReport, FunctionAnalyzer
from repro.core.global_analysis import GlobalAnalysisReport, GlobalSourceAnalyzer
from repro.core.local_analysis import LocalAnalysisReport, LocalAnalyzer
from repro.core.mix import InstructionMixAnalyzer, MixReport
from repro.core.repetition import (
    DEFAULT_BUFFER_CAPACITY,
    RepetitionReport,
    RepetitionTracker,
)
from repro.core.reuse_buffer import ReuseBuffer, ReuseBufferReport
from repro.core.slices import SliceRecorder, SliceReport
from repro.core.value_prediction import (
    ContextPredictor,
    HybridPredictor,
    LastValuePredictor,
    StridePredictor,
    ValuePredictionAnalyzer,
    ValuePredictionReport,
)
from repro.core.value_profile import GlobalLoadValueProfiler, ValueProfileReport

__all__ = [
    "ContextPredictor",
    "DEFAULT_BUFFER_CAPACITY",
    "FunctionAnalysisReport",
    "FunctionAnalyzer",
    "GlobalAnalysisReport",
    "GlobalLoadValueProfiler",
    "GlobalSourceAnalyzer",
    "HybridPredictor",
    "InstructionMixAnalyzer",
    "LastValuePredictor",
    "LocalAnalysisReport",
    "LocalAnalyzer",
    "MixReport",
    "RepetitionReport",
    "RepetitionTracker",
    "ReuseBuffer",
    "ReuseBufferReport",
    "SliceRecorder",
    "SliceReport",
    "StridePredictor",
    "ValuePredictionAnalyzer",
    "ValuePredictionReport",
    "ValueProfileReport",
]
