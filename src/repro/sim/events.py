"""Event records emitted by the functional simulator.

One :class:`StepRecord` is emitted per retired instruction; call, return,
and syscall boundaries get their own event types because the paper's
function-level and local analyses are driven by those boundaries.

The ``inputs``/``outputs`` tuples implement the paper's Section 2
definition of an instruction instance:

* ALU ops: inputs are the source register values, outputs the result.
* Loads: inputs are the *address* operands; the loaded value is an
  output (so a load reading a different value from the same address is
  **not** repeated).
* Stores: inputs are the stored value and the address operands; no
  outputs.
* Branches: inputs are the tested register values, output is the taken
  flag.
* ``mult``/``div``: outputs are (hi, lo); ``mfhi``/``mflo`` take the
  hi/lo value as input.

Immediates and shift amounts are part of the *static* instruction and
therefore excluded from the dynamic instance.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.asm.program import FunctionInfo
from repro.isa.instructions import Instruction


class StepRecord:
    """One retired dynamic instruction."""

    __slots__ = (
        "index",
        "pc",
        "instr",
        "inputs",
        "outputs",
        "dest_reg",
        "dest_value",
        "mem_addr",
        "store_value",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        instr: Instruction,
        inputs: Tuple[int, ...],
        outputs: Tuple[int, ...],
        dest_reg: Optional[int],
        dest_value: int,
        mem_addr: Optional[int],
        store_value: Optional[int],
    ) -> None:
        self.index = index
        self.pc = pc
        self.instr = instr
        self.inputs = inputs
        self.outputs = outputs
        self.dest_reg = dest_reg
        self.dest_value = dest_value
        self.mem_addr = mem_addr
        self.store_value = store_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Step #{self.index} {self.pc:#010x} {self.instr.disassemble()} "
            f"in={self.inputs} out={self.outputs}>"
        )


class CallEvent:
    """A function call (``jal``/``jalr``), or the synthetic entry call."""

    __slots__ = ("pc", "target", "return_addr", "function", "args", "depth", "sp", "warmup")

    def __init__(
        self,
        pc: int,
        target: int,
        return_addr: int,
        function: Optional[FunctionInfo],
        args: Tuple[int, ...],
        depth: int,
        sp: int,
        warmup: bool,
    ) -> None:
        self.pc = pc
        self.target = target
        self.return_addr = return_addr
        self.function = function
        self.args = args
        self.depth = depth
        self.sp = sp
        self.warmup = warmup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.function.name if self.function else hex(self.target)
        return f"<Call {name} args={self.args} depth={self.depth}>"


class ReturnEvent:
    """A function return (``jr $ra``)."""

    __slots__ = ("pc", "target", "function", "return_value", "depth", "warmup")

    def __init__(
        self,
        pc: int,
        target: int,
        function: Optional[FunctionInfo],
        return_value: int,
        depth: int,
        warmup: bool,
    ) -> None:
        self.pc = pc
        self.target = target
        self.function = function
        self.return_value = return_value
        self.depth = depth
        self.warmup = warmup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = self.function.name if self.function else "?"
        return f"<Return from {name} value={self.return_value}>"


class SyscallEvent:
    """A syscall, after its effect has been applied."""

    __slots__ = ("pc", "service", "arg", "result", "is_input", "is_output", "warmup")

    def __init__(
        self,
        pc: int,
        service: int,
        arg: int,
        result: Optional[int],
        is_input: bool,
        is_output: bool,
        warmup: bool,
    ) -> None:
        self.pc = pc
        self.service = service
        self.arg = arg
        self.result = result
        self.is_input = is_input
        self.is_output = is_output
        self.warmup = warmup

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Syscall {self.service} arg={self.arg} result={self.result}>"
