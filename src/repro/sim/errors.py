"""Simulator error types."""

from __future__ import annotations


class SimError(Exception):
    """A runtime fault in the simulated machine (bad access, bad pc...)."""

    def __init__(self, message: str, pc: int = 0) -> None:
        self.pc = pc
        super().__init__(f"pc={pc:#010x}: {message}" if pc else message)
