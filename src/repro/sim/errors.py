"""Simulator error types."""

from __future__ import annotations


class SimError(Exception):
    """A runtime fault in the simulated machine (bad access, bad pc...).

    The simulator annotates escaping traps with ``engine`` and the
    retirement counters; the fault harness marks injected ones with
    ``injected=True`` so recovery telemetry can tell them apart.
    """

    injected = False
    engine = None
    retired_total = None
    retired_analyzed = None

    def __init__(self, message: str, pc: int = 0) -> None:
        self.pc = pc
        super().__init__(f"pc={pc:#010x}: {message}" if pc else message)
