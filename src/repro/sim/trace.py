"""Execution-trace recording and replay.

The paper's methodology separates *generating* the dynamic instruction
stream (slow: functional simulation) from *analyzing* it.  A
:class:`TraceRecorder` captures the full event stream once; the resulting
:class:`Trace` replays into any set of analyzers without re-simulating —
useful when sweeping analysis parameters (buffer capacities, predictor
geometries) over an identical instruction stream, and for serializing
regression traces to disk.

The on-disk format is a compact little-endian binary stream (no pickle):
each event is a tag byte plus fixed/counted fields.  Traces reference
their program by text (instructions are re-bound via the program's text
segment at load time), so a trace file must be loaded with the same
program it was recorded from — a content hash guards against mismatches.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, List, Optional, Sequence, Tuple, Union

from repro.asm.program import Program
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.observer import Analyzer

_MAGIC = b"RTRC"
_VERSION = 2

_STEP = 0
_CALL = 1
_RETURN = 2
_SYSCALL = 3

_U32 = struct.Struct("<I")
_STEP_HEAD = struct.Struct("<BIIBB")  # tag, index, pc, n_inputs, n_outputs
_STEP_TAIL = struct.Struct("<BbI")  # flags, dest_reg, dest_value
_CALL_HEAD = struct.Struct("<BIIIBIIB")  # tag,pc,target,ra,argc,depth,sp,warmup
_RETURN_REC = struct.Struct("<BIIIIB")  # tag,pc,target,value,depth,warmup
_SYSCALL_REC = struct.Struct("<BIIIIBB")  # tag,pc,service,arg,result,flags,warmup

_FLAG_MEM = 1
_FLAG_STORE = 2
_FLAG_DEST = 4


def _program_fingerprint(program: Program) -> int:
    """A cheap stable hash of the text segment (guards replay pairing)."""
    value = len(program.text) & 0xFFFFFFFF
    for instr in program.text[:256]:
        value = (value * 1000003 + instr.addr + hash(instr.op.name)) & 0xFFFFFFFF
    return value


Event = Union[StepRecord, CallEvent, ReturnEvent, SyscallEvent]


class Trace:
    """A recorded event stream bound to its program."""

    def __init__(self, program: Program, events: Optional[List[Event]] = None) -> None:
        self.program = program
        self.events: List[Event] = events if events is not None else []

    def __len__(self) -> int:
        return len(self.events)

    @property
    def step_count(self) -> int:
        return sum(1 for event in self.events if isinstance(event, StepRecord))

    # -- replay ----------------------------------------------------------

    def replay(self, analyzers: Sequence[Analyzer]) -> None:
        """Deliver the recorded events to ``analyzers`` in order."""
        for analyzer in analyzers:
            analyzer.on_start(self.program)
        for event in self.events:
            if isinstance(event, StepRecord):
                for analyzer in analyzers:
                    analyzer.on_step(event)
            elif isinstance(event, CallEvent):
                for analyzer in analyzers:
                    analyzer.on_call(event)
            elif isinstance(event, ReturnEvent):
                for analyzer in analyzers:
                    analyzer.on_return(event)
            else:
                for analyzer in analyzers:
                    analyzer.on_syscall(event)
        for analyzer in analyzers:
            analyzer.on_finish()

    # -- serialization ------------------------------------------------------

    def save(self, stream: BinaryIO) -> None:
        stream.write(_MAGIC)
        stream.write(struct.pack("<HII", _VERSION, _program_fingerprint(self.program), len(self.events)))
        write = stream.write
        for event in self.events:
            if isinstance(event, StepRecord):
                flags = 0
                if event.mem_addr is not None:
                    flags |= _FLAG_MEM
                if event.store_value is not None:
                    flags |= _FLAG_STORE
                if event.dest_reg is not None:
                    flags |= _FLAG_DEST
                write(
                    _STEP_HEAD.pack(
                        _STEP, event.index, event.pc, len(event.inputs), len(event.outputs)
                    )
                )
                for value in event.inputs:
                    write(_U32.pack(value & 0xFFFFFFFF))
                for value in event.outputs:
                    write(_U32.pack(value & 0xFFFFFFFF))
                write(
                    _STEP_TAIL.pack(
                        flags,
                        event.dest_reg if event.dest_reg is not None else -1,
                        event.dest_value & 0xFFFFFFFF,
                    )
                )
                if flags & _FLAG_MEM:
                    write(_U32.pack(event.mem_addr & 0xFFFFFFFF))  # type: ignore[operator]
                if flags & _FLAG_STORE:
                    write(_U32.pack(event.store_value & 0xFFFFFFFF))  # type: ignore[operator]
            elif isinstance(event, CallEvent):
                write(
                    _CALL_HEAD.pack(
                        _CALL,
                        event.pc,
                        event.target,
                        event.return_addr,
                        len(event.args),
                        event.depth,
                        event.sp,
                        1 if event.warmup else 0,
                    )
                )
                for value in event.args:
                    write(_U32.pack(value & 0xFFFFFFFF))
            elif isinstance(event, ReturnEvent):
                write(
                    _RETURN_REC.pack(
                        _RETURN,
                        event.pc,
                        event.target,
                        event.return_value & 0xFFFFFFFF,
                        event.depth,
                        1 if event.warmup else 0,
                    )
                )
            else:
                flags = (1 if event.is_input else 0) | (2 if event.is_output else 0) | (
                    4 if event.result is not None else 0
                )
                write(
                    _SYSCALL_REC.pack(
                        _SYSCALL,
                        event.pc,
                        event.service,
                        event.arg & 0xFFFFFFFF,
                        (event.result or 0) & 0xFFFFFFFF,
                        flags,
                        1 if event.warmup else 0,
                    )
                )

    @classmethod
    def load(cls, stream: BinaryIO, program: Program) -> "Trace":
        magic = stream.read(4)
        if magic != _MAGIC:
            raise ValueError("not a trace file")
        version, fingerprint, count = struct.unpack("<HII", stream.read(10))
        if version != _VERSION:
            raise ValueError(f"unsupported trace version {version}")
        if fingerprint != _program_fingerprint(program):
            raise ValueError("trace was recorded from a different program")

        events: List[Event] = []
        read = stream.read
        for _ in range(count):
            tag = read(1)[0]
            if tag == _STEP:
                rest = read(_STEP_HEAD.size - 1)
                index, pc, n_in, n_out = struct.unpack("<IIBB", rest)
                inputs = tuple(
                    _U32.unpack(read(4))[0] for _ in range(n_in)
                )
                outputs = tuple(
                    _U32.unpack(read(4))[0] for _ in range(n_out)
                )
                flags, dest_reg, dest_value = struct.unpack("<BbI", read(6))
                mem_addr = _U32.unpack(read(4))[0] if flags & _FLAG_MEM else None
                store_value = _U32.unpack(read(4))[0] if flags & _FLAG_STORE else None
                events.append(
                    StepRecord(
                        index,
                        pc,
                        program.instruction_at(pc),
                        inputs,
                        outputs,
                        dest_reg if flags & _FLAG_DEST else None,
                        dest_value,
                        mem_addr,
                        store_value,
                    )
                )
            elif tag == _CALL:
                pc, target, return_addr, argc, depth, sp, warmup = struct.unpack(
                    "<IIIBIIB", read(_CALL_HEAD.size - 1)
                )
                args = tuple(_U32.unpack(read(4))[0] for _ in range(argc))
                events.append(
                    CallEvent(
                        pc,
                        target,
                        return_addr,
                        program.function_by_entry(target),
                        args,
                        depth,
                        sp,
                        bool(warmup),
                    )
                )
            elif tag == _RETURN:
                pc, target, value, depth, warmup = struct.unpack(
                    "<IIIIB", read(_RETURN_REC.size - 1)
                )
                function = program.function_at(pc)
                events.append(
                    ReturnEvent(pc, target, function, value, depth, bool(warmup))
                )
            elif tag == _SYSCALL:
                pc, service, arg, result, flags, warmup = struct.unpack(
                    "<IIIIBB", read(_SYSCALL_REC.size - 1)
                )
                events.append(
                    SyscallEvent(
                        pc,
                        service,
                        arg,
                        result if flags & 4 else None,
                        bool(flags & 1),
                        bool(flags & 2),
                        bool(warmup),
                    )
                )
            else:
                raise ValueError(f"corrupt trace: unknown tag {tag}")
        return cls(program, events)


class TraceRecorder(Analyzer):
    """Records the complete event stream into a :class:`Trace`."""

    def __init__(self) -> None:
        self._program: Optional[Program] = None
        self._events: List[Event] = []

    def on_start(self, program: Program) -> None:
        self._program = program

    def on_step(self, record: StepRecord) -> None:
        self._events.append(record)

    def on_call(self, event: CallEvent) -> None:
        self._events.append(event)

    def on_return(self, event: ReturnEvent) -> None:
        self._events.append(event)

    def on_syscall(self, event: SyscallEvent) -> None:
        self._events.append(event)

    def trace(self) -> Trace:
        if self._program is None:
            raise RuntimeError("recorder was never attached to a run")
        return Trace(self._program, self._events)
