"""Sparse paged memory for the simulated machine.

Memory is a dictionary of 4 KiB pages allocated on first touch.  Word and
halfword accesses must be naturally aligned (the MiniC compiler only emits
aligned accesses); unaligned accesses raise :class:`SimError` because they
would indicate a codegen or workload bug rather than intended behaviour.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.errors import SimError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Byte-addressable sparse memory with little-endian word access."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    # -- words ---------------------------------------------------------

    def read_word(self, address: int) -> int:
        if address & 3:
            raise SimError(f"unaligned word read at {address:#010x}")
        page = self._page(address)
        offset = address & PAGE_MASK
        return int.from_bytes(page[offset : offset + 4], "little")

    def write_word(self, address: int, value: int) -> None:
        if address & 3:
            raise SimError(f"unaligned word write at {address:#010x}")
        page = self._page(address)
        offset = address & PAGE_MASK
        page[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- halfwords -----------------------------------------------------

    def read_half(self, address: int) -> int:
        if address & 1:
            raise SimError(f"unaligned halfword read at {address:#010x}")
        page = self._page(address)
        offset = address & PAGE_MASK
        return int.from_bytes(page[offset : offset + 2], "little")

    def write_half(self, address: int, value: int) -> None:
        if address & 1:
            raise SimError(f"unaligned halfword write at {address:#010x}")
        page = self._page(address)
        offset = address & PAGE_MASK
        page[offset : offset + 2] = (value & 0xFFFF).to_bytes(2, "little")

    # -- bytes ---------------------------------------------------------

    def read_byte(self, address: int) -> int:
        return self._page(address)[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        self._page(address)[address & PAGE_MASK] = value & 0xFF

    # -- bulk ----------------------------------------------------------

    def load_bytes(self, address: int, data: bytes) -> None:
        """Copy ``data`` into memory starting at ``address``."""
        for i, byte in enumerate(data):
            self.write_byte(address + i, byte)

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        return bytes(self.read_byte(address + i) for i in range(length))

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_byte(address + i)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise SimError(f"unterminated string at {address:#010x}")

    @property
    def resident_pages(self) -> int:
        """Number of pages touched so far (for diagnostics)."""
        return len(self._pages)
