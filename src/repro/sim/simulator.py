"""Functional simulator for the MIPS-I-like ISA.

The simulator retires one instruction at a time, maintaining architectural
state (registers, hi/lo, memory) and a call stack, and streams
:class:`~repro.sim.events.StepRecord` / call / return / syscall events to
attached :class:`~repro.sim.observer.Analyzer` objects.  It plays the role
SimpleScalar's functional simulator played in the paper.

Execution windows mirror the paper's methodology: ``run(skip=..., limit=
...)`` executes ``skip`` instructions delivering only structural events
(flagged ``warmup=True``), then delivers full step records for up to
``limit`` instructions.

Two execution engines share this interface (``engine=`` knob):

* ``"predecoded"`` (default) — each static instruction is compiled once
  into a specialized step closure (:mod:`repro.sim.predecode`); step
  records are only materialized when an attached analyzer overrides
  ``on_step``, and the warm-up window always runs on the record-free
  fast path.
* ``"interpreter"`` — the original decode-per-step reference backend,
  kept verbatim so differential tests can lock the engines together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.asm.program import FunctionInfo, Program
from repro.isa import bits
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.isa.convention import GP_VALUE, STACK_TOP
from repro.isa.instructions import Format, Kind
from repro.isa.registers import A0, GP, NUM_REGISTERS, RA, SP, V0
from repro.sim import predecode
from repro.sim.errors import SimError
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.memory import Memory
from repro.sim.observer import Analyzer
from repro.sim.syscalls import InputStream, SyscallHandler

#: ``jr $ra`` to this address halts the machine (initial $ra value).
HALT_ADDRESS = 0

#: Supported execution engines.
ENGINES = ("predecoded", "interpreter")

#: Engine used when none is requested.
DEFAULT_ENGINE = "predecoded"

_EMPTY: Tuple[int, ...] = ()

#: Stand-in bound for ``limit=None`` (avoids an is-None test per step).
_NO_LIMIT = 1 << 62


@dataclass
class RunResult:
    """Summary of one simulation run."""

    #: Instructions retired inside the analysis window (post-skip).
    analyzed_instructions: int
    #: All instructions retired, including the warm-up window.
    total_instructions: int
    #: Why execution stopped: ``exit`` / ``halt`` / ``limit``.
    stop_reason: str
    exit_code: int
    output: str


@dataclass
class _Frame:
    function: Optional[FunctionInfo]
    return_addr: int


def _hooks_for(analyzers: Sequence[Analyzer], name: str) -> tuple:
    """Bound methods of analyzers that actually override ``name``.

    Analyzers that inherit the base-class no-op are skipped entirely, so
    the per-event fan-out only touches observers that do work.
    """
    base = getattr(Analyzer, name)
    return tuple(
        getattr(analyzer, name)
        for analyzer in analyzers
        if getattr(type(analyzer), name) is not base
    )


class Simulator:
    """Executes a :class:`Program`, streaming events to analyzers."""

    def __init__(
        self,
        program: Program,
        input_data: bytes = b"",
        analyzers: Sequence[Analyzer] = (),
        engine: str = DEFAULT_ENGINE,
        trace_reuse=None,
    ) -> None:
        if engine not in ENGINES:
            raise SimError(f"unknown engine {engine!r} (choose from {ENGINES})")
        self.program = program
        self.memory = Memory()
        self.memory.load_bytes(program.data_base, bytes(program.data))
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.regs[GP] = GP_VALUE
        self.regs[SP] = STACK_TOP
        self.regs[RA] = HALT_ADDRESS
        self.hi = 0
        self.lo = 0
        self.pc = program.entry
        self.syscalls = SyscallHandler(InputStream(input_data))
        self.call_stack: List[_Frame] = []
        self._analyzers: List[Analyzer] = list(analyzers)
        self._engine = engine
        self._started = False
        self._paused = False
        self._pause_requested = False
        self._total = 0
        self._analyzed = 0
        self._limit: Optional[int] = None
        self._skip = 0
        # Telemetry: call/return edges are rare enough to count always;
        # branch/memop counts live in a cell list only when the metrics
        # registry is enabled at run() time (see _run_fast/_run_full).
        self.call_count = 0
        self.return_count = 0
        self._kind_counts: Optional[List[int]] = None
        self._published: Optional[List[int]] = None
        # Trace memoization (repro.traces): a TraceReuseConfig or a
        # shared TraceReuseState; the engine is built lazily in run() so
        # merely importing this module never pulls in repro.traces.
        self._trace_reuse = trace_reuse
        self._trace_engine = None
        # Predecoded engine state, bound lazily on first use.
        self._fast_code: Optional[list] = None
        self._full_code: Optional[list] = None
        self._step_hooks: tuple = ()
        self._call_hooks: tuple = ()
        self._return_hooks: tuple = ()
        self._syscall_hooks: tuple = ()

    def attach(self, analyzer: Analyzer) -> None:
        """Attach an analyzer before running."""
        if self._started:
            raise SimError("cannot attach analyzers after run() started")
        self._analyzers.append(analyzer)

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def output(self) -> str:
        return self.syscalls.output_text()

    @property
    def paused(self) -> bool:
        return self._paused

    def request_pause(self) -> None:
        """Ask the simulator to stop at the next instruction boundary.

        Callable from analyzer hooks (the basis for breakpoints and
        watchpoints); resume with :meth:`resume`.
        """
        self._pause_requested = True

    # ------------------------------------------------------------------

    def _emit_call(
        self, pc: int, target: int, return_addr: int, warmup: bool
    ) -> None:
        self.call_count += 1
        function = self.program.function_by_entry(target)
        argc = function.num_args if function is not None else 0
        args = tuple(self.regs[A0 : A0 + argc])
        self.call_stack.append(_Frame(function, return_addr))
        event = CallEvent(
            pc, target, return_addr, function, args, len(self.call_stack), self.regs[SP], warmup
        )
        for hook in self._call_hooks:
            hook(event)

    def _emit_return(self, pc: int, target: int, warmup: bool) -> None:
        self.return_count += 1
        function = None
        # Pop frames down to (and including) the one matching this return
        # target; tolerates non-matching frames from tail-call-like code.
        while self.call_stack:
            frame = self.call_stack.pop()
            if frame.return_addr == target or not self.call_stack:
                function = frame.function
                break
        event = ReturnEvent(
            pc, target, function, self.regs[V0], len(self.call_stack) + 1, warmup
        )
        for hook in self._return_hooks:
            hook(event)

    # ------------------------------------------------------------------

    def run(self, limit: Optional[int] = None, skip: int = 0) -> RunResult:
        """Execute the program.

        ``skip`` instructions run first in warm-up mode (structural events
        only); then up to ``limit`` instructions are executed with full
        step records (``limit=None`` runs to completion).

        If an analyzer calls :meth:`request_pause`, execution stops at the
        next instruction boundary with ``stop_reason == "paused"`` and can
        be continued with :meth:`resume`.
        """
        if self._started:
            raise SimError("Simulator.run() may only be called once; use resume()")
        self._started = True
        self._limit = limit
        self._skip = skip

        # Engine fault sites fire before any analyzer state is touched,
        # so a failed attempt pollutes nothing the retry would reuse.
        # Lazy import: repro.harness imports this module at load time.
        from repro.harness import faults as _faults

        if _faults.armed():
            site = (
                "engine.interp_raise"
                if self._engine == "interpreter"
                else "engine.predecode_raise"
            )
            _faults.check(site)

        program = self.program
        self._step_hooks = _hooks_for(self._analyzers, "on_step")
        self._call_hooks = _hooks_for(self._analyzers, "on_call")
        self._return_hooks = _hooks_for(self._analyzers, "on_return")
        self._syscall_hooks = _hooks_for(self._analyzers, "on_syscall")
        if obs_metrics.REGISTRY.enabled:
            self._kind_counts = [0, 0]
        if self._trace_reuse is not None:
            from repro.traces.engine import TraceExecutionEngine

            self._trace_engine = TraceExecutionEngine(self, self._trace_reuse)
        for analyzer in self._analyzers:
            analyzer.on_start(program)
        # Program entry is modelled as a call so the call stack is rooted.
        self._emit_call(self.pc, self.pc, HALT_ADDRESS, warmup=skip > 0)
        return self._execute()

    def resume(self, additional_limit: Optional[int] = None) -> RunResult:
        """Continue a paused simulation (optionally extending the limit).

        ``additional_limit`` extends the analysis window by that many
        instructions.  If the original run had an explicit ``limit``, the
        new limit is ``limit + additional_limit``; if it was unlimited
        (``limit=None``), the extension anchors at the number of
        instructions analyzed so far, i.e. the resumed run executes at
        most ``additional_limit`` further analyzed instructions and the
        simulation is no longer unlimited.  Without ``additional_limit``
        the original window (limited or not) simply continues.
        """
        if not self._paused:
            raise SimError("resume() requires a paused simulation")
        self._paused = False
        if additional_limit is not None:
            anchor = self._analyzed if self._limit is None else self._limit
            self._limit = anchor + additional_limit
        return self._execute()

    def _execute(self) -> RunResult:
        try:
            if self._engine == "interpreter":
                return self._execute_interpreter()
            return self._execute_predecoded()
        except SimError as exc:
            # Annotate escaping traps so failure records can say which
            # engine died and how far it got.
            exc.engine = self._engine
            exc.retired_total = self._total
            exc.retired_analyzed = self._analyzed
            raise

    # ------------------------------------------------------------------
    # Predecoded engine
    # ------------------------------------------------------------------

    def _execute_predecoded(self) -> RunResult:
        tracer = obs_tracing.current_tracer()
        stop = None
        if self._total < self._skip:
            if tracer is None:
                stop = self._run_fast(warmup=True)
            else:
                with tracer.span("warmup", engine=self._engine):
                    stop = self._run_fast(warmup=True)
        if stop is None:
            if tracer is None:
                stop = self._run_full() if self._step_hooks else self._run_fast(warmup=False)
            else:
                with tracer.span("simulate", engine=self._engine):
                    stop = (
                        self._run_full()
                        if self._step_hooks
                        else self._run_fast(warmup=False)
                    )
        return self._finish_run(stop)

    def _finish_run(self, stop_reason: str) -> RunResult:
        if stop_reason == "paused":
            self._paused = True
        else:
            for analyzer in self._analyzers:
                analyzer.on_finish()
        registry = obs_metrics.REGISTRY
        if registry.enabled:
            self._publish_metrics(registry)
            if self._trace_engine is not None:
                self._trace_engine.publish(registry)
        syscalls = self.syscalls
        return RunResult(
            analyzed_instructions=self._analyzed,
            total_instructions=self._total,
            stop_reason=stop_reason,
            exit_code=syscalls.exit_code,
            output=syscalls.output_text(),
        )

    #: Registry counter names, index-matched with _publish_metrics values.
    _METRIC_NAMES = (
        "sim.instructions.total",
        "sim.instructions.analyzed",
        "sim.branches",
        "sim.memory_ops",
        "sim.calls",
        "sim.returns",
        "sim.syscalls",
    )

    def _publish_metrics(self, registry) -> None:
        """End-of-run snapshot into the registry (resume-safe deltas)."""
        published = self._published
        if published is None:
            published = self._published = [0] * len(self._METRIC_NAMES)
            registry.counter("sim.runs").inc()
        counts = self._kind_counts
        values = (
            self._total,
            self._analyzed,
            counts[0] if counts is not None else 0,
            counts[1] if counts is not None else 0,
            self.call_count,
            self.return_count,
            self.syscalls.invocations,
        )
        for index, name in enumerate(self._METRIC_NAMES):
            delta = values[index] - published[index]
            if delta:
                registry.counter(name).inc(delta)
                published[index] = values[index]

    def _run_fast(self, warmup: bool) -> Optional[str]:
        """Record-free execution (warm-up, or no step observers).

        Returns the stop reason, or ``None`` when the warm-up window
        completed and execution should continue in analysis mode.
        """
        trace_engine = self._trace_engine
        code = self._fast_code
        if code is None:
            if self._kind_counts is not None:
                code = self._fast_code = predecode.bind_fast_counted(
                    self, self._kind_counts
                )
            else:
                code = self._fast_code = predecode.bind_fast(self)
            if trace_engine is not None:
                trace_engine.wrap_fast(code)
        program = self.program
        text_base = program.text_base
        text_len = len(program.text)
        bound = self._limit if self._limit is not None else _NO_LIMIT
        skip = self._skip
        syscall_hooks = self._syscall_hooks
        input_services = SyscallHandler.INPUT_SERVICES
        output_services = SyscallHandler.OUTPUT_SERVICES
        # The pause flag can only change inside call/return/syscall hooks
        # (or before run()); skip the per-step check when neither applies.
        check_pause = bool(
            self._call_hooks or self._return_hooks or syscall_hooks
        ) or self._pause_requested
        ctrl_call = predecode.CTRL_CALL
        ctrl_return = predecode.CTRL_RETURN
        trace_hit = predecode.CTRL_TRACE_HIT
        trace_rec = predecode.CTRL_TRACE_REC

        pc = self.pc
        total = self._total
        analyzed = self._analyzed
        analyzed_start = analyzed
        stop: Optional[str] = None

        while True:
            if pc == HALT_ADDRESS:
                stop = "halt"
                break
            index = (pc - text_base) >> 2
            if index < 0 or index >= text_len or pc & 3:
                raise SimError("pc outside text segment", pc)
            if analyzed >= bound:
                stop = "limit"
                break
            if check_pause and self._pause_requested:
                self._pause_requested = False
                stop = "paused"
                break
            if warmup and total >= skip:
                break  # warm-up complete; caller continues in analysis mode

            r = code[index]()
            if r.__class__ is int:
                if warmup:
                    total += 1
                else:
                    analyzed += 1
                pc = r
                continue

            tag = r[1]
            if tag is trace_hit:
                # A replay is only taken when the whole trace fits inside
                # the current window; otherwise execute the anchor
                # normally and let the loop re-probe next time around.
                trace = r[2]
                remaining = (skip - total) if warmup else (bound - analyzed)
                if trace.length <= remaining:
                    trace.apply(self)
                    trace_engine.note_hit(trace)
                    if warmup:
                        total += trace.length
                    else:
                        analyzed += trace.length
                    pc = r[0]
                    continue
                r = r[3]()
                if warmup:
                    total += 1
                else:
                    analyzed += 1
                if r.__class__ is int:
                    pc = r
                    continue
                tag = r[1]  # anchors are never excluded kinds, but be safe
            elif tag is trace_rec:
                remaining = (skip - total) if warmup else (bound - analyzed)
                executed, pc = trace_engine.record_from(r[3], pc, remaining)
                if warmup:
                    total += executed
                else:
                    analyzed += executed
                continue
            else:
                if warmup:
                    total += 1
                else:
                    analyzed += 1

            if tag is ctrl_call:
                self._emit_call(pc, r[2], r[3], warmup)
            elif tag is ctrl_return:
                self._emit_return(pc, r[2], warmup)
            else:  # syscall
                if syscall_hooks:
                    service = r[2]
                    event = SyscallEvent(
                        pc,
                        service,
                        r[3],
                        r[4],
                        service in input_services,
                        service in output_services,
                        warmup,
                    )
                    for hook in syscall_hooks:
                        hook(event)
                if r[5]:
                    stop = "exit"
                    break
            pc = r[0]

        self.pc = pc
        self._analyzed = analyzed
        self._total = total + (analyzed - analyzed_start)
        return stop

    def _run_full(self) -> str:
        """Analysis-mode execution: step records delivered per retire."""
        code = self._full_code
        if code is None:
            if self._kind_counts is not None:
                code = self._full_code = predecode.bind_full_counted(
                    self, self._kind_counts
                )
            else:
                code = self._full_code = predecode.bind_full(self)
        program = self.program
        text_base = program.text_base
        text_len = len(program.text)
        bound = self._limit if self._limit is not None else _NO_LIMIT
        step_hooks = self._step_hooks
        syscall_hooks = self._syscall_hooks
        input_services = SyscallHandler.INPUT_SERVICES
        output_services = SyscallHandler.OUTPUT_SERVICES
        ctrl_call = predecode.CTRL_CALL
        ctrl_return = predecode.CTRL_RETURN

        pc = self.pc
        analyzed = self._analyzed
        analyzed_start = analyzed
        stop = "halt"

        while True:
            if pc == HALT_ADDRESS:
                stop = "halt"
                break
            index = (pc - text_base) >> 2
            if index < 0 or index >= text_len or pc & 3:
                raise SimError("pc outside text segment", pc)
            if analyzed >= bound:
                stop = "limit"
                break
            if self._pause_requested:
                self._pause_requested = False
                stop = "paused"
                break

            analyzed += 1
            record, next_pc, ctrl = code[index](analyzed)
            for hook in step_hooks:
                hook(record)
            if ctrl is not None:
                tag = ctrl[0]
                if tag is ctrl_call:
                    self._emit_call(pc, ctrl[1], ctrl[2], False)
                elif tag is ctrl_return:
                    self._emit_return(pc, ctrl[1], False)
                else:  # syscall
                    if syscall_hooks:
                        service = ctrl[1]
                        event = SyscallEvent(
                            pc,
                            service,
                            ctrl[2],
                            ctrl[3],
                            service in input_services,
                            service in output_services,
                            False,
                        )
                        for hook in syscall_hooks:
                            hook(event)
                    if ctrl[4]:
                        stop = "exit"
                        break
            pc = next_pc

        self.pc = pc
        self._analyzed = analyzed
        self._total += analyzed - analyzed_start
        return stop

    # ------------------------------------------------------------------
    # Reference interpreter (original decode-per-step backend)
    # ------------------------------------------------------------------

    def _execute_interpreter(self) -> RunResult:
        tracer = obs_tracing.current_tracer()
        if tracer is None:
            return self._finish_run(self._interpret_loop())
        with tracer.span("simulate", engine="interpreter"):
            stop_reason = self._interpret_loop()
        return self._finish_run(stop_reason)

    def _interpret_loop(self) -> str:
        program = self.program
        limit = self._limit
        skip = self._skip
        kind_counts = self._kind_counts
        regs = self.regs
        memory = self.memory
        text = program.text
        text_base = program.text_base
        text_len = len(text)
        analyzers = self._analyzers
        syscalls = self.syscalls
        trace_engine = self._trace_engine
        # Replay skips step-record delivery by construction, so the trace
        # fast path only engages while nobody consumes step records
        # (warm-up always qualifies: records are never built there).
        step_consumers = bool(self._step_hooks)

        pc = self.pc
        total = self._total
        analyzed = self._analyzed
        stop_reason = "halt"

        while True:
            if pc == HALT_ADDRESS:
                stop_reason = "halt"
                break
            index = (pc - text_base) >> 2
            if index < 0 or index >= text_len or pc & 3:
                raise SimError("pc outside text segment", pc)
            if limit is not None and analyzed >= limit:
                stop_reason = "limit"
                break
            if self._pause_requested:
                self._pause_requested = False
                stop_reason = "paused"
                break

            if trace_engine is not None:
                in_warmup = total < skip
                if in_warmup or not step_consumers:
                    if in_warmup:
                        remaining = skip - total
                    elif limit is not None:
                        remaining = limit - analyzed
                    else:
                        remaining = _NO_LIMIT
                    consumed = trace_engine.interp_step(pc, index, remaining)
                    if consumed is not None:
                        count, pc = consumed
                        total += count
                        if not in_warmup:
                            analyzed += count
                        continue

            instr = text[index]
            op = instr.op
            name = op.name
            kind = op.kind
            next_pc = pc + 4
            warmup = total < skip

            inputs: Tuple[int, ...] = _EMPTY
            outputs: Tuple[int, ...] = _EMPTY
            dest_reg: Optional[int] = None
            dest_value = 0
            mem_addr: Optional[int] = None
            store_value: Optional[int] = None
            call_edge: Optional[Tuple[int, int]] = None  # (target, return_addr)
            return_edge: Optional[int] = None
            syscall_event: Optional[SyscallEvent] = None
            halt_after = False

            fmt = op.fmt
            if fmt == Format.I2:
                a = regs[instr.rs]
                imm = instr.imm
                inputs = (a,)
                if name == "addiu" or name == "addi":
                    result = (a + imm) & 0xFFFFFFFF
                elif name == "andi":
                    result = a & imm
                elif name == "ori":
                    result = a | imm
                elif name == "xori":
                    result = a ^ imm
                elif name == "slti":
                    result = 1 if bits.to_s32(a) < imm else 0
                else:  # sltiu
                    result = 1 if a < bits.to_u32(imm) else 0
                outputs = (result,)
                dest_reg, dest_value = instr.rt, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.LOAD:
                if kind_counts is not None:
                    kind_counts[1] += 1
                base = regs[instr.rs]
                address = (base + instr.imm) & 0xFFFFFFFF
                inputs = (base,)
                mem_addr = address
                width = op.mem_width
                if width == 4:
                    value = memory.read_word(address)
                elif width == 2:
                    value = memory.read_half(address)
                    if op.signed_load:
                        value = bits.to_u32(bits.to_s16(value))
                else:
                    value = memory.read_byte(address)
                    if op.signed_load:
                        value = bits.to_u32(bits.to_s8(value))
                outputs = (value,)
                dest_reg, dest_value = instr.rt, value
                if dest_reg:
                    regs[dest_reg] = value
            elif kind == Kind.STORE:
                if kind_counts is not None:
                    kind_counts[1] += 1
                data = regs[instr.rt]
                base = regs[instr.rs]
                address = (base + instr.imm) & 0xFFFFFFFF
                inputs = (data, base)
                mem_addr = address
                store_value = data
                width = op.mem_width
                if width == 4:
                    memory.write_word(address, data)
                elif width == 2:
                    memory.write_half(address, data)
                else:
                    memory.write_byte(address, data)
            elif fmt == Format.R3:
                a = regs[instr.rs]
                b = regs[instr.rt]
                inputs = (a, b)
                if name == "addu" or name == "add":
                    result = (a + b) & 0xFFFFFFFF
                elif name == "subu" or name == "sub":
                    result = (a - b) & 0xFFFFFFFF
                elif name == "and":
                    result = a & b
                elif name == "or":
                    result = a | b
                elif name == "xor":
                    result = a ^ b
                elif name == "nor":
                    result = (~(a | b)) & 0xFFFFFFFF
                elif name == "slt":
                    result = 1 if bits.to_s32(a) < bits.to_s32(b) else 0
                else:  # sltu
                    result = 1 if a < b else 0
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif fmt == Format.SHIFT:
                value = regs[instr.rt]
                inputs = (value,)
                if name == "sll":
                    result = (value << instr.shamt) & 0xFFFFFFFF
                elif name == "srl":
                    result = value >> instr.shamt
                else:  # sra
                    result = bits.sra32(value, instr.shamt)
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif fmt == Format.R3_SHIFTV:
                value = regs[instr.rt]
                amount = regs[instr.rs]
                inputs = (value, amount)
                if name == "sllv":
                    result = (value << (amount & 31)) & 0xFFFFFFFF
                elif name == "srlv":
                    result = value >> (amount & 31)
                else:  # srav
                    result = bits.sra32(value, amount)
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.BRANCH:
                if kind_counts is not None:
                    kind_counts[0] += 1
                a = regs[instr.rs]
                if fmt == Format.BR2:
                    b = regs[instr.rt]
                    inputs = (a, b)
                    taken = (a == b) if name == "beq" else (a != b)
                else:
                    inputs = (a,)
                    signed = bits.to_s32(a)
                    if name == "blez":
                        taken = signed <= 0
                    elif name == "bgtz":
                        taken = signed > 0
                    elif name == "bltz":
                        taken = signed < 0
                    else:  # bgez
                        taken = signed >= 0
                outputs = (1,) if taken else (0,)
                if taken:
                    next_pc = instr.target
            elif fmt == Format.LUI:
                result = (instr.imm << 16) & 0xFFFFFFFF
                outputs = (result,)
                dest_reg, dest_value = instr.rt, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.JUMP:
                next_pc = instr.target
            elif kind == Kind.CALL:
                if fmt == Format.J:  # jal
                    target = instr.target
                    link_reg = RA
                else:  # jalr
                    target = regs[instr.rs]
                    inputs = (target,)
                    link_reg = instr.rd
                return_addr = pc + 4
                dest_reg, dest_value = link_reg, return_addr
                if link_reg:
                    regs[link_reg] = return_addr
                next_pc = target
                call_edge = (target, return_addr)
            elif kind == Kind.JUMP_REG:
                target = regs[instr.rs]
                inputs = (target,)
                next_pc = target
                if instr.rs == RA:
                    return_edge = target
            elif kind == Kind.MULDIV:
                a = regs[instr.rs]
                b = regs[instr.rt]
                inputs = (a, b)
                if name == "mult":
                    self.hi, self.lo = bits.mult32(a, b)
                elif name == "multu":
                    self.hi, self.lo = bits.multu32(a, b)
                elif name == "div":
                    self.hi, self.lo = bits.div32(a, b)
                else:  # divu
                    self.hi, self.lo = bits.divu32(a, b)
                outputs = (self.hi, self.lo)
            elif kind == Kind.MFHILO:
                value = self.hi if name == "mfhi" else self.lo
                inputs = (value,)
                outputs = (value,)
                dest_reg, dest_value = instr.rd, value
                if dest_reg:
                    regs[dest_reg] = value
            elif kind == Kind.SYSCALL:
                service = regs[V0]
                arg = regs[A0]
                inputs = (service, arg)
                result, halt_after = syscalls.handle(service, arg, memory)
                if result is not None:
                    outputs = (result,)
                    dest_reg, dest_value = V0, result
                    regs[V0] = result
                syscall_event = SyscallEvent(
                    pc,
                    service,
                    arg,
                    result,
                    service in SyscallHandler.INPUT_SERVICES,
                    service in SyscallHandler.OUTPUT_SERVICES,
                    warmup,
                )
            elif kind == Kind.NOP:
                pass
            else:  # pragma: no cover - opcode table is exhaustive
                raise SimError(f"unimplemented opcode {name}", pc)

            total += 1
            if not warmup:
                analyzed += 1
                record = StepRecord(
                    analyzed,
                    pc,
                    instr,
                    inputs,
                    outputs,
                    dest_reg,
                    dest_value,
                    mem_addr,
                    store_value,
                )
                for analyzer in analyzers:
                    analyzer.on_step(record)
            if syscall_event is not None:
                for analyzer in analyzers:
                    analyzer.on_syscall(syscall_event)
            if call_edge is not None:
                self._emit_call(pc, call_edge[0], call_edge[1], warmup)
            elif return_edge is not None:
                self._emit_return(pc, return_edge, warmup)

            if halt_after:
                stop_reason = "exit"
                break
            pc = next_pc

        self.pc = pc
        self._total = total
        self._analyzed = analyzed
        return stop_reason
