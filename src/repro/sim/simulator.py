"""Functional simulator for the MIPS-I-like ISA.

The simulator retires one instruction at a time, maintaining architectural
state (registers, hi/lo, memory) and a call stack, and streams
:class:`~repro.sim.events.StepRecord` / call / return / syscall events to
attached :class:`~repro.sim.observer.Analyzer` objects.  It plays the role
SimpleScalar's functional simulator played in the paper.

Execution windows mirror the paper's methodology: ``run(skip=..., limit=
...)`` executes ``skip`` instructions delivering only structural events
(flagged ``warmup=True``), then delivers full step records for up to
``limit`` instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.asm.program import FunctionInfo, Program
from repro.isa import bits
from repro.isa.convention import GP_VALUE, STACK_TOP
from repro.isa.instructions import Format, Kind
from repro.isa.registers import A0, GP, NUM_REGISTERS, RA, SP, V0
from repro.sim.errors import SimError
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.memory import Memory
from repro.sim.observer import Analyzer
from repro.sim.syscalls import InputStream, SyscallHandler

#: ``jr $ra`` to this address halts the machine (initial $ra value).
HALT_ADDRESS = 0

_EMPTY: Tuple[int, ...] = ()


@dataclass
class RunResult:
    """Summary of one simulation run."""

    #: Instructions retired inside the analysis window (post-skip).
    analyzed_instructions: int
    #: All instructions retired, including the warm-up window.
    total_instructions: int
    #: Why execution stopped: ``exit`` / ``halt`` / ``limit``.
    stop_reason: str
    exit_code: int
    output: str


@dataclass
class _Frame:
    function: Optional[FunctionInfo]
    return_addr: int


class Simulator:
    """Executes a :class:`Program`, streaming events to analyzers."""

    def __init__(
        self,
        program: Program,
        input_data: bytes = b"",
        analyzers: Sequence[Analyzer] = (),
    ) -> None:
        self.program = program
        self.memory = Memory()
        self.memory.load_bytes(program.data_base, bytes(program.data))
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.regs[GP] = GP_VALUE
        self.regs[SP] = STACK_TOP
        self.regs[RA] = HALT_ADDRESS
        self.hi = 0
        self.lo = 0
        self.pc = program.entry
        self.syscalls = SyscallHandler(InputStream(input_data))
        self.call_stack: List[_Frame] = []
        self._analyzers: List[Analyzer] = list(analyzers)
        self._started = False
        self._paused = False
        self._pause_requested = False
        self._total = 0
        self._analyzed = 0
        self._limit: Optional[int] = None
        self._skip = 0

    def attach(self, analyzer: Analyzer) -> None:
        """Attach an analyzer before running."""
        if self._started:
            raise SimError("cannot attach analyzers after run() started")
        self._analyzers.append(analyzer)

    @property
    def output(self) -> str:
        return self.syscalls.output_text()

    @property
    def paused(self) -> bool:
        return self._paused

    def request_pause(self) -> None:
        """Ask the simulator to stop at the next instruction boundary.

        Callable from analyzer hooks (the basis for breakpoints and
        watchpoints); resume with :meth:`resume`.
        """
        self._pause_requested = True

    # ------------------------------------------------------------------

    def _emit_call(
        self, pc: int, target: int, return_addr: int, warmup: bool
    ) -> None:
        function = self.program.function_by_entry(target)
        argc = function.num_args if function is not None else 0
        args = tuple(self.regs[A0 : A0 + argc])
        self.call_stack.append(_Frame(function, return_addr))
        event = CallEvent(
            pc, target, return_addr, function, args, len(self.call_stack), self.regs[SP], warmup
        )
        for analyzer in self._analyzers:
            analyzer.on_call(event)

    def _emit_return(self, pc: int, target: int, warmup: bool) -> None:
        function = None
        # Pop frames down to (and including) the one matching this return
        # target; tolerates non-matching frames from tail-call-like code.
        while self.call_stack:
            frame = self.call_stack.pop()
            if frame.return_addr == target or not self.call_stack:
                function = frame.function
                break
        event = ReturnEvent(
            pc, target, function, self.regs[V0], len(self.call_stack) + 1, warmup
        )
        for analyzer in self._analyzers:
            analyzer.on_return(event)

    # ------------------------------------------------------------------

    def run(self, limit: Optional[int] = None, skip: int = 0) -> RunResult:
        """Execute the program.

        ``skip`` instructions run first in warm-up mode (structural events
        only); then up to ``limit`` instructions are executed with full
        step records (``limit=None`` runs to completion).

        If an analyzer calls :meth:`request_pause`, execution stops at the
        next instruction boundary with ``stop_reason == "paused"`` and can
        be continued with :meth:`resume`.
        """
        if self._started:
            raise SimError("Simulator.run() may only be called once; use resume()")
        self._started = True
        self._limit = limit
        self._skip = skip

        program = self.program
        for analyzer in self._analyzers:
            analyzer.on_start(program)
        # Program entry is modelled as a call so the call stack is rooted.
        self._emit_call(self.pc, self.pc, HALT_ADDRESS, warmup=skip > 0)
        return self._execute()

    def resume(self, additional_limit: Optional[int] = None) -> RunResult:
        """Continue a paused simulation (optionally extending the limit)."""
        if not self._paused:
            raise SimError("resume() requires a paused simulation")
        self._paused = False
        if additional_limit is not None:
            self._limit = (self._limit or self._analyzed) + additional_limit
        return self._execute()

    def _execute(self) -> RunResult:
        program = self.program
        limit = self._limit
        skip = self._skip
        regs = self.regs
        memory = self.memory
        text = program.text
        text_base = program.text_base
        text_len = len(text)
        analyzers = self._analyzers
        syscalls = self.syscalls

        pc = self.pc
        total = self._total
        analyzed = self._analyzed
        stop_reason = "halt"

        while True:
            if pc == HALT_ADDRESS:
                stop_reason = "halt"
                break
            index = (pc - text_base) >> 2
            if index < 0 or index >= text_len or pc & 3:
                raise SimError("pc outside text segment", pc)
            if limit is not None and analyzed >= limit:
                stop_reason = "limit"
                break
            if self._pause_requested:
                self._pause_requested = False
                stop_reason = "paused"
                break

            instr = text[index]
            op = instr.op
            name = op.name
            kind = op.kind
            next_pc = pc + 4
            warmup = total < skip

            inputs: Tuple[int, ...] = _EMPTY
            outputs: Tuple[int, ...] = _EMPTY
            dest_reg: Optional[int] = None
            dest_value = 0
            mem_addr: Optional[int] = None
            store_value: Optional[int] = None
            call_edge: Optional[Tuple[int, int]] = None  # (target, return_addr)
            return_edge: Optional[int] = None
            syscall_event: Optional[SyscallEvent] = None
            halt_after = False

            fmt = op.fmt
            if fmt == Format.I2:
                a = regs[instr.rs]
                imm = instr.imm
                inputs = (a,)
                if name == "addiu" or name == "addi":
                    result = (a + imm) & 0xFFFFFFFF
                elif name == "andi":
                    result = a & imm
                elif name == "ori":
                    result = a | imm
                elif name == "xori":
                    result = a ^ imm
                elif name == "slti":
                    result = 1 if bits.to_s32(a) < imm else 0
                else:  # sltiu
                    result = 1 if a < bits.to_u32(imm) else 0
                outputs = (result,)
                dest_reg, dest_value = instr.rt, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.LOAD:
                base = regs[instr.rs]
                address = (base + instr.imm) & 0xFFFFFFFF
                inputs = (base,)
                mem_addr = address
                width = op.mem_width
                if width == 4:
                    value = memory.read_word(address)
                elif width == 2:
                    value = memory.read_half(address)
                    if op.signed_load:
                        value = bits.to_u32(bits.to_s16(value))
                else:
                    value = memory.read_byte(address)
                    if op.signed_load:
                        value = bits.to_u32(bits.to_s8(value))
                outputs = (value,)
                dest_reg, dest_value = instr.rt, value
                if dest_reg:
                    regs[dest_reg] = value
            elif kind == Kind.STORE:
                data = regs[instr.rt]
                base = regs[instr.rs]
                address = (base + instr.imm) & 0xFFFFFFFF
                inputs = (data, base)
                mem_addr = address
                store_value = data
                width = op.mem_width
                if width == 4:
                    memory.write_word(address, data)
                elif width == 2:
                    memory.write_half(address, data)
                else:
                    memory.write_byte(address, data)
            elif fmt == Format.R3:
                a = regs[instr.rs]
                b = regs[instr.rt]
                inputs = (a, b)
                if name == "addu" or name == "add":
                    result = (a + b) & 0xFFFFFFFF
                elif name == "subu" or name == "sub":
                    result = (a - b) & 0xFFFFFFFF
                elif name == "and":
                    result = a & b
                elif name == "or":
                    result = a | b
                elif name == "xor":
                    result = a ^ b
                elif name == "nor":
                    result = (~(a | b)) & 0xFFFFFFFF
                elif name == "slt":
                    result = 1 if bits.to_s32(a) < bits.to_s32(b) else 0
                else:  # sltu
                    result = 1 if a < b else 0
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif fmt == Format.SHIFT:
                value = regs[instr.rt]
                inputs = (value,)
                if name == "sll":
                    result = (value << instr.shamt) & 0xFFFFFFFF
                elif name == "srl":
                    result = value >> instr.shamt
                else:  # sra
                    result = bits.sra32(value, instr.shamt)
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif fmt == Format.R3_SHIFTV:
                value = regs[instr.rt]
                amount = regs[instr.rs]
                inputs = (value, amount)
                if name == "sllv":
                    result = (value << (amount & 31)) & 0xFFFFFFFF
                elif name == "srlv":
                    result = value >> (amount & 31)
                else:  # srav
                    result = bits.sra32(value, amount)
                outputs = (result,)
                dest_reg, dest_value = instr.rd, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.BRANCH:
                a = regs[instr.rs]
                if fmt == Format.BR2:
                    b = regs[instr.rt]
                    inputs = (a, b)
                    taken = (a == b) if name == "beq" else (a != b)
                else:
                    inputs = (a,)
                    signed = bits.to_s32(a)
                    if name == "blez":
                        taken = signed <= 0
                    elif name == "bgtz":
                        taken = signed > 0
                    elif name == "bltz":
                        taken = signed < 0
                    else:  # bgez
                        taken = signed >= 0
                outputs = (1,) if taken else (0,)
                if taken:
                    next_pc = instr.target
            elif fmt == Format.LUI:
                result = (instr.imm << 16) & 0xFFFFFFFF
                outputs = (result,)
                dest_reg, dest_value = instr.rt, result
                if dest_reg:
                    regs[dest_reg] = result
            elif kind == Kind.JUMP:
                next_pc = instr.target
            elif kind == Kind.CALL:
                if fmt == Format.J:  # jal
                    target = instr.target
                    link_reg = RA
                else:  # jalr
                    target = regs[instr.rs]
                    inputs = (target,)
                    link_reg = instr.rd
                return_addr = pc + 4
                dest_reg, dest_value = link_reg, return_addr
                if link_reg:
                    regs[link_reg] = return_addr
                next_pc = target
                call_edge = (target, return_addr)
            elif kind == Kind.JUMP_REG:
                target = regs[instr.rs]
                inputs = (target,)
                next_pc = target
                if instr.rs == RA:
                    return_edge = target
            elif kind == Kind.MULDIV:
                a = regs[instr.rs]
                b = regs[instr.rt]
                inputs = (a, b)
                if name == "mult":
                    self.hi, self.lo = bits.mult32(a, b)
                elif name == "multu":
                    self.hi, self.lo = bits.multu32(a, b)
                elif name == "div":
                    self.hi, self.lo = bits.div32(a, b)
                else:  # divu
                    self.hi, self.lo = bits.divu32(a, b)
                outputs = (self.hi, self.lo)
            elif kind == Kind.MFHILO:
                value = self.hi if name == "mfhi" else self.lo
                inputs = (value,)
                outputs = (value,)
                dest_reg, dest_value = instr.rd, value
                if dest_reg:
                    regs[dest_reg] = value
            elif kind == Kind.SYSCALL:
                service = regs[V0]
                arg = regs[A0]
                inputs = (service, arg)
                result, halt_after = syscalls.handle(service, arg, memory)
                if result is not None:
                    outputs = (result,)
                    dest_reg, dest_value = V0, result
                    regs[V0] = result
                syscall_event = SyscallEvent(
                    pc,
                    service,
                    arg,
                    result,
                    service in SyscallHandler.INPUT_SERVICES,
                    service in SyscallHandler.OUTPUT_SERVICES,
                    warmup,
                )
            elif kind == Kind.NOP:
                pass
            else:  # pragma: no cover - opcode table is exhaustive
                raise SimError(f"unimplemented opcode {name}", pc)

            total += 1
            if not warmup:
                analyzed += 1
                record = StepRecord(
                    analyzed,
                    pc,
                    instr,
                    inputs,
                    outputs,
                    dest_reg,
                    dest_value,
                    mem_addr,
                    store_value,
                )
                for analyzer in analyzers:
                    analyzer.on_step(record)
            if syscall_event is not None:
                for analyzer in analyzers:
                    analyzer.on_syscall(syscall_event)
            if call_edge is not None:
                self._emit_call(pc, call_edge[0], call_edge[1], warmup)
            elif return_edge is not None:
                self._emit_return(pc, return_edge, warmup)

            if halt_after:
                stop_reason = "exit"
                break
            pc = next_pc

        self.pc = pc
        self._total = total
        self._analyzed = analyzed
        if stop_reason == "paused":
            self._paused = True
        else:
            for analyzer in analyzers:
                analyzer.on_finish()
        return RunResult(
            analyzed_instructions=analyzed,
            total_instructions=total,
            stop_reason=stop_reason,
            exit_code=syscalls.exit_code,
            output=syscalls.output_text(),
        )
