"""Trace-driven timing model.

The paper's Section 7 motivates exploiting repetition with hardware
(reuse buffers, value predictors) because it shortens execution.  The
functional simulator has no notion of time, so this module adds one as
an *analyzer*: it consumes the same per-instruction event stream and
charges cycles according to a simple single-issue in-order machine:

* one base cycle per instruction;
* multi-cycle functional units (multiply, divide);
* an instruction cache and a data cache (set-associative, LRU) with a
  fixed miss penalty each;
* a 2-bit branch history table with a misprediction penalty;
* a fixed syscall cost.

Composing it with a :class:`~repro.core.reuse_buffer.ReuseBuffer` (via
``reuse_provider``) models dynamic instruction reuse the way Sodani &
Sohi's ISCA'97 scheme does: a reused instruction bypasses its functional
unit and data-cache access and completes in the base cycle, and a reused
branch resolves without misprediction.  The speedup ablation
(``benchmarks/test_ablation_reuse_speedup.py``) builds on exactly this.

The defaults are illustrative of a mid-90s in-order core; they set the
*scale* of the speedups, not the qualitative result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instructions import Kind
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer


@dataclass(frozen=True)
class TimingConfig:
    """Machine parameters for the timing model."""

    #: Extra (stall) cycles beyond the base cycle.
    mult_latency: int = 3
    div_latency: int = 11
    syscall_cost: int = 10
    #: Caches: total lines, associativity, bytes per line, miss penalty.
    icache_lines: int = 128
    icache_assoc: int = 2
    dcache_lines: int = 128
    dcache_assoc: int = 2
    line_bytes: int = 16
    cache_miss_penalty: int = 20
    #: Branch predictor: 2-bit counters, this many BHT entries.
    bht_entries: int = 512
    branch_mispredict_penalty: int = 3


class _Cache:
    """A small set-associative LRU cache of line addresses."""

    __slots__ = ("num_sets", "assoc", "line_shift", "sets", "hits", "misses")

    def __init__(self, lines: int, assoc: int, line_bytes: int) -> None:
        if lines % assoc:
            raise ValueError("lines must be a multiple of associativity")
        self.num_sets = lines // assoc
        self.assoc = assoc
        self.line_shift = line_bytes.bit_length() - 1
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit."""
        line = address >> self.line_shift
        bucket = self.sets[line % self.num_sets]
        if line in bucket:
            if bucket[0] != line:
                bucket.remove(line)
                bucket.insert(0, line)
            self.hits += 1
            return True
        self.misses += 1
        if len(bucket) >= self.assoc:
            bucket.pop()
        bucket.insert(0, line)
        return False

    @property
    def miss_rate_pct(self) -> float:
        total = self.hits + self.misses
        return 100.0 * self.misses / total if total else 0.0


class _BranchPredictor:
    """2-bit saturating counters indexed by pc."""

    __slots__ = ("entries", "table", "correct", "incorrect")

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.table: Dict[int, int] = {}
        self.correct = 0
        self.incorrect = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Returns True if the prediction was correct."""
        slot = (pc >> 2) % self.entries
        counter = self.table.get(slot, 1)  # weakly not-taken
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        if correct:
            self.correct += 1
        else:
            self.incorrect += 1
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self.table[slot] = counter
        return correct

    @property
    def mispredict_rate_pct(self) -> float:
        total = self.correct + self.incorrect
        return 100.0 * self.incorrect / total if total else 0.0


@dataclass
class TimingReport:
    """Cycle accounting for one run."""

    instructions: int
    cycles: int
    icache_miss_rate_pct: float
    dcache_miss_rate_pct: float
    branch_mispredict_rate_pct: float
    reused_instructions: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def speedup_over(self, baseline: "TimingReport") -> float:
        """Baseline cycles / these cycles (same instruction stream)."""
        return baseline.cycles / self.cycles if self.cycles else 0.0


class TimingModel(Analyzer):
    """Charges cycles for each retired instruction.

    ``reuse_provider`` (e.g. ``ReuseBuffer.was_reused``) short-circuits
    reused instructions: base cycle only, no functional-unit stalls, no
    data-cache access, and branches resolve without misprediction.
    Attach the provider's analyzer *before* this one.
    """

    def __init__(
        self,
        config: TimingConfig = TimingConfig(),
        reuse_provider: Optional[Callable[[StepRecord], bool]] = None,
    ) -> None:
        self.config = config
        self.reuse_provider = reuse_provider
        self.cycles = 0
        self.instructions = 0
        self.reused_instructions = 0
        self.icache = _Cache(config.icache_lines, config.icache_assoc, config.line_bytes)
        self.dcache = _Cache(config.dcache_lines, config.dcache_assoc, config.line_bytes)
        self.predictor = _BranchPredictor(config.bht_entries)

    def on_step(self, record: StepRecord) -> None:
        config = self.config
        self.instructions += 1
        cycles = 1
        # Instruction fetch always touches the I-cache.
        if not self.icache.access(record.pc):
            cycles += config.cache_miss_penalty

        reused = self.reuse_provider is not None and self.reuse_provider(record)
        if reused:
            self.reused_instructions += 1
            self.cycles += cycles
            return

        kind = record.instr.op.kind
        if kind == Kind.MULDIV:
            cycles += config.div_latency if record.instr.op.name.startswith("div") else config.mult_latency
        elif kind in (Kind.LOAD, Kind.STORE):
            if not self.dcache.access(record.mem_addr):  # type: ignore[arg-type]
                cycles += config.cache_miss_penalty
        elif kind == Kind.BRANCH:
            taken = bool(record.outputs and record.outputs[0])
            if not self.predictor.predict_and_update(record.pc, taken):
                cycles += config.branch_mispredict_penalty
        elif kind == Kind.SYSCALL:
            cycles += config.syscall_cost
        self.cycles += cycles

    def report(self) -> TimingReport:
        return TimingReport(
            instructions=self.instructions,
            cycles=self.cycles,
            icache_miss_rate_pct=self.icache.miss_rate_pct,
            dcache_miss_rate_pct=self.dcache.miss_rate_pct,
            branch_mispredict_rate_pct=self.predictor.mispredict_rate_pct,
            reused_instructions=self.reused_instructions,
        )
