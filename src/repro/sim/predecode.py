"""Predecoded execution engine: static instructions -> step closures.

The reference interpreter in :mod:`repro.sim.simulator` re-derives
everything about an instruction on every dynamic instance: it chains
string comparisons on the opcode name, re-reads format/kind/width
attributes, and re-normalizes immediates.  For the paper-scale windows
(hundreds of thousands of retired instructions) that per-step decode
dominates simulation time.

This module compiles each *static* instruction once into a specialized
Python closure with every compile-time-constant decision already taken:

* operand register indices, immediates (and their sign/zero-extended
  variants), branch targets, and the fall-through pc are captured as
  closure constants;
* writes to ``$zero`` are dropped at compile time;
* memory closures inline the sparse-page access of
  :class:`~repro.sim.memory.Memory` (page dict lookup + slice) instead of
  going through two method calls per access.

Compilation is two-stage so the per-``Program`` work is shared between
simulators:

1. :func:`predecode` (cached per program, weakly) pairs every
   instruction with two closure *factories*;
2. :func:`bind_fast` / :func:`bind_full` bind the factories to one
   simulator's register file / memory / syscall handler.

Two closure flavors exist because the simulator has two execution modes:

* **fast** closures (``() -> next_pc``) mutate machine state and return
  the next pc; used during warm-up and whenever no analyzer consumes
  :class:`~repro.sim.events.StepRecord` objects.  Control-transfer
  instructions that must emit events return a tuple
  ``(next_pc, CTRL_*, ...)`` instead of a bare int — the run loop
  distinguishes the two with a single ``type(r) is int`` check.
* **full** closures (``(index) -> (StepRecord, next_pc, ctrl)``) also
  build the step record the analyzers see, with semantics identical to
  the reference interpreter (the differential tests lock this down).

Control tuples carried by both flavors:

* ``(next_pc, CTRL_CALL, target, return_addr)`` / ``('call', target,
  return_addr)`` for ``jal``/``jalr``;
* ``(next_pc, CTRL_RETURN, target)`` / ``('return', target)`` for
  ``jr $ra``;
* ``(next_pc, CTRL_SYSCALL, service, arg, result, halt)`` /
  ``('syscall', service, arg, result, halt)`` for ``syscall``/``break``.
"""

from __future__ import annotations

import weakref
from typing import Callable, List, Tuple

from repro.asm.program import Program
from repro.isa import bits
from repro.isa.instructions import Format, Instruction, Kind
from repro.isa.registers import A0, RA, V0
from repro.sim.errors import SimError
from repro.sim.events import StepRecord
from repro.sim.memory import PAGE_MASK, PAGE_SHIFT

#: Control markers carried in the tuples returned by control closures.
#: Compared with ``is`` against these exact objects.
CTRL_CALL = "call"
CTRL_RETURN = "return"
CTRL_SYSCALL = "syscall"

#: Markers used by the trace-memoization wrappers that
#: :mod:`repro.traces.engine` plants over fast closures at trace anchors:
#: ``(end_pc, CTRL_TRACE_HIT, trace, inner)`` offers a validated replay,
#: ``(pc, CTRL_TRACE_REC, inner, index)`` asks the run loop to record.
#: Defined here with their siblings so the run loops import one module.
CTRL_TRACE_HIT = "trace-hit"
CTRL_TRACE_REC = "trace-record"

_M = 0xFFFFFFFF
_SIGN = 0x80000000
_TWO32 = 0x100000000

_EMPTY: Tuple[int, ...] = ()

#: ``(make_fast, make_full)`` per static instruction.
_Spec = Tuple[Callable, Callable]

# Keyed by id() because Program is an unhashable dataclass; the
# weakref.finalize evicts the entry when the program is collected, before
# its id can be reused.
_PREDECODED: "dict[int, List[_Spec]]" = {}


def predecode(program: Program) -> List[_Spec]:
    """Stage 1: compile every instruction to closure factories (cached)."""
    key = id(program)
    specs = _PREDECODED.get(key)
    if specs is None:
        specs = [_compile(instr) for instr in program.text]
        _PREDECODED[key] = specs
        weakref.finalize(program, _PREDECODED.pop, key, None)
    return specs


def bind_fast(sim) -> List[Callable[[], object]]:
    """Stage 2: bind the fast closures to one simulator's state."""
    return [make_fast(sim) for make_fast, _ in predecode(sim.program)]


def bind_full(sim) -> List[Callable[[int], tuple]]:
    """Stage 2: bind the record-building closures to one simulator."""
    return [make_full(sim) for _, make_full in predecode(sim.program)]


# ---------------------------------------------------------------------------
# ALU evaluation tables (full closures share these; fast closures are
# specialized per opcode below so the hot path stays a single call).
# ---------------------------------------------------------------------------

_I2_EVAL = {
    "addiu": lambda a, imm: (a + imm) & _M,
    "addi": lambda a, imm: (a + imm) & _M,
    "andi": lambda a, imm: a & imm,
    "ori": lambda a, imm: a | imm,
    "xori": lambda a, imm: a ^ imm,
    "slti": lambda a, imm: 1 if bits.to_s32(a) < imm else 0,
    "sltiu": lambda a, imm: 1 if a < (imm & _M) else 0,
}

_R3_EVAL = {
    "add": lambda a, b: (a + b) & _M,
    "addu": lambda a, b: (a + b) & _M,
    "sub": lambda a, b: (a - b) & _M,
    "subu": lambda a, b: (a - b) & _M,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: (~(a | b)) & _M,
    "slt": lambda a, b: 1 if (a ^ _SIGN) < (b ^ _SIGN) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
}

_SHIFT_EVAL = {
    "sll": lambda v, s: (v << s) & _M,
    "srl": lambda v, s: v >> s,
    "sra": bits.sra32,
}

_SHIFTV_EVAL = {
    "sllv": lambda v, a: (v << (a & 31)) & _M,
    "srlv": lambda v, a: v >> (a & 31),
    "srav": bits.sra32,
}

_MULDIV_EVAL = {
    "mult": bits.mult32,
    "multu": bits.multu32,
    "div": bits.div32,
    "divu": bits.divu32,
}


# ---------------------------------------------------------------------------
# Per-format compilers
# ---------------------------------------------------------------------------


def _compile(instr: Instruction) -> _Spec:
    op = instr.op
    fmt = op.fmt
    kind = op.kind
    if fmt == Format.I2:
        return _compile_i2(instr)
    if kind == Kind.LOAD:
        return _compile_load(instr)
    if kind == Kind.STORE:
        return _compile_store(instr)
    if fmt == Format.R3:
        return _compile_r3(instr)
    if fmt == Format.SHIFT:
        return _compile_shift(instr)
    if fmt == Format.R3_SHIFTV:
        return _compile_shiftv(instr)
    if kind == Kind.BRANCH:
        return _compile_branch(instr)
    if fmt == Format.LUI:
        return _compile_lui(instr)
    if kind == Kind.JUMP:
        return _compile_jump(instr)
    if kind == Kind.CALL:
        return _compile_call(instr)
    if kind == Kind.JUMP_REG:
        return _compile_jump_reg(instr)
    if kind == Kind.MULDIV:
        return _compile_muldiv(instr)
    if kind == Kind.MFHILO:
        return _compile_mfhilo(instr)
    if kind == Kind.SYSCALL:
        return _compile_syscall(instr)
    if kind == Kind.NOP:
        return _compile_nop(instr)
    return _compile_unimplemented(instr)


def _compile_i2(instr: Instruction) -> _Spec:
    name = instr.op.name
    rt, rs, imm = instr.rt, instr.rs, instr.imm
    addr = instr.addr
    next_pc = addr + 4
    evaluate = _I2_EVAL[name]

    def make_fast(sim):
        regs = sim.regs
        if rt == 0:
            # Result discarded; ALU ops have no other side effects.
            return lambda: next_pc
        if name == "addiu" or name == "addi":
            def step():
                regs[rt] = (regs[rs] + imm) & _M
                return next_pc
        elif name == "andi":
            def step():
                regs[rt] = regs[rs] & imm
                return next_pc
        elif name == "ori":
            def step():
                regs[rt] = regs[rs] | imm
                return next_pc
        elif name == "xori":
            def step():
                regs[rt] = regs[rs] ^ imm
                return next_pc
        elif name == "slti":
            ximm = (imm & _M) ^ _SIGN
            def step():
                regs[rt] = 1 if (regs[rs] ^ _SIGN) < ximm else 0
                return next_pc
        else:  # sltiu
            uimm = imm & _M
            def step():
                regs[rt] = 1 if regs[rs] < uimm else 0
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            a = regs[rs]
            result = evaluate(a, imm)
            if rt:
                regs[rt] = result
            return (
                StepRecord(n, addr, instr, (a,), (result,), rt, result, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_load(instr: Instruction) -> _Spec:
    op = instr.op
    rt, rs, imm = instr.rt, instr.rs, instr.imm
    addr = instr.addr
    next_pc = addr + 4
    width = op.mem_width
    signed = op.signed_load

    def make_fast(sim):
        regs = sim.regs
        pages = sim.memory._pages
        page_for = sim.memory._page
        if width == 4:
            def step():
                address = (regs[rs] + imm) & _M
                if address & 3:
                    raise SimError(f"unaligned word read at {address:#010x}")
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                offset = address & PAGE_MASK
                value = int.from_bytes(page[offset : offset + 4], "little")
                if rt:
                    regs[rt] = value
                return next_pc
        elif width == 2:
            def step():
                address = (regs[rs] + imm) & _M
                if address & 1:
                    raise SimError(f"unaligned halfword read at {address:#010x}")
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                offset = address & PAGE_MASK
                value = int.from_bytes(page[offset : offset + 2], "little")
                if signed and value >= 0x8000:
                    value += 0xFFFF0000
                if rt:
                    regs[rt] = value
                return next_pc
        else:
            def step():
                address = (regs[rs] + imm) & _M
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                value = page[address & PAGE_MASK]
                if signed and value >= 0x80:
                    value += 0xFFFFFF00
                if rt:
                    regs[rt] = value
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        memory = sim.memory
        if width == 4:
            read = memory.read_word
        elif width == 2:
            read = memory.read_half
        else:
            read = memory.read_byte
        def step(n):
            base = regs[rs]
            address = (base + imm) & _M
            value = read(address)
            if signed:
                if width == 2:
                    value = bits.to_u32(bits.to_s16(value))
                elif width == 1:
                    value = bits.to_u32(bits.to_s8(value))
            if rt:
                regs[rt] = value
            return (
                StepRecord(n, addr, instr, (base,), (value,), rt, value, address, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_store(instr: Instruction) -> _Spec:
    rt, rs, imm = instr.rt, instr.rs, instr.imm
    addr = instr.addr
    next_pc = addr + 4
    width = instr.op.mem_width

    def make_fast(sim):
        regs = sim.regs
        pages = sim.memory._pages
        page_for = sim.memory._page
        if width == 4:
            def step():
                address = (regs[rs] + imm) & _M
                if address & 3:
                    raise SimError(f"unaligned word write at {address:#010x}")
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                offset = address & PAGE_MASK
                page[offset : offset + 4] = (regs[rt] & _M).to_bytes(4, "little")
                return next_pc
        elif width == 2:
            def step():
                address = (regs[rs] + imm) & _M
                if address & 1:
                    raise SimError(f"unaligned halfword write at {address:#010x}")
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                offset = address & PAGE_MASK
                page[offset : offset + 2] = (regs[rt] & 0xFFFF).to_bytes(2, "little")
                return next_pc
        else:
            def step():
                address = (regs[rs] + imm) & _M
                page = pages.get(address >> PAGE_SHIFT)
                if page is None:
                    page = page_for(address)
                page[address & PAGE_MASK] = regs[rt] & 0xFF
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        memory = sim.memory
        if width == 4:
            write = memory.write_word
        elif width == 2:
            write = memory.write_half
        else:
            write = memory.write_byte
        def step(n):
            data = regs[rt]
            base = regs[rs]
            address = (base + imm) & _M
            write(address, data)
            return (
                StepRecord(
                    n, addr, instr, (data, base), _EMPTY, None, 0, address, data
                ),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_r3(instr: Instruction) -> _Spec:
    name = instr.op.name
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    addr = instr.addr
    next_pc = addr + 4
    evaluate = _R3_EVAL[name]

    def make_fast(sim):
        regs = sim.regs
        if rd == 0:
            return lambda: next_pc
        if name == "addu" or name == "add":
            def step():
                regs[rd] = (regs[rs] + regs[rt]) & _M
                return next_pc
        elif name == "subu" or name == "sub":
            def step():
                regs[rd] = (regs[rs] - regs[rt]) & _M
                return next_pc
        elif name == "and":
            def step():
                regs[rd] = regs[rs] & regs[rt]
                return next_pc
        elif name == "or":
            def step():
                regs[rd] = regs[rs] | regs[rt]
                return next_pc
        elif name == "xor":
            def step():
                regs[rd] = regs[rs] ^ regs[rt]
                return next_pc
        elif name == "nor":
            def step():
                regs[rd] = (~(regs[rs] | regs[rt])) & _M
                return next_pc
        elif name == "slt":
            def step():
                regs[rd] = 1 if (regs[rs] ^ _SIGN) < (regs[rt] ^ _SIGN) else 0
                return next_pc
        else:  # sltu
            def step():
                regs[rd] = 1 if regs[rs] < regs[rt] else 0
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            a = regs[rs]
            b = regs[rt]
            result = evaluate(a, b)
            if rd:
                regs[rd] = result
            return (
                StepRecord(n, addr, instr, (a, b), (result,), rd, result, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_shift(instr: Instruction) -> _Spec:
    name = instr.op.name
    rd, rt, shamt = instr.rd, instr.rt, instr.shamt
    addr = instr.addr
    next_pc = addr + 4
    evaluate = _SHIFT_EVAL[name]

    def make_fast(sim):
        regs = sim.regs
        if rd == 0:
            return lambda: next_pc
        if name == "sll":
            def step():
                regs[rd] = (regs[rt] << shamt) & _M
                return next_pc
        elif name == "srl":
            def step():
                regs[rd] = regs[rt] >> shamt
                return next_pc
        else:  # sra
            s = shamt & 31
            def step():
                v = regs[rt]
                regs[rd] = v >> s if v < _SIGN else ((v - _TWO32) >> s) & _M
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            value = regs[rt]
            result = evaluate(value, shamt)
            if rd:
                regs[rd] = result
            return (
                StepRecord(n, addr, instr, (value,), (result,), rd, result, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_shiftv(instr: Instruction) -> _Spec:
    name = instr.op.name
    rd, rs, rt = instr.rd, instr.rs, instr.rt
    addr = instr.addr
    next_pc = addr + 4
    evaluate = _SHIFTV_EVAL[name]

    def make_fast(sim):
        regs = sim.regs
        if rd == 0:
            return lambda: next_pc
        if name == "sllv":
            def step():
                regs[rd] = (regs[rt] << (regs[rs] & 31)) & _M
                return next_pc
        elif name == "srlv":
            def step():
                regs[rd] = regs[rt] >> (regs[rs] & 31)
                return next_pc
        else:  # srav
            def step():
                s = regs[rs] & 31
                v = regs[rt]
                regs[rd] = v >> s if v < _SIGN else ((v - _TWO32) >> s) & _M
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            value = regs[rt]
            amount = regs[rs]
            result = evaluate(value, amount)
            if rd:
                regs[rd] = result
            return (
                StepRecord(
                    n, addr, instr, (value, amount), (result,), rd, result, None, None
                ),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_branch(instr: Instruction) -> _Spec:
    name = instr.op.name
    rs, rt = instr.rs, instr.rt
    target = instr.target
    addr = instr.addr
    next_pc = addr + 4
    two_reg = instr.op.fmt == Format.BR2

    def make_fast(sim):
        regs = sim.regs
        if name == "beq":
            def step():
                return target if regs[rs] == regs[rt] else next_pc
        elif name == "bne":
            def step():
                return target if regs[rs] != regs[rt] else next_pc
        elif name == "blez":
            def step():
                a = regs[rs]
                return target if a == 0 or a & _SIGN else next_pc
        elif name == "bgtz":
            def step():
                a = regs[rs]
                return target if a and a < _SIGN else next_pc
        elif name == "bltz":
            def step():
                return target if regs[rs] & _SIGN else next_pc
        else:  # bgez
            def step():
                return target if regs[rs] < _SIGN else next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        if two_reg:
            equal = name == "beq"
            def step(n):
                a = regs[rs]
                b = regs[rt]
                taken = (a == b) if equal else (a != b)
                return (
                    StepRecord(
                        n, addr, instr, (a, b), (1,) if taken else (0,), None, 0, None, None
                    ),
                    target if taken else next_pc,
                    None,
                )
        else:
            def step(n):
                a = regs[rs]
                signed = bits.to_s32(a)
                if name == "blez":
                    taken = signed <= 0
                elif name == "bgtz":
                    taken = signed > 0
                elif name == "bltz":
                    taken = signed < 0
                else:  # bgez
                    taken = signed >= 0
                return (
                    StepRecord(
                        n, addr, instr, (a,), (1,) if taken else (0,), None, 0, None, None
                    ),
                    target if taken else next_pc,
                    None,
                )
        return step

    return make_fast, make_full


def _compile_lui(instr: Instruction) -> _Spec:
    rt = instr.rt
    addr = instr.addr
    next_pc = addr + 4
    result = (instr.imm << 16) & _M

    def make_fast(sim):
        regs = sim.regs
        if rt == 0:
            return lambda: next_pc
        def step():
            regs[rt] = result
            return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            if rt:
                regs[rt] = result
            return (
                StepRecord(n, addr, instr, _EMPTY, (result,), rt, result, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_jump(instr: Instruction) -> _Spec:
    target = instr.target
    addr = instr.addr

    def make_fast(sim):
        return lambda: target

    def make_full(sim):
        def step(n):
            return (
                StepRecord(n, addr, instr, _EMPTY, _EMPTY, None, 0, None, None),
                target,
                None,
            )
        return step

    return make_fast, make_full


def _compile_call(instr: Instruction) -> _Spec:
    addr = instr.addr
    return_addr = addr + 4
    if instr.op.fmt == Format.J:  # jal
        target = instr.target

        def make_fast(sim):
            regs = sim.regs
            def step():
                regs[RA] = return_addr
                return (target, CTRL_CALL, target, return_addr)
            return step

        def make_full(sim):
            regs = sim.regs
            def step(n):
                regs[RA] = return_addr
                return (
                    StepRecord(n, addr, instr, _EMPTY, _EMPTY, RA, return_addr, None, None),
                    target,
                    (CTRL_CALL, target, return_addr),
                )
            return step

        return make_fast, make_full

    # jalr
    rd, rs = instr.rd, instr.rs

    def make_fast(sim):
        regs = sim.regs
        def step():
            target = regs[rs]
            if rd:
                regs[rd] = return_addr
            return (target, CTRL_CALL, target, return_addr)
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            target = regs[rs]
            if rd:
                regs[rd] = return_addr
            return (
                StepRecord(n, addr, instr, (target,), _EMPTY, rd, return_addr, None, None),
                target,
                (CTRL_CALL, target, return_addr),
            )
        return step

    return make_fast, make_full


def _compile_jump_reg(instr: Instruction) -> _Spec:
    rs = instr.rs
    addr = instr.addr
    is_return = rs == RA

    def make_fast(sim):
        regs = sim.regs
        if is_return:
            def step():
                target = regs[rs]
                return (target, CTRL_RETURN, target)
        else:
            def step():
                return regs[rs]
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            target = regs[rs]
            return (
                StepRecord(n, addr, instr, (target,), _EMPTY, None, 0, None, None),
                target,
                (CTRL_RETURN, target) if is_return else None,
            )
        return step

    return make_fast, make_full


def _compile_muldiv(instr: Instruction) -> _Spec:
    rs, rt = instr.rs, instr.rt
    addr = instr.addr
    next_pc = addr + 4
    evaluate = _MULDIV_EVAL[instr.op.name]

    def make_fast(sim):
        regs = sim.regs
        def step():
            sim.hi, sim.lo = evaluate(regs[rs], regs[rt])
            return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            a = regs[rs]
            b = regs[rt]
            hi, lo = evaluate(a, b)
            sim.hi, sim.lo = hi, lo
            return (
                StepRecord(n, addr, instr, (a, b), (hi, lo), None, 0, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_mfhilo(instr: Instruction) -> _Spec:
    rd = instr.rd
    addr = instr.addr
    next_pc = addr + 4
    from_hi = instr.op.name == "mfhi"

    def make_fast(sim):
        regs = sim.regs
        if rd == 0:
            return lambda: next_pc
        if from_hi:
            def step():
                regs[rd] = sim.hi
                return next_pc
        else:
            def step():
                regs[rd] = sim.lo
                return next_pc
        return step

    def make_full(sim):
        regs = sim.regs
        def step(n):
            value = sim.hi if from_hi else sim.lo
            if rd:
                regs[rd] = value
            return (
                StepRecord(n, addr, instr, (value,), (value,), rd, value, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_syscall(instr: Instruction) -> _Spec:
    addr = instr.addr
    next_pc = addr + 4

    def make_fast(sim):
        regs = sim.regs
        memory = sim.memory
        handle = sim.syscalls.handle
        def step():
            service = regs[V0]
            arg = regs[A0]
            result, halt = handle(service, arg, memory)
            if result is not None:
                regs[V0] = result
            return (next_pc, CTRL_SYSCALL, service, arg, result, halt)
        return step

    def make_full(sim):
        regs = sim.regs
        memory = sim.memory
        handle = sim.syscalls.handle
        def step(n):
            service = regs[V0]
            arg = regs[A0]
            result, halt = handle(service, arg, memory)
            if result is not None:
                regs[V0] = result
                record = StepRecord(
                    n, addr, instr, (service, arg), (result,), V0, result, None, None
                )
            else:
                record = StepRecord(
                    n, addr, instr, (service, arg), _EMPTY, None, 0, None, None
                )
            return record, next_pc, (CTRL_SYSCALL, service, arg, result, halt)
        return step

    return make_fast, make_full


def _compile_nop(instr: Instruction) -> _Spec:
    addr = instr.addr
    next_pc = addr + 4

    def make_fast(sim):
        return lambda: next_pc

    def make_full(sim):
        def step(n):
            return (
                StepRecord(n, addr, instr, _EMPTY, _EMPTY, None, 0, None, None),
                next_pc,
                None,
            )
        return step

    return make_fast, make_full


def _compile_unimplemented(instr: Instruction) -> _Spec:  # pragma: no cover
    name = instr.op.name
    addr = instr.addr

    def make_fast(sim):
        def step():
            raise SimError(f"unimplemented opcode {name}", addr)
        return step

    def make_full(sim):
        def step(n):
            raise SimError(f"unimplemented opcode {name}", addr)
        return step

    return make_fast, make_full


# ----------------------------------------------------------------------
# Telemetry: counted bindings
# ----------------------------------------------------------------------

#: Index into the kind-count cell list used by counted bindings.
COUNT_BRANCHES = 0
COUNT_MEMOPS = 1
COUNT_KINDS = 2


def _count_class(instr: Instruction):
    """Which telemetry cell (if any) a dynamic instance increments."""
    kind = instr.op.kind
    if kind is Kind.BRANCH:
        return COUNT_BRANCHES
    if kind is Kind.LOAD or kind is Kind.STORE:
        return COUNT_MEMOPS
    return None


def _wrap_counted(code: list, program: Program, counts, full: bool) -> list:
    """Wrap only the closures whose kind is counted (branches, memops).

    ALU/jump/syscall closures are untouched, so the metrics-enabled hot
    loop pays one extra call frame on ~a quarter of retired instructions
    and nothing on the rest — measured well inside the 5% overhead
    budget on the bare-throughput benchmark.
    """
    wrapped = list(code)
    for index, instr in enumerate(program.text):
        cell = _count_class(instr)
        if cell is None:
            continue
        inner = code[index]
        if full:

            def step_full(n, _inner=inner, _counts=counts, _cell=cell):
                _counts[_cell] += 1
                return _inner(n)

            wrapped[index] = step_full
        else:

            def step_fast(_inner=inner, _counts=counts, _cell=cell):
                _counts[_cell] += 1
                return _inner()

            wrapped[index] = step_fast
    return wrapped


def bind_fast_counted(sim, counts) -> List[Callable[[], object]]:
    """:func:`bind_fast` plus per-kind dynamic counting into ``counts``."""
    return _wrap_counted(bind_fast(sim), sim.program, counts, full=False)


def bind_full_counted(sim, counts) -> List[Callable[[int], tuple]]:
    """:func:`bind_full` plus per-kind dynamic counting into ``counts``."""
    return _wrap_counted(bind_full(sim), sim.program, counts, full=True)
