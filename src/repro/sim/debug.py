"""Interactive debugger over the functional simulator.

Built on the simulator's pause/resume support: a hook analyzer watches
the event stream and requests a pause when a breakpoint or watchpoint
hits (or a single-step budget runs out).  Because the hook observes
*retired* instructions, the debugger stops **after** executing the
instruction that triggered — the machine state already reflects it.

Example::

    dbg = Debugger(program, input_data=b"...")
    dbg.add_breakpoint("encode_block")      # function symbol or address
    dbg.add_watchpoint(program.symbols["total"])
    stop = dbg.run()
    while stop.reason == "breakpoint":
        print(hex(stop.pc), dbg.read_register("$a0"))
        stop = dbg.cont()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Union

from repro.asm.program import Program
from repro.isa.registers import register_index
from repro.sim.errors import SimError
from repro.sim.events import StepRecord
from repro.sim.observer import Analyzer
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class DebugStop:
    """Why and where the debugger stopped."""

    #: "breakpoint" | "watchpoint" | "step" | "halt" | "exit" | "limit"
    reason: str
    #: pc of the instruction that triggered (0 for program end).
    pc: int
    #: For watchpoints: the memory word that was touched.
    address: Optional[int] = None
    #: Total instructions executed so far.
    instructions: int = 0
    #: Program output so far.
    output: str = ""


class _DebugHook(Analyzer):
    """Watches retired instructions for breakpoint/watchpoint hits."""

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator
        self.breakpoints: Set[int] = set()
        self.watch_words: Set[int] = set()
        self.step_budget: Optional[int] = None
        self.pending: Optional[DebugStop] = None

    def on_step(self, record: StepRecord) -> None:
        if record.pc in self.breakpoints:
            self.pending = DebugStop("breakpoint", record.pc, None, record.index)
            self.simulator.request_pause()
            return
        if self.watch_words and record.mem_addr is not None:
            word = record.mem_addr & ~3
            if word in self.watch_words:
                self.pending = DebugStop("watchpoint", record.pc, word, record.index)
                self.simulator.request_pause()
                return
        if self.step_budget is not None:
            self.step_budget -= 1
            if self.step_budget <= 0:
                self.step_budget = None
                self.pending = DebugStop("step", record.pc, None, record.index)
                self.simulator.request_pause()


class Debugger:
    """Breakpoints, watchpoints, and single-stepping over a program."""

    def __init__(
        self,
        program: Program,
        input_data: bytes = b"",
        analyzers: Sequence[Analyzer] = (),
    ) -> None:
        self.program = program
        self.simulator = Simulator(program, input_data=input_data)
        for analyzer in analyzers:
            self.simulator.attach(analyzer)
        self._hook = _DebugHook(self.simulator)
        self.simulator.attach(self._hook)
        self._finished = False

    # -- configuration -----------------------------------------------------

    def _resolve(self, location: Union[int, str]) -> int:
        if isinstance(location, int):
            return location
        address = self.program.symbols.get(location)
        if address is None:
            raise KeyError(f"unknown symbol {location!r}")
        return address

    def add_breakpoint(self, location: Union[int, str]) -> int:
        """Break after executing the instruction at a symbol/address."""
        address = self._resolve(location)
        self._hook.breakpoints.add(address)
        return address

    def remove_breakpoint(self, location: Union[int, str]) -> None:
        self._hook.breakpoints.discard(self._resolve(location))

    def add_watchpoint(self, location: Union[int, str]) -> int:
        """Break on any load or store touching the given word."""
        address = self._resolve(location) & ~3
        self._hook.watch_words.add(address)
        return address

    def remove_watchpoint(self, location: Union[int, str]) -> None:
        self._hook.watch_words.discard(self._resolve(location) & ~3)

    # -- execution -------------------------------------------------------------

    def _stop_from(self, result) -> DebugStop:
        if result.stop_reason == "paused" and self._hook.pending is not None:
            pending = self._hook.pending
            self._hook.pending = None
            return DebugStop(
                pending.reason,
                pending.pc,
                pending.address,
                pending.instructions,
                result.output,
            )
        self._finished = True
        return DebugStop(
            result.stop_reason,
            self.simulator.pc,
            None,
            result.analyzed_instructions,
            result.output,
        )

    def run(self, limit: Optional[int] = None) -> DebugStop:
        """Start (or continue) execution until the next stop."""
        if self._finished:
            raise SimError("program already finished")
        if self.simulator.paused:
            return self._stop_from(self.simulator.resume())
        return self._stop_from(self.simulator.run(limit=limit))

    def cont(self) -> DebugStop:
        """Continue after a stop (alias for :meth:`run`)."""
        return self.run()

    def step(self, count: int = 1) -> DebugStop:
        """Execute ``count`` instructions, then stop."""
        self._hook.step_budget = count
        return self.run()

    # -- inspection -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def read_register(self, name: str) -> int:
        return self.simulator.regs[register_index(name)]

    def read_word(self, address: Union[int, str]) -> int:
        return self.simulator.memory.read_word(self._resolve(address))

    def current_function(self) -> Optional[str]:
        info = self.program.function_at(self.simulator.pc)
        return info.name if info else None

    def backtrace(self) -> List[str]:
        """Function names on the live call stack, outermost first."""
        return [
            frame.function.name if frame.function else "<unknown>"
            for frame in self.simulator.call_stack
        ]
