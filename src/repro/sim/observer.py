"""Analyzer (observer) protocol.

Every analysis in :mod:`repro.core` subclasses :class:`Analyzer` and is
attached to a :class:`~repro.sim.simulator.Simulator` (or fed a synthetic
event stream directly in tests).  The simulator delivers:

* ``on_start(program)`` once before execution;
* ``on_call`` / ``on_return`` / ``on_syscall`` at function and syscall
  boundaries — *including* during any warm-up (skip) window, flagged via
  the event's ``warmup`` attribute, so analyzers can keep structural
  state (call stacks) consistent without counting warm-up activity;
* ``on_step(record)`` for every retired instruction after the warm-up
  window;
* ``on_finish()`` once after execution.
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent


class Analyzer:
    """Base class for execution-stream analyses.  All hooks are no-ops."""

    def on_start(self, program: Program) -> None:
        """Called once before the first instruction executes."""

    def on_step(self, record: StepRecord) -> None:
        """Called for every retired instruction (after any skip window)."""

    def on_call(self, event: CallEvent) -> None:
        """Called at every function call boundary."""

    def on_return(self, event: ReturnEvent) -> None:
        """Called at every function return boundary."""

    def on_syscall(self, event: SyscallEvent) -> None:
        """Called after every syscall."""

    def on_finish(self) -> None:
        """Called once when execution stops."""
