"""Syscall layer: program I/O and the heap break.

The syscall boundary is where *external input* enters the machine — the
paper's global analysis tags every value produced by ``READ_INT`` /
``READ_CHAR`` as externally derived.  Input is modelled as a byte stream
(:class:`InputStream`) so workloads consume input the way the SPEC
programs do (character scanning, ``scanf``-style integer parsing).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.bits import to_s32, to_u32
from repro.isa.convention import HEAP_BASE, Syscall
from repro.sim.errors import SimError

#: getchar()-style EOF marker returned by READ_CHAR / READ_INT at end of
#: input (-1 as an unsigned word).
EOF_WORD = 0xFFFFFFFF


class InputStream:
    """A byte stream consumed by read syscalls."""

    def __init__(self, data: bytes = b"") -> None:
        self._data = data
        self._pos = 0

    def read_char(self) -> int:
        """Next byte, or -1 (as u32) at end of stream."""
        if self._pos >= len(self._data):
            return EOF_WORD
        byte = self._data[self._pos]
        self._pos += 1
        return byte

    def read_int(self) -> int:
        """Parse a whitespace-delimited decimal integer, scanf-style."""
        data, pos = self._data, self._pos
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        start = pos
        if pos < len(data) and data[pos] in b"+-":
            pos += 1
        digits = pos
        while pos < len(data) and data[pos : pos + 1].isdigit():
            pos += 1
        self._pos = pos
        if pos == digits:  # no digits found
            return EOF_WORD
        return to_u32(int(data[start:pos]))

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)


class SyscallHandler:
    """Implements the syscall services against an input/output pair."""

    #: Services whose result is externally derived input.
    INPUT_SERVICES = frozenset({Syscall.READ_INT, Syscall.READ_CHAR})
    #: Services that perform output (a side effect for memoization).
    OUTPUT_SERVICES = frozenset(
        {Syscall.PRINT_INT, Syscall.PRINT_STRING, Syscall.PRINT_CHAR}
    )

    def __init__(self, input_stream: Optional[InputStream] = None) -> None:
        self.input = input_stream if input_stream is not None else InputStream()
        self.output: List[str] = []
        self.brk = HEAP_BASE
        self.exited = False
        self.exit_code = 0
        #: Total services handled (telemetry reads this at end of run).
        self.invocations = 0

    def output_text(self) -> str:
        """Everything the program printed, concatenated."""
        return "".join(self.output)

    def handle(self, service: int, arg: int, memory) -> Tuple[Optional[int], bool]:
        """Execute one syscall.

        Returns ``(result, halt)`` where ``result`` goes to ``$v0`` (or is
        ``None`` for services with no result).
        """
        self.invocations += 1
        if service == Syscall.PRINT_INT:
            self.output.append(str(to_s32(arg)))
            return None, False
        if service == Syscall.PRINT_CHAR:
            self.output.append(chr(arg & 0xFF))
            return None, False
        if service == Syscall.PRINT_STRING:
            self.output.append(memory.read_cstring(arg).decode("latin-1"))
            return None, False
        if service == Syscall.READ_INT:
            return self.input.read_int(), False
        if service == Syscall.READ_CHAR:
            return self.input.read_char(), False
        if service == Syscall.SBRK:
            old = self.brk
            self.brk = (self.brk + to_s32(arg) + 7) & ~7
            return old, False
        if service == Syscall.EXIT:
            self.exited = True
            self.exit_code = to_s32(arg)
            return None, True
        raise SimError(f"unknown syscall service {service}")
