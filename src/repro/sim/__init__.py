"""Functional simulation substrate.

:class:`Simulator` executes a :class:`~repro.asm.program.Program` and
streams per-instruction :class:`StepRecord` events plus call/return/
syscall events to attached :class:`Analyzer` objects — the instrumentation
backend that the paper built on SimpleScalar.
"""

from repro.sim.debug import Debugger, DebugStop
from repro.sim.errors import SimError
from repro.sim.events import CallEvent, ReturnEvent, StepRecord, SyscallEvent
from repro.sim.memory import Memory
from repro.sim.observer import Analyzer
from repro.sim.simulator import (
    DEFAULT_ENGINE,
    ENGINES,
    HALT_ADDRESS,
    RunResult,
    Simulator,
)
from repro.sim.syscalls import EOF_WORD, InputStream, SyscallHandler
from repro.sim.timing import TimingConfig, TimingModel, TimingReport
from repro.sim.trace import Trace, TraceRecorder

__all__ = [
    "Analyzer",
    "CallEvent",
    "DEFAULT_ENGINE",
    "DebugStop",
    "Debugger",
    "ENGINES",
    "EOF_WORD",
    "HALT_ADDRESS",
    "InputStream",
    "Memory",
    "ReturnEvent",
    "RunResult",
    "SimError",
    "Simulator",
    "StepRecord",
    "SyscallEvent",
    "SyscallHandler",
    "TimingConfig",
    "TimingModel",
    "TimingReport",
    "Trace",
    "TraceRecorder",
]
