"""Semantic analysis for MiniC.

Responsibilities:

* build symbol tables (globals, functions, builtins, block-scoped locals);
* resolve every identifier and annotate every expression with its type;
* enforce C-subset typing rules (lvalues, pointer arithmetic, call
  signatures, loop-scoped ``break``/``continue``);
* fold constant subexpressions so large constants reach the code
  generator as single literals (which then exercise the assembler's
  ``lui``/``ori`` synthesis, an ISA-induced repetition source);
* record per-function facts codegen needs: the flat list of locals,
  whether the function makes calls, which locals have their address
  taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.convention import MAX_REGISTER_ARGS
from repro.lang import astnodes as ast
from repro.lang.errors import SemaError
from repro.lang.types import (
    ArrayType,
    CHAR,
    FunctionType,
    INT,
    PointerType,
    Type,
    VOID,
    compatible_assignment,
)


# ---------------------------------------------------------------------------
# Symbols
# ---------------------------------------------------------------------------


@dataclass
class GlobalSymbol:
    name: str
    ctype: Type
    init: Optional[ast.Initializer]
    #: Assembly label (same as name; globals live in .data).
    label: str = ""

    def __post_init__(self) -> None:
        self.label = self.name


@dataclass
class LocalSymbol:
    name: str
    ctype: Type
    #: Parameter index (0-based) or None for plain locals.
    param_index: Optional[int] = None
    #: True if & was applied or the local is an array (must live on stack).
    address_taken: bool = False
    #: Codegen fills these: "sreg" home index or stack frame offset.
    sreg: Optional[int] = None
    frame_offset: Optional[int] = None

    @property
    def is_param(self) -> bool:
        return self.param_index is not None


@dataclass
class FunctionSymbol:
    name: str
    ftype: FunctionType
    defined: bool = False


@dataclass(frozen=True)
class Builtin:
    """A builtin function compiled to an inline syscall sequence."""

    name: str
    ret: Type
    params: Tuple[Type, ...]
    service: int


@dataclass
class FunctionInfoSema:
    """Facts about one function collected during analysis."""

    symbol: FunctionSymbol
    params: List[LocalSymbol] = field(default_factory=list)
    #: All locals including params, in declaration order.
    locals: List[LocalSymbol] = field(default_factory=list)
    makes_calls: bool = False


def _make_builtins() -> Dict[str, Builtin]:
    from repro.isa.convention import Syscall

    char_ptr = PointerType(CHAR)
    return {
        b.name: b
        for b in (
            Builtin("getchar", INT, (), Syscall.READ_CHAR),
            Builtin("putchar", VOID, (INT,), Syscall.PRINT_CHAR),
            Builtin("print_int", VOID, (INT,), Syscall.PRINT_INT),
            Builtin("print_str", VOID, (char_ptr,), Syscall.PRINT_STRING),
            Builtin("read_int", INT, (), Syscall.READ_INT),
            Builtin("exit", VOID, (INT,), Syscall.EXIT),
            Builtin("sbrk", char_ptr, (INT,), Syscall.SBRK),
        )
    }


BUILTINS = _make_builtins()


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


class SemanticAnalyzer:
    """Type-checks and annotates a parsed translation unit."""

    def __init__(self, unit: ast.TranslationUnit) -> None:
        self.unit = unit
        self.globals: Dict[str, GlobalSymbol] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.function_info: Dict[str, FunctionInfoSema] = {}
        self._scopes: List[Dict[str, LocalSymbol]] = []
        self._current: Optional[FunctionInfoSema] = None
        self._loop_depth = 0
        self._break_depth = 0  # loops + switches

    def error(self, message: str, node) -> SemaError:
        return SemaError(message, getattr(node, "line", 0))

    # -- entry point -----------------------------------------------------

    def analyze(self) -> ast.TranslationUnit:
        for decl in self.unit.globals:
            self._declare_global(decl)
        for func in self.unit.functions:
            self._declare_function(func)
        for func in self.unit.functions:
            self._check_function(func)
        if "main" not in self.functions:
            raise SemaError("program has no 'main' function")
        return self.unit

    # -- declarations ------------------------------------------------------

    def _declare_global(self, decl: ast.GlobalDecl) -> None:
        if decl.name in self.globals or decl.name in BUILTINS:
            raise self.error(f"redefinition of {decl.name!r}", decl)
        if decl.declared_type == VOID:
            raise self.error("global cannot have type void", decl)
        if isinstance(decl.init, list) and not isinstance(decl.declared_type, ArrayType):
            raise self.error("brace initializer on non-array", decl)
        if isinstance(decl.init, str):
            if not (
                isinstance(decl.declared_type, ArrayType)
                and decl.declared_type.element == CHAR
            ) and decl.declared_type != PointerType(CHAR):
                raise self.error("string initializer needs char array or char*", decl)
        if (
            isinstance(decl.init, list)
            and isinstance(decl.declared_type, ArrayType)
            and len(decl.init) > decl.declared_type.length
        ):
            raise self.error("too many initializers", decl)
        self.globals[decl.name] = GlobalSymbol(decl.name, decl.declared_type, decl.init)

    def _declare_function(self, func: ast.FunctionDef) -> None:
        if func.name in self.functions or func.name in BUILTINS or func.name in self.globals:
            raise self.error(f"redefinition of {func.name!r}", func)
        if len(func.params) > MAX_REGISTER_ARGS:
            raise self.error(
                f"function {func.name!r} has more than {MAX_REGISTER_ARGS} parameters", func
            )
        ftype = FunctionType(func.return_type, tuple(p.declared_type for p in func.params))
        self.functions[func.name] = FunctionSymbol(func.name, ftype, defined=True)

    # -- scopes ----------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _bind_local(self, symbol: LocalSymbol, node) -> None:
        scope = self._scopes[-1]
        if symbol.name in scope:
            raise self.error(f"redeclaration of {symbol.name!r}", node)
        scope[symbol.name] = symbol
        assert self._current is not None
        self._current.locals.append(symbol)

    def _lookup(self, name: str) -> Optional[object]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        if name in self.functions:
            return self.functions[name]
        if name in BUILTINS:
            return BUILTINS[name]
        return None

    # -- functions ---------------------------------------------------------

    def _check_function(self, func: ast.FunctionDef) -> None:
        info = FunctionInfoSema(self.functions[func.name])
        self.function_info[func.name] = info
        self._current = info
        self._push_scope()
        for index, param in enumerate(func.params):
            if param.declared_type == VOID:
                raise self.error("parameter cannot be void", param)
            symbol = LocalSymbol(param.name, param.declared_type, param_index=index)
            self._bind_local(symbol, param)
            info.params.append(symbol)
        self._check_block(func.body, func.return_type, new_scope=False)
        self._pop_scope()
        self._current = None

    def _check_block(self, block: ast.Block, ret: Type, new_scope: bool = True) -> None:
        if new_scope:
            self._push_scope()
        for stmt in block.statements:
            self._check_statement(stmt, ret)
        if new_scope:
            self._pop_scope()

    def _check_statement(self, stmt: ast.Stmt, ret: Type) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, ret)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
            self._check_statement(stmt.then_body, ret)
            if stmt.else_body is not None:
                self._check_statement(stmt.else_body, ret)
        elif isinstance(stmt, ast.While):
            self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
            self._loop_depth += 1
            self._break_depth += 1
            self._check_statement(stmt.body, ret)
            self._loop_depth -= 1
            self._break_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._break_depth += 1
            self._check_statement(stmt.body, ret)
            self._loop_depth -= 1
            self._break_depth -= 1
            self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt, ret)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_expr(stmt.init)
            if stmt.cond is not None:
                self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step)
            self._loop_depth += 1
            self._break_depth += 1
            self._check_statement(stmt.body, ret)
            self._loop_depth -= 1
            self._break_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if ret != VOID:
                    raise self.error("non-void function must return a value", stmt)
            else:
                if ret == VOID:
                    raise self.error("void function cannot return a value", stmt)
                value_type = self._check_expr(stmt.value)
                if not compatible_assignment(ret, value_type):
                    raise self.error(f"cannot return {value_type} as {ret}", stmt)
        elif isinstance(stmt, ast.Break):
            if self._break_depth == 0:
                raise self.error("break outside loop or switch", stmt)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise self.error("continue outside loop", stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt)
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(f"unknown statement {type(stmt).__name__}", stmt)

    def _check_switch(self, stmt: ast.Switch, ret: Type) -> None:
        selector_type = self._check_expr(stmt.selector)
        if not selector_type.decayed().is_arithmetic:
            raise self.error("switch selector must be arithmetic", stmt)
        seen_values = set()
        defaults = 0
        self._break_depth += 1
        self._push_scope()
        for case in stmt.cases:
            for value in case.values:
                if value in seen_values:
                    raise self.error(f"duplicate case value {value}", case)
                seen_values.add(value)
            if case.is_default:
                defaults += 1
                if defaults > 1:
                    raise self.error("multiple default labels", case)
            for inner in case.body:
                self._check_statement(inner, ret)
        self._pop_scope()
        self._break_depth -= 1

    def _check_var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.declared_type == VOID:
            raise self.error("variable cannot be void", stmt)
        symbol = LocalSymbol(stmt.name, stmt.declared_type)
        if isinstance(stmt.declared_type, ArrayType):
            symbol.address_taken = True  # arrays must live in memory
            if stmt.init is not None:
                raise self.error("local arrays cannot have initializers", stmt)
        self._bind_local(symbol, stmt)
        stmt.symbol = symbol
        if stmt.init is not None:
            init_type = self._check_expr(stmt.init)
            if not compatible_assignment(stmt.declared_type, init_type):
                raise self.error(
                    f"cannot initialize {stmt.declared_type} with {init_type}", stmt
                )

    # -- expressions -----------------------------------------------------

    def _require_scalar(self, ctype: Type, node) -> None:
        if not ctype.decayed().is_scalar:
            raise self.error(f"expected scalar value, got {ctype}", node)

    def _check_expr(self, expr: ast.Expr) -> Type:
        ctype = self._compute_type(expr)
        expr.ctype = ctype
        return ctype

    def _compute_type(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.StringLiteral):
            return PointerType(CHAR)
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.name)
            if symbol is None:
                raise self.error(f"undeclared identifier {expr.name!r}", expr)
            if isinstance(symbol, (FunctionSymbol, Builtin)):
                raise self.error(f"function {expr.name!r} used as a value", expr)
            expr.symbol = symbol
            return symbol.ctype
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr)
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.Index):
            base_type = self._check_expr(expr.base).decayed()
            if not isinstance(base_type, PointerType):
                raise self.error("indexing a non-array", expr)
            index_type = self._check_expr(expr.index)
            if not index_type.decayed().is_arithmetic:
                raise self.error("array index must be arithmetic", expr)
            return base_type.pointee
        if isinstance(expr, ast.Deref):
            operand = self._check_expr(expr.operand).decayed()
            if not isinstance(operand, PointerType):
                raise self.error("dereferencing a non-pointer", expr)
            return operand.pointee
        if isinstance(expr, ast.IncDec):
            target_type = self._check_expr(expr.target)
            if not self._is_lvalue(expr.target):
                raise self.error(f"{expr.op} needs an lvalue", expr)
            decayed = target_type.decayed()
            if not (decayed.is_arithmetic or decayed.is_pointer) or target_type.is_array:
                raise self.error(f"{expr.op} needs arithmetic or pointer operand", expr)
            return target_type
        if isinstance(expr, ast.Conditional):
            self._require_scalar(self._check_expr(expr.cond), expr.cond)
            then_type = self._check_expr(expr.then_value).decayed()
            else_type = self._check_expr(expr.else_value).decayed()
            if then_type.is_arithmetic and else_type.is_arithmetic:
                return INT
            if then_type.is_pointer and else_type.is_pointer and then_type == else_type:
                return then_type
            # Pointer vs integer (null-style) mixes resolve to the pointer.
            if then_type.is_pointer and else_type.is_arithmetic:
                return then_type
            if else_type.is_pointer and then_type.is_arithmetic:
                return else_type
            raise self.error("incompatible ?: arms", expr)
        if isinstance(expr, ast.AddrOf):
            operand_type = self._check_expr(expr.operand)
            if not self._is_lvalue(expr.operand):
                raise self.error("& needs an lvalue", expr)
            self._mark_address_taken(expr.operand)
            return PointerType(operand_type.decayed() if operand_type.is_array else operand_type)
        raise self.error(f"unknown expression {type(expr).__name__}", expr)

    def _check_unary(self, expr: ast.Unary) -> Type:
        operand_type = self._check_expr(expr.operand)
        if expr.op in ("-", "~"):
            if not operand_type.is_arithmetic:
                raise self.error(f"unary {expr.op} needs arithmetic operand", expr)
            return INT
        if expr.op == "!":
            self._require_scalar(operand_type, expr)
            return INT
        raise self.error(f"unknown unary operator {expr.op!r}", expr)

    def _check_binary(self, expr: ast.Binary) -> Type:
        left = self._check_expr(expr.left).decayed()
        right = self._check_expr(expr.right).decayed()
        op = expr.op
        if op in ("&&", "||"):
            self._require_scalar(left, expr.left)
            self._require_scalar(right, expr.right)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.is_pointer or right.is_pointer:
                ok = (left.is_pointer and right.is_pointer) or (
                    left.is_arithmetic or right.is_arithmetic
                )
                if not ok:
                    raise self.error("invalid pointer comparison", expr)
            return INT
        if op == "+":
            if left.is_pointer and right.is_arithmetic:
                return left
            if left.is_arithmetic and right.is_pointer:
                return right
            if left.is_arithmetic and right.is_arithmetic:
                return INT
            raise self.error("invalid operands to +", expr)
        if op == "-":
            if left.is_pointer and right.is_arithmetic:
                return left
            if left.is_pointer and right.is_pointer:
                if left != right:
                    raise self.error("pointer subtraction of different types", expr)
                return INT
            if left.is_arithmetic and right.is_arithmetic:
                return INT
            raise self.error("invalid operands to -", expr)
        if op in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            if not (left.is_arithmetic and right.is_arithmetic):
                raise self.error(f"operator {op!r} needs arithmetic operands", expr)
            return INT
        raise self.error(f"unknown binary operator {op!r}", expr)

    def _check_assign(self, expr: ast.Assign) -> Type:
        target_type = self._check_expr(expr.target)
        if not self._is_lvalue(expr.target):
            raise self.error("assignment target is not an lvalue", expr)
        if target_type.is_array:
            raise self.error("cannot assign to an array", expr)
        value_type = self._check_expr(expr.value)
        if expr.op == "=":
            if not compatible_assignment(target_type, value_type):
                raise self.error(f"cannot assign {value_type} to {target_type}", expr)
        else:
            base_op = expr.op[:-1]
            if base_op in ("+", "-") and target_type.is_pointer:
                if not value_type.decayed().is_arithmetic:
                    raise self.error("pointer compound assignment needs integer", expr)
            elif not (target_type.is_arithmetic and value_type.decayed().is_arithmetic):
                raise self.error(f"operator {expr.op!r} needs arithmetic operands", expr)
        return target_type

    def _check_call(self, expr: ast.Call) -> Type:
        callee = self._lookup(expr.name)
        if callee is None:
            raise self.error(f"call to undeclared function {expr.name!r}", expr)
        if isinstance(callee, Builtin):
            param_types: Tuple[Type, ...] = callee.params
            ret = callee.ret
        elif isinstance(callee, FunctionSymbol):
            param_types = callee.ftype.params
            ret = callee.ftype.ret
            if self._current is not None:
                self._current.makes_calls = True
        else:
            raise self.error(f"{expr.name!r} is not a function", expr)
        expr.callee = callee
        if len(expr.args) != len(param_types):
            raise self.error(
                f"{expr.name!r} expects {len(param_types)} arguments, got {len(expr.args)}",
                expr,
            )
        for arg, param_type in zip(expr.args, param_types):
            arg_type = self._check_expr(arg)
            if not compatible_assignment(param_type, arg_type):
                raise self.error(f"cannot pass {arg_type} as {param_type}", arg)
        return ret

    # -- lvalues ------------------------------------------------------------

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            return isinstance(expr.symbol, (LocalSymbol, GlobalSymbol))
        return isinstance(expr, (ast.Index, ast.Deref))

    def _mark_address_taken(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Ident) and isinstance(expr.symbol, LocalSymbol):
            expr.symbol.address_taken = True


def analyze(unit: ast.TranslationUnit) -> SemanticAnalyzer:
    """Run semantic analysis; returns the analyzer with its symbol tables."""
    analyzer = SemanticAnalyzer(unit)
    analyzer.analyze()
    return analyzer
