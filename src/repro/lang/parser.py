"""Recursive-descent parser for MiniC.

Grammar summary (C subset):

* top level: global variable declarations (with constant initializers)
  and function definitions;
* types: ``int``, ``char``, pointers thereof, one-dimensional arrays;
* statements: blocks, ``if``/``else``, ``while``, ``do``/``while``,
  ``for``, ``return``, ``break``, ``continue``, declarations,
  expression statements;
* expressions: full C operator precedence (including ``?:`` and
  ``++``/``--``) minus the comma operator and ``sizeof``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import astnodes as ast
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import ArrayType, CHAR, INT, PointerType, Type, VOID

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

#: Binary operator precedence tiers, loosest first.
_BINARY_TIERS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class Parser:
    """Parses one translation unit."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token if token is not None else self.peek()
        return ParseError(message, token.line, token.column)

    def accept_op(self, text: str) -> bool:
        if self.peek().is_op(text):
            self.pos += 1
            return True
        return False

    def expect_op(self, text: str) -> Token:
        token = self.peek()
        if not token.is_op(text):
            raise self.error(f"expected {text!r}, got {token.text!r}")
        return self.next()

    def accept_keyword(self, text: str) -> bool:
        if self.peek().is_keyword(text):
            self.pos += 1
            return True
        return False

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != TokenKind.IDENT:
            raise self.error(f"expected identifier, got {token.text!r}")
        return self.next()

    # -- types ------------------------------------------------------------

    def at_type(self) -> bool:
        return self.peek().kind == TokenKind.KEYWORD and self.peek().text in ("int", "char", "void")

    def parse_base_type(self) -> Type:
        token = self.next()
        if token.text == "int":
            base: Type = INT
        elif token.text == "char":
            base = CHAR
        elif token.text == "void":
            base = VOID
        else:
            raise self.error("expected type", token)
        while self.accept_op("*"):
            base = PointerType(base)
        return base

    # -- constant expressions (global initializers, array lengths) --------

    def parse_const_expr(self) -> int:
        return self._const_additive()

    def _const_additive(self) -> int:
        value = self._const_term()
        while True:
            if self.accept_op("+"):
                value += self._const_term()
            elif self.accept_op("-"):
                value -= self._const_term()
            else:
                return value

    def _const_term(self) -> int:
        value = self._const_factor()
        while True:
            if self.accept_op("*"):
                value *= self._const_factor()
            elif self.accept_op("/"):
                value //= self._const_factor()
            else:
                return value

    def _const_factor(self) -> int:
        if self.accept_op("-"):
            return -self._const_factor()
        if self.accept_op("("):
            value = self._const_additive()
            self.expect_op(")")
            return value
        token = self.next()
        if token.kind in (TokenKind.NUMBER, TokenKind.CHAR):
            return int(token.value)  # type: ignore[arg-type]
        raise self.error("expected constant expression", token)

    # -- top level ----------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != TokenKind.EOF:
            if not self.at_type():
                raise self.error("expected declaration")
            line = self.peek().line
            base = self.parse_base_type()
            name = self.expect_ident().text
            if self.peek().is_op("("):
                unit.functions.append(self._parse_function(line, base, name))
            else:
                unit.globals.append(self._parse_global(line, base, name))
        return unit

    def _parse_global(self, line: int, base: Type, name: str) -> ast.GlobalDecl:
        declared: Type = base
        if self.accept_op("["):
            length = self.parse_const_expr()
            self.expect_op("]")
            declared = ArrayType(base, length)
        init: Optional[ast.Initializer] = None
        if self.accept_op("="):
            token = self.peek()
            if token.kind == TokenKind.STRING:
                self.next()
                init = str(token.value)
            elif token.is_op("{"):
                self.next()
                values: List[int] = []
                if not self.peek().is_op("}"):
                    values.append(self.parse_const_expr())
                    while self.accept_op(","):
                        values.append(self.parse_const_expr())
                self.expect_op("}")
                init = values
            else:
                init = self.parse_const_expr()
        self.expect_op(";")
        return ast.GlobalDecl(line, name, declared, init)

    def _parse_function(self, line: int, ret: Type, name: str) -> ast.FunctionDef:
        self.expect_op("(")
        params: List[ast.Param] = []
        if not self.peek().is_op(")"):
            if self.peek().is_keyword("void") and self.peek(1).is_op(")"):
                self.next()
            else:
                params.append(self._parse_param())
                while self.accept_op(","):
                    params.append(self._parse_param())
        self.expect_op(")")
        body = self.parse_block()
        return ast.FunctionDef(line, name, ret, params, body)

    def _parse_param(self) -> ast.Param:
        line = self.peek().line
        ptype = self.parse_base_type()
        name = self.expect_ident().text
        # Array parameters decay to pointers, as in C.
        if self.accept_op("["):
            self.expect_op("]")
            ptype = PointerType(ptype)
        return ast.Param(line, name, ptype)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.peek().is_op("}"):
            if self.peek().kind == TokenKind.EOF:
                raise self.error("unterminated block", start)
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(start.line, statements)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.is_op("{"):
            return self.parse_block()
        if token.is_op(";"):
            self.next()
            return ast.Block(token.line, [])
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self.next()
            value = None if self.peek().is_op(";") else self.parse_expression()
            self.expect_op(";")
            return ast.Return(token.line, value)
        if token.is_keyword("break"):
            self.next()
            self.expect_op(";")
            return ast.Break(token.line)
        if token.is_keyword("continue"):
            self.next()
            self.expect_op(";")
            return ast.Continue(token.line)
        if self.at_type():
            return self._parse_var_decl()
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(token.line, expr)

    def _parse_if(self) -> ast.If:
        token = self.next()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then_body = self.parse_statement()
        else_body = self.parse_statement() if self.accept_keyword("else") else None
        return ast.If(token.line, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        token = self.next()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        return ast.While(token.line, cond, self.parse_statement())

    def _parse_do_while(self) -> ast.DoWhile:
        token = self.next()
        body = self.parse_statement()
        if not self.accept_keyword("while"):
            raise self.error("expected 'while' after do-body")
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(token.line, body, cond)

    def _parse_switch(self) -> ast.Switch:
        token = self.next()
        self.expect_op("(")
        selector = self.parse_expression()
        self.expect_op(")")
        self.expect_op("{")
        cases: List[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        while not self.peek().is_op("}"):
            if self.peek().kind == TokenKind.EOF:
                raise self.error("unterminated switch", token)
            if self.peek().is_keyword("case"):
                line = self.next().line
                value = self.parse_const_expr()
                self.expect_op(":")
                if current is not None and not current.body:
                    # `case 1: case 2:` — stacked labels share one arm.
                    current.values.append(value)
                else:
                    current = ast.SwitchCase(line, [value])
                    cases.append(current)
            elif self.peek().is_keyword("default"):
                line = self.next().line
                self.expect_op(":")
                if current is not None and not current.body:
                    current.is_default = True
                else:
                    current = ast.SwitchCase(line, [], is_default=True)
                    cases.append(current)
            else:
                if current is None:
                    raise self.error("statement before first case label")
                current.body.append(self.parse_statement())
        self.expect_op("}")
        return ast.Switch(token.line, selector, cases)

    def _parse_for(self) -> ast.For:
        token = self.next()
        self.expect_op("(")
        init = None if self.peek().is_op(";") else self.parse_expression()
        self.expect_op(";")
        cond = None if self.peek().is_op(";") else self.parse_expression()
        self.expect_op(";")
        step = None if self.peek().is_op(")") else self.parse_expression()
        self.expect_op(")")
        return ast.For(token.line, init, cond, step, self.parse_statement())

    def _parse_var_decl(self) -> ast.VarDecl:
        line = self.peek().line
        base = self.parse_base_type()
        name = self.expect_ident().text
        declared: Type = base
        if self.accept_op("["):
            length = self.parse_const_expr()
            self.expect_op("]")
            declared = ArrayType(base, length)
        init = self.parse_expression() if self.accept_op("=") else None
        self.expect_op(";")
        return ast.VarDecl(line, name, declared, init)

    # -- expressions -----------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(0)
        token = self.peek()
        if token.is_op("?"):
            self.next()
            then_value = self.parse_expression()
            self.expect_op(":")
            else_value = self._parse_assignment()
            return ast.Conditional(token.line, left, then_value, else_value)
        if token.kind == TokenKind.OP and token.text in _ASSIGN_OPS:
            self.next()
            value = self._parse_assignment()
            return ast.Assign(token.line, token.text, left, value)
        return left

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        ops = _BINARY_TIERS[tier]
        left = self._parse_binary(tier + 1)
        while True:
            token = self.peek()
            if token.kind == TokenKind.OP and token.text in ops:
                self.next()
                right = self._parse_binary(tier + 1)
                left = ast.Binary(token.line, token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.is_op("++") or token.is_op("--"):
            self.next()
            return ast.IncDec(token.line, token.text, self._parse_unary(), True)
        if token.is_op("-"):
            self.next()
            return ast.Unary(token.line, "-", self._parse_unary())
        if token.is_op("!"):
            self.next()
            return ast.Unary(token.line, "!", self._parse_unary())
        if token.is_op("~"):
            self.next()
            return ast.Unary(token.line, "~", self._parse_unary())
        if token.is_op("*"):
            self.next()
            return ast.Deref(token.line, self._parse_unary())
        if token.is_op("&"):
            self.next()
            return ast.AddrOf(token.line, self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.is_op("["):
                self.next()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(token.line, expr, index)
            elif token.is_op("++") or token.is_op("--"):
                self.next()
                expr = ast.IncDec(token.line, token.text, expr, False)
            elif token.is_op("(") and isinstance(expr, ast.Ident):
                self.next()
                args: List[ast.Expr] = []
                if not self.peek().is_op(")"):
                    args.append(self.parse_expression())
                    while self.accept_op(","):
                        args.append(self.parse_expression())
                self.expect_op(")")
                expr = ast.Call(token.line, expr.name, args)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind in (TokenKind.NUMBER, TokenKind.CHAR):
            return ast.IntLiteral(token.line, int(token.value))  # type: ignore[arg-type]
        if token.kind == TokenKind.STRING:
            return ast.StringLiteral(token.line, str(token.value))
        if token.kind == TokenKind.IDENT:
            return ast.Ident(token.line, token.text)
        if token.is_op("("):
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        raise self.error(f"unexpected token {token.text!r}", token)


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source into an AST (convenience wrapper)."""
    return Parser(source).parse()
