"""MiniC code generator: annotated AST -> assembly text.

Conventions produced (o32-flavoured, mirroring what the paper's analyses
key off):

* arguments in ``$a0..$a3``, result in ``$v0``;
* non-leaf functions copy parameters into callee-saved ``$s`` registers,
  saved/restored by a classic prologue/epilogue; leaf functions keep
  parameters in ``$a`` registers;
* locals: scalar locals are homed in ``$s`` registers unless their
  address is taken; arrays and address-taken scalars live in the stack
  frame;
* expression evaluation uses a value stack mapped to ``$t0..$t7`` with
  overflow (and across-call liveness) spilled to reserved frame slots;
  ``$t8``/``$t9`` are scratch, ``$at`` belongs to the assembler;
* global scalars are accessed gp-relative (``lw $r, name($gp)``) while
  the first 64 KiB of data is in the ``$gp`` window; global arrays are
  addressed via ``la`` (which the assembler turns into ``addiu $r,$gp``
  or ``lui``/``ori`` — the paper's "global address calculation" class);
* builtins compile to inline syscall sequences.

The generator emits one ``.ent name, argc`` / ``.end name`` pair per
function so the assembler records function metadata for the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.isa.convention import DATA_BASE, GP_VALUE
from repro.isa.bits import fits_s16, to_s32 as _to_s32
from repro.lang import astnodes as ast
from repro.lang.errors import CodegenError
from repro.lang.sema import (
    Builtin,
    FunctionSymbol,
    GlobalSymbol,
    LocalSymbol,
    SemanticAnalyzer,
)
from repro.lang.types import ArrayType, CHAR, PointerType, Type, VOID

#: Value-stack geometry: positions 0..7 live in $t0..$t7, positions up to
#: SPILL_SLOTS-1 live in reserved frame slots at sp+4*pos.
REG_POSITIONS = 8
SPILL_SLOTS = 32

_T_REGS = ("$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7")
_S_REGS = ("$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7")
_A_REGS = ("$a0", "$a1", "$a2", "$a3")

#: Half-open byte window of the data segment reachable from $gp with a
#: signed 16-bit offset.
_GP_WINDOW = GP_VALUE + 0x7FF0 - DATA_BASE


@dataclass
class _Entry:
    """One value-stack entry."""

    pos: int
    in_reg: bool


@dataclass
class _FrameVar:
    """A stack-homed local."""

    offset: int
    ctype: Type


class _LoopLabels:
    """Branch targets for break/continue; switch frames have no
    continue target (None) and are skipped by `continue`."""

    def __init__(self, break_label: str, continue_label: Optional[str]) -> None:
        self.break_label = break_label
        self.continue_label = continue_label


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class CodeGenerator:
    """Generates an assembly translation unit from an analyzed AST."""

    def __init__(self, sema: SemanticAnalyzer) -> None:
        self.sema = sema
        self.unit = sema.unit
        self._label_counter = 0
        self._string_labels: Dict[str, str] = {}
        #: Exact byte offset of each global in the .data segment, mirroring
        #: the assembler's sequential layout, so gp-reachability is decided
        #: correctly at codegen time.
        self._global_offsets: Dict[str, int] = {}
        self._data_lines: List[str] = []
        self._text_lines: List[str] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def generate(self) -> str:
        self._emit_data_segment()
        self._text_lines.append(".text")
        self._text_lines.append(".globl main")
        for func in self.unit.functions:
            _FunctionEmitter(self, func).emit()
        body = "\n".join(self._data_lines + self._text_lines)
        return body + "\n"

    # ------------------------------------------------------------------
    # Labels and strings
    # ------------------------------------------------------------------

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"L_{stem}_{self._label_counter}"

    def string_label(self, text: str) -> str:
        label = self._string_labels.get(text)
        if label is None:
            label = f"S_str_{len(self._string_labels)}"
            self._string_labels[text] = label
        return label

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------

    def _emit_data_segment(self) -> None:
        lines = self._data_lines
        lines.append(".data")
        offset = 0

        def note(name: str, size: int, alignment: int) -> int:
            nonlocal offset
            offset = _align(offset, alignment)
            self._global_offsets[name] = offset
            start = offset
            offset += size
            return start

        # Scalars first so they land in the $gp window (the -G small-data
        # convention), then arrays/strings in declaration order.
        scalars = [g for g in self.sema.globals.values() if g.ctype.is_scalar]
        aggregates = [g for g in self.sema.globals.values() if not g.ctype.is_scalar]

        for symbol in scalars:
            note(symbol.name, 4, 4)
            init = symbol.init
            if init is None:
                lines.append(f"{symbol.label}: .space 4")
            elif isinstance(init, str):
                label = self.string_label(init)
                lines.append(f"{symbol.label}: .word {label}")
            else:
                lines.append(f"{symbol.label}: .word {int(init)}")

        for symbol in aggregates:
            assert isinstance(symbol.ctype, ArrayType)
            element = symbol.ctype.element
            length = symbol.ctype.length
            alignment = 4 if element.size == 4 else 1
            note(symbol.name, symbol.ctype.size, alignment)
            init = symbol.init
            if init is None:
                lines.append(f"{symbol.label}: .space {symbol.ctype.size}")
            elif isinstance(init, str):
                payload = init + "\0" * max(0, length - len(init))
                escaped = (
                    payload.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
                )
                lines.append(f'{symbol.label}: .ascii "{escaped}"')
            else:
                values = list(init) + [0] * (length - len(init))
                directive = ".word" if element.size == 4 else ".byte"
                chunk = 16
                lines.append(f"{symbol.label}:")
                for start in range(0, len(values), chunk):
                    group = ", ".join(str(v) for v in values[start : start + chunk])
                    lines.append(f"  {directive} {group}")

        # String literals referenced from code.  Labels are assigned on
        # demand during codegen, so collect them up front.
        self._collect_strings()
        for text, label in self._string_labels.items():
            escaped = (
                text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t")
            )
            offset = _align(offset, 1)
            self._global_offsets[label] = offset
            offset += len(text) + 1
            lines.append(f'{label}: .asciiz "{escaped}"')

    def _collect_strings(self) -> None:
        def walk_expr(expr: Optional[ast.Expr]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.StringLiteral):
                self.string_label(expr.value)
            elif isinstance(expr, ast.Unary):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, ast.Assign):
                walk_expr(expr.target)
                walk_expr(expr.value)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    walk_expr(arg)
            elif isinstance(expr, ast.Index):
                walk_expr(expr.base)
                walk_expr(expr.index)
            elif isinstance(expr, (ast.Deref, ast.AddrOf)):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.IncDec):
                walk_expr(expr.target)
            elif isinstance(expr, ast.Conditional):
                walk_expr(expr.cond)
                walk_expr(expr.then_value)
                walk_expr(expr.else_value)

        def walk_stmt(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                for inner in stmt.statements:
                    walk_stmt(inner)
            elif isinstance(stmt, ast.ExprStmt):
                walk_expr(stmt.expr)
            elif isinstance(stmt, ast.If):
                walk_expr(stmt.cond)
                walk_stmt(stmt.then_body)
                if stmt.else_body is not None:
                    walk_stmt(stmt.else_body)
            elif isinstance(stmt, ast.While):
                walk_expr(stmt.cond)
                walk_stmt(stmt.body)
            elif isinstance(stmt, ast.DoWhile):
                walk_stmt(stmt.body)
                walk_expr(stmt.cond)
            elif isinstance(stmt, ast.Switch):
                walk_expr(stmt.selector)
                for case in stmt.cases:
                    for inner in case.body:
                        walk_stmt(inner)
            elif isinstance(stmt, ast.For):
                walk_expr(stmt.init)
                walk_expr(stmt.cond)
                walk_expr(stmt.step)
                walk_stmt(stmt.body)
            elif isinstance(stmt, ast.Return):
                walk_expr(stmt.value)
            elif isinstance(stmt, ast.VarDecl):
                walk_expr(stmt.init)

        for func in self.unit.functions:
            walk_stmt(func.body)

    # ------------------------------------------------------------------
    # Global addressing
    # ------------------------------------------------------------------

    def gp_reachable(self, name: str) -> bool:
        offset = self._global_offsets.get(name)
        return offset is not None and offset < _GP_WINDOW and fits_s16(
            DATA_BASE + offset - GP_VALUE
        )


class _FunctionEmitter:
    """Emits the body of a single function."""

    def __init__(self, cg: CodeGenerator, func: ast.FunctionDef) -> None:
        self.cg = cg
        self.func = func
        self.info = cg.sema.function_info[func.name]
        #: Body instructions buffer; prologue/epilogue are emitted around
        #: it once the body reveals whether a frame is needed at all.
        self.lines: List[str] = []
        self.stack: List[_Entry] = []
        self.loop_stack: List[_LoopLabels] = []
        self.epilogue_label = cg.new_label(f"ret_{func.name}")
        self.frame_vars: Dict[int, _FrameVar] = {}
        self._spill_used = False
        self._plan_frame()

    # -- emission helpers -------------------------------------------------

    def emit(self) -> None:
        self._gen_block(self.func.body)
        body = self.lines
        # A leaf with no saved registers, no stack locals, and no value
        # spills needs no frame at all (gcc -O does the same).
        if (
            self.leaf
            and not self.used_sregs
            and not self.frame_vars
            and not self._spill_used
        ):
            self.frame_size = 0
        self.lines = self.cg._text_lines
        self._emit_prologue()
        self.lines.extend(body)
        self._emit_epilogue()

    def line(self, text: str) -> None:
        self.lines.append("  " + text)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    # -- frame planning -----------------------------------------------------

    def _plan_frame(self) -> None:
        """Assign every local a home and compute the frame size."""
        leaf = not self.info.makes_calls
        sreg_next = 0
        stack_offset = SPILL_SLOTS * 4
        self.used_sregs: List[int] = []

        for symbol in self.info.locals:
            if symbol.ctype.is_scalar and not symbol.address_taken:
                if leaf and symbol.is_param:
                    # Leaf functions read parameters straight from $a regs.
                    symbol.sreg = None
                    symbol.frame_offset = None
                    continue
                if sreg_next < len(_S_REGS):
                    symbol.sreg = sreg_next
                    self.used_sregs.append(sreg_next)
                    sreg_next += 1
                    continue
            # Stack home.
            size = symbol.ctype.size if symbol.ctype.is_array else 4
            alignment = 4 if (not symbol.ctype.is_array or symbol.ctype.element.size == 4) else 1  # type: ignore[union-attr]
            stack_offset = _align(stack_offset, alignment)
            symbol.frame_offset = stack_offset
            self.frame_vars[stack_offset] = _FrameVar(stack_offset, symbol.ctype)
            stack_offset += size

        stack_offset = _align(stack_offset, 4)
        self.saved_base = stack_offset
        saved_bytes = 4 * len(self.used_sregs) + (0 if leaf else 4)
        self.frame_size = _align(stack_offset + saved_bytes, 8)
        self.leaf = leaf

    def _sreg_save_offset(self, ordinal: int) -> int:
        return self.saved_base + 4 * ordinal

    @property
    def _ra_offset(self) -> int:
        return self.frame_size - 4

    # -- prologue/epilogue ----------------------------------------------------

    def _emit_prologue(self) -> None:
        func = self.func
        self.lines.append(f".ent {func.name}, {len(func.params)}")
        self.label(func.name)
        if self.frame_size:
            self.line(f"addiu $sp, $sp, -{self.frame_size}")
        if not self.leaf:
            self.line(f"sw $ra, {self._ra_offset}($sp)")
        for ordinal, sreg in enumerate(self.used_sregs):
            self.line(f"sw {_S_REGS[sreg]}, {self._sreg_save_offset(ordinal)}($sp)")
        # Copy parameters to their homes.
        for symbol in self.info.params:
            areg = _A_REGS[symbol.param_index]  # type: ignore[index]
            if symbol.sreg is not None:
                self.line(f"move {_S_REGS[symbol.sreg]}, {areg}")
            elif symbol.frame_offset is not None:
                self.line(f"sw {areg}, {symbol.frame_offset}($sp)")

    def _emit_epilogue(self) -> None:
        self.label(self.epilogue_label)
        for ordinal, sreg in enumerate(self.used_sregs):
            self.line(f"lw {_S_REGS[sreg]}, {self._sreg_save_offset(ordinal)}($sp)")
        if not self.leaf:
            self.line(f"lw $ra, {self._ra_offset}($sp)")
        if self.frame_size:
            self.line(f"addiu $sp, $sp, {self.frame_size}")
        self.line("jr $ra")
        self.lines.append(f".end {self.func.name}")

    # -- value stack ------------------------------------------------------------

    def _push_target(self) -> str:
        pos = len(self.stack)
        if pos >= SPILL_SLOTS:
            raise CodegenError("expression too complex", self.func.line)
        return _T_REGS[pos] if pos < REG_POSITIONS else "$t8"

    def _push_commit(self) -> None:
        pos = len(self.stack)
        if pos < REG_POSITIONS:
            self.stack.append(_Entry(pos, in_reg=True))
        else:
            self._spill_used = True
            self.line(f"sw $t8, {4 * pos}($sp)")
            self.stack.append(_Entry(pos, in_reg=False))

    def _push_from(self, reg: str) -> None:
        """Push the value currently held in ``reg``."""
        target = self._push_target()
        if target != reg:
            self.line(f"move {target}, {reg}")
        self._push_commit()

    def _pop(self, scratch: str = "$t8") -> str:
        entry = self.stack.pop()
        if entry.in_reg:
            return _T_REGS[entry.pos]
        self.line(f"lw {scratch}, {4 * entry.pos}($sp)")
        return scratch

    def _spill_all(self) -> None:
        for entry in self.stack:
            if entry.in_reg:
                self._spill_used = True
                self.line(f"sw {_T_REGS[entry.pos]}, {4 * entry.pos}($sp)")
                entry.in_reg = False

    # -- statements ----------------------------------------------------------------

    def _gen_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._gen_statement(stmt)

    def _gen_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_expr_statement(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.Switch):
            self._gen_switch(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.line(f"b {self.loop_stack[-1].break_label}")
        elif isinstance(stmt, ast.Continue):
            # Skip switch frames (their continue target is None).
            target = next(
                frame.continue_label
                for frame in reversed(self.loop_stack)
                if frame.continue_label is not None
            )
            self.line(f"b {target}")
        elif isinstance(stmt, ast.VarDecl):
            self._gen_var_decl(stmt)
        else:  # pragma: no cover
            raise CodegenError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _gen_expr_statement(self, expr: ast.Expr) -> None:
        produced = self._gen_expr(expr)
        if produced:
            self.stack.pop()  # discard the value (no code needed)

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self.cg.new_label("else")
        end_label = self.cg.new_label("endif")
        self._gen_condition(stmt.cond, false_label=else_label)
        self._gen_statement(stmt.then_body)
        if stmt.else_body is not None:
            self.line(f"b {end_label}")
            self.label(else_label)
            self._gen_statement(stmt.else_body)
            self.label(end_label)
        else:
            self.label(else_label)

    def _gen_while(self, stmt: ast.While) -> None:
        head = self.cg.new_label("while")
        end = self.cg.new_label("endwhile")
        self.label(head)
        self._gen_condition(stmt.cond, false_label=end)
        self.loop_stack.append(_LoopLabels(end, head))
        self._gen_statement(stmt.body)
        self.loop_stack.pop()
        self.line(f"b {head}")
        self.label(end)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        head = self.cg.new_label("dowhile")
        cond_label = self.cg.new_label("docond")
        end = self.cg.new_label("enddo")
        self.label(head)
        self.loop_stack.append(_LoopLabels(end, cond_label))
        self._gen_statement(stmt.body)
        self.loop_stack.pop()
        self.label(cond_label)
        self._gen_expr(stmt.cond)
        reg = self._pop()
        self.line(f"bnez {reg}, {head}")
        self.label(end)

    def _gen_switch(self, stmt: ast.Switch) -> None:
        """Compare-and-branch lowering with C fallthrough semantics."""
        end_label = self.cg.new_label("endswitch")
        arm_labels = [self.cg.new_label("case") for _ in stmt.cases]
        self._gen_expr(stmt.selector)
        selector = self._pop("$t8")
        default_label = end_label
        for case, label in zip(stmt.cases, arm_labels):
            for value in case.values:
                self.line(f"li $t9, {value}")
                self.line(f"beq {selector}, $t9, {label}")
            if case.is_default:
                default_label = label
        self.line(f"b {default_label}")
        self.loop_stack.append(_LoopLabels(end_label, None))
        for case, label in zip(stmt.cases, arm_labels):
            self.label(label)
            for inner in case.body:
                self._gen_statement(inner)
            # No branch: C fallthrough into the next arm.
        self.loop_stack.pop()
        self.label(end_label)

    def _gen_for(self, stmt: ast.For) -> None:
        head = self.cg.new_label("for")
        step_label = self.cg.new_label("forstep")
        end = self.cg.new_label("endfor")
        if stmt.init is not None:
            self._gen_expr_statement(stmt.init)
        self.label(head)
        if stmt.cond is not None:
            self._gen_condition(stmt.cond, false_label=end)
        self.loop_stack.append(_LoopLabels(end, step_label))
        self._gen_statement(stmt.body)
        self.loop_stack.pop()
        self.label(step_label)
        if stmt.step is not None:
            self._gen_expr_statement(stmt.step)
        self.line(f"b {head}")
        self.label(end)

    def _gen_condition(self, cond: ast.Expr, false_label: str) -> None:
        """Evaluate ``cond`` and branch to ``false_label`` when it is 0."""
        self._gen_expr(cond)
        reg = self._pop()
        self.line(f"beqz {reg}, {false_label}")

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            self._gen_expr(stmt.value)
            reg = self._pop()
            self.line(f"move $v0, {reg}")
        self.line(f"b {self.epilogue_label}")

    def _gen_var_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.init is None:
            return
        symbol = stmt.symbol
        assert isinstance(symbol, LocalSymbol)
        self._gen_expr(stmt.init)
        reg = self._pop()
        self._store_to_local(symbol, reg)

    def _store_to_local(self, symbol: LocalSymbol, reg: str) -> None:
        if symbol.sreg is not None:
            self.line(f"move {_S_REGS[symbol.sreg]}, {reg}")
        elif symbol.frame_offset is not None:
            op = "sb" if symbol.ctype == CHAR else "sw"
            self.line(f"{op} {reg}, {symbol.frame_offset}($sp)")
        else:
            # Leaf-function parameter homed in its $a register.
            assert symbol.is_param and self.leaf
            self.line(f"move {_A_REGS[symbol.param_index]}, {reg}")  # type: ignore[index]

    # -- expressions ------------------------------------------------------------------

    def _gen_expr(self, expr: ast.Expr) -> bool:
        """Generate code for ``expr``.

        Returns True if a value was pushed onto the value stack (void
        calls push nothing).
        """
        if isinstance(expr, ast.IntLiteral):
            target = self._push_target()
            self.line(f"li {target}, {expr.value}")
            self._push_commit()
            return True
        if isinstance(expr, ast.StringLiteral):
            label = self.cg.string_label(expr.value)
            target = self._push_target()
            self.line(f"la {target}, {label}")
            self._push_commit()
            return True
        if isinstance(expr, ast.Ident):
            self._gen_ident(expr)
            return True
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        if isinstance(expr, ast.Index):
            self._gen_address_of_index(expr)
            self._load_indirect(expr.ctype)
            return True
        if isinstance(expr, ast.Deref):
            self._gen_expr(expr.operand)
            self._load_indirect(expr.ctype)
            return True
        if isinstance(expr, ast.AddrOf):
            self._gen_address(expr.operand)
            return True
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        raise CodegenError(f"unknown expression {type(expr).__name__}", expr.line)

    def _gen_ident(self, expr: ast.Ident) -> None:
        symbol = expr.symbol
        target = self._push_target()
        if isinstance(symbol, LocalSymbol):
            if symbol.ctype.is_array:
                self.line(f"addiu {target}, $sp, {symbol.frame_offset}")
            elif symbol.sreg is not None:
                self.line(f"move {target}, {_S_REGS[symbol.sreg]}")
            elif symbol.frame_offset is not None:
                op = "lb" if symbol.ctype == CHAR else "lw"
                self.line(f"{op} {target}, {symbol.frame_offset}($sp)")
            else:
                self.line(f"move {target}, {_A_REGS[symbol.param_index]}")  # type: ignore[index]
        else:
            assert isinstance(symbol, GlobalSymbol)
            if symbol.ctype.is_array:
                self.line(f"la {target}, {symbol.label}")
            elif self.cg.gp_reachable(symbol.name):
                op = "lb" if symbol.ctype == CHAR else "lw"
                self.line(f"{op} {target}, {symbol.label}($gp)")
            else:
                self.line(f"la $t9, {symbol.label}")
                op = "lb" if symbol.ctype == CHAR else "lw"
                self.line(f"{op} {target}, 0($t9)")
        self._push_commit()

    def _gen_unary(self, expr: ast.Unary) -> bool:
        # Fold constant operands so negative/inverted literals become a
        # single li (which the assembler may still split into lui/ori).
        if isinstance(expr.operand, ast.IntLiteral) and expr.op in ("-", "~"):
            value = expr.operand.value
            folded = -value if expr.op == "-" else ~value
            target = self._push_target()
            self.line(f"li {target}, {_to_s32(folded)}")
            self._push_commit()
            return True
        self._gen_expr(expr.operand)
        source = self._pop()
        target = self._push_target()
        if expr.op == "-":
            self.line(f"subu {target}, $zero, {source}")
        elif expr.op == "~":
            self.line(f"nor {target}, {source}, $zero")
        else:  # !
            self.line(f"sltiu {target}, {source}, 1")
        self._push_commit()
        return True

    _SIMPLE_BINOPS = {
        "+": "addu",
        "-": "subu",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "sllv",
        ">>": "srav",
        "==": "seq",
        "!=": "sne",
        "<": "slt",
        "<=": "sle",
        ">": "sgt",
        ">=": "sge",
        "*": "mul",
        "/": "div",
        "%": "rem",
    }

    def _gen_binary(self, expr: ast.Binary) -> bool:
        if expr.op in ("&&", "||"):
            return self._gen_logical(expr)
        left_type = expr.left.ctype.decayed()  # type: ignore[union-attr]
        right_type = expr.right.ctype.decayed()  # type: ignore[union-attr]
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        right = self._pop("$t9")
        left = self._pop("$t8")

        # Pointer arithmetic scaling.
        if expr.op in ("+", "-") and left_type.is_pointer and right_type.is_arithmetic:
            right = self._scale_index(right, left_type.pointee.size, "$t9")
        elif expr.op == "+" and right_type.is_pointer and left_type.is_arithmetic:
            left = self._scale_index(left, right_type.pointee.size, "$t8")

        target = self._push_target()
        mnemonic = self._SIMPLE_BINOPS[expr.op]
        self.line(f"{mnemonic} {target}, {left}, {right}")

        # Pointer difference scales back down to element counts.
        if expr.op == "-" and left_type.is_pointer and right_type.is_pointer:
            size = left_type.pointee.size
            if size == 4:
                self.line(f"sra {target}, {target}, 2")
        self._push_commit()
        return True

    def _scale_index(self, reg: str, size: int, scratch: str) -> str:
        if size == 1:
            return reg
        if size == 4:
            self.line(f"sll {scratch}, {reg}, 2")
            return scratch
        self.line(f"li $at, {size}")
        self.line(f"mul {scratch}, {reg}, $at")
        return scratch

    def _gen_logical(self, expr: ast.Binary) -> bool:
        false_label = self.cg.new_label("lfalse")
        true_label = self.cg.new_label("ltrue")
        end_label = self.cg.new_label("lend")
        if expr.op == "&&":
            self._gen_expr(expr.left)
            self.line(f"beqz {self._pop()}, {false_label}")
            self._gen_expr(expr.right)
            self.line(f"beqz {self._pop()}, {false_label}")
            target = self._push_target()
            self.line(f"li {target}, 1")
            self.line(f"b {end_label}")
            self.label(false_label)
            self.line(f"li {target}, 0")
            self.label(end_label)
        else:
            self._gen_expr(expr.left)
            self.line(f"bnez {self._pop()}, {true_label}")
            self._gen_expr(expr.right)
            self.line(f"bnez {self._pop()}, {true_label}")
            target = self._push_target()
            self.line(f"li {target}, 0")
            self.line(f"b {end_label}")
            self.label(true_label)
            self.line(f"li {target}, 1")
            self.label(end_label)
        self._push_commit()
        return True

    # -- assignment -------------------------------------------------------

    def _gen_assign(self, expr: ast.Assign) -> bool:
        target = expr.target
        if isinstance(target, ast.Ident) and isinstance(target.symbol, LocalSymbol):
            return self._gen_assign_local(expr, target.symbol)
        if isinstance(target, ast.Ident) and isinstance(target.symbol, GlobalSymbol):
            return self._gen_assign_global(expr, target.symbol)
        # Indirect target: *p or a[i].
        if isinstance(target, ast.Deref):
            self._gen_expr(target.operand)
        elif isinstance(target, ast.Index):
            self._gen_address_of_index(target)
        else:  # pragma: no cover - sema guarantees lvalue shapes
            raise CodegenError("bad assignment target", expr.line)
        elem_type = target.ctype
        if expr.op == "=":
            self._gen_expr(expr.value)
        else:
            # Compound: duplicate the address, then load the current value
            # through the copy, leaving [addr, current] on the stack.
            addr = self._pop("$t8")
            self._push_from(addr)
            self._push_from(addr)
            self._load_indirect(elem_type)
            self._gen_expr(expr.value)
            self._apply_compound(expr, elem_type)
        value = self._pop("$t9")
        addr = self._pop("$t8")
        store = "sb" if elem_type == CHAR else "sw"
        self.line(f"{store} {value}, 0({addr})")
        self._push_from(value)
        return True

    def _gen_assign_local(self, expr: ast.Assign, symbol: LocalSymbol) -> bool:
        if expr.op == "=":
            self._gen_expr(expr.value)
        else:
            self._gen_ident_value(symbol)
            self._gen_expr(expr.value)
            self._apply_compound(expr, symbol.ctype)
        value = self._pop("$t9")
        self._store_to_local(symbol, value)
        self._push_from(value)
        return True

    def _gen_assign_global(self, expr: ast.Assign, symbol: GlobalSymbol) -> bool:
        if expr.op == "=":
            self._gen_expr(expr.value)
        else:
            self._gen_global_value(symbol)
            self._gen_expr(expr.value)
            self._apply_compound(expr, symbol.ctype)
        value = self._pop("$t9")
        store = "sb" if symbol.ctype == CHAR else "sw"
        if self.cg.gp_reachable(symbol.name):
            self.line(f"{store} {value}, {symbol.label}($gp)")
        else:
            self.line(f"la $t8, {symbol.label}")
            self.line(f"{store} {value}, 0($t8)")
        self._push_from(value)
        return True

    def _gen_ident_value(self, symbol: LocalSymbol) -> None:
        """Push the current value of a local (for compound assignment)."""
        target = self._push_target()
        if symbol.sreg is not None:
            self.line(f"move {target}, {_S_REGS[symbol.sreg]}")
        elif symbol.frame_offset is not None:
            op = "lb" if symbol.ctype == CHAR else "lw"
            self.line(f"{op} {target}, {symbol.frame_offset}($sp)")
        else:
            self.line(f"move {target}, {_A_REGS[symbol.param_index]}")  # type: ignore[index]
        self._push_commit()

    def _gen_global_value(self, symbol: GlobalSymbol) -> None:
        target = self._push_target()
        op = "lb" if symbol.ctype == CHAR else "lw"
        if self.cg.gp_reachable(symbol.name):
            self.line(f"{op} {target}, {symbol.label}($gp)")
        else:
            self.line(f"la $t9, {symbol.label}")
            self.line(f"{op} {target}, 0($t9)")
        self._push_commit()

    def _apply_compound(self, expr: ast.Assign, target_type: Type) -> None:
        """Combine the two top-of-stack values with the compound operator."""
        base_op = expr.op[:-1]
        right = self._pop("$t9")
        left = self._pop("$t8")
        if base_op in ("+", "-") and target_type.is_pointer:
            right = self._scale_index(right, target_type.pointee.size, "$t9")  # type: ignore[union-attr]
        target = self._push_target()
        self.line(f"{self._SIMPLE_BINOPS[base_op]} {target}, {left}, {right}")
        self._push_commit()

    def _incdec_delta(self, expr: ast.IncDec) -> int:
        target_type = expr.target.ctype  # type: ignore[union-attr]
        step = 1
        if target_type is not None and target_type.is_pointer:
            step = target_type.pointee.size  # type: ignore[union-attr]
        return step if expr.op == "++" else -step

    def _gen_incdec(self, expr: ast.IncDec) -> bool:
        """++/--: load, adjust, store; push old (postfix) or new (prefix)."""
        target = expr.target
        delta = self._incdec_delta(expr)
        if isinstance(target, ast.Ident) and isinstance(target.symbol, LocalSymbol):
            self._gen_ident_value(target.symbol)
            old_reg = self._pop("$t8")
            self.line(f"addiu $t9, {old_reg}, {delta}")
            self._store_to_local(target.symbol, "$t9")
            self._push_from("$t9" if expr.is_prefix else old_reg)
            return True
        if isinstance(target, ast.Ident) and isinstance(target.symbol, GlobalSymbol):
            symbol = target.symbol
            self._gen_global_value(symbol)
            old_reg = self._pop("$t8")
            self.line(f"addiu $t9, {old_reg}, {delta}")
            store = "sb" if symbol.ctype == CHAR else "sw"
            if self.cg.gp_reachable(symbol.name):
                self.line(f"{store} $t9, {symbol.label}($gp)")
            else:
                # Avoid clobbering old/new: recompute the address in $at
                # via la, which only uses $at-safe sequences.
                self.line(f"la $at, {symbol.label}")
                self.line(f"{store} $t9, 0($at)")
            self._push_from("$t9" if expr.is_prefix else old_reg)
            return True
        # Indirect target: *p or a[i].
        if isinstance(target, ast.Deref):
            self._gen_expr(target.operand)
        elif isinstance(target, ast.Index):
            self._gen_address_of_index(target)
        else:  # pragma: no cover - sema guarantees lvalue shapes
            raise CodegenError("bad ++/-- target", expr.line)
        elem_type = target.ctype
        addr = self._pop("$t8")
        self._push_from(addr)          # keep the address live on the stack
        self._push_from(addr)
        self._load_indirect(elem_type)  # [addr, old]
        old_reg = self._pop("$t9")
        addr_reg = self._pop("$t8")
        self.line(f"addiu $t9, {old_reg}, {delta}")
        store = "sb" if elem_type == CHAR else "sw"
        self.line(f"{store} $t9, 0({addr_reg})")
        if expr.is_prefix:
            self._push_from("$t9")
        else:
            self.line(f"addiu $t9, $t9, {-delta}")  # recover the old value
            self._push_from("$t9")
        return True

    def _gen_conditional(self, expr: ast.Conditional) -> bool:
        else_label = self.cg.new_label("celse")
        end_label = self.cg.new_label("cend")
        self._gen_expr(expr.cond)
        self.line(f"beqz {self._pop()}, {else_label}")
        target = self._push_target()
        self._gen_expr(expr.then_value)
        value = self._pop("$t9")
        if value != target:
            self.line(f"move {target}, {value}")
        self.line(f"b {end_label}")
        self.label(else_label)
        self._gen_expr(expr.else_value)
        value = self._pop("$t9")
        if value != target:
            self.line(f"move {target}, {value}")
        self.label(end_label)
        self._push_commit()
        return True

    # -- addresses and loads -----------------------------------------------

    def _gen_address(self, expr: ast.Expr) -> None:
        """Push the address of an lvalue expression."""
        if isinstance(expr, ast.Ident):
            symbol = expr.symbol
            target = self._push_target()
            if isinstance(symbol, LocalSymbol):
                assert symbol.frame_offset is not None, "address of register local"
                self.line(f"addiu {target}, $sp, {symbol.frame_offset}")
            else:
                assert isinstance(symbol, GlobalSymbol)
                self.line(f"la {target}, {symbol.label}")
            self._push_commit()
            return
        if isinstance(expr, ast.Index):
            self._gen_address_of_index(expr)
            return
        if isinstance(expr, ast.Deref):
            self._gen_expr(expr.operand)
            return
        raise CodegenError("cannot take address of expression", expr.line)

    def _gen_address_of_index(self, expr: ast.Index) -> None:
        self._gen_expr(expr.base)
        self._gen_expr(expr.index)
        index = self._pop("$t9")
        base = self._pop("$t8")
        size = expr.ctype.size if expr.ctype is not None else 4
        index = self._scale_index(index, size, "$t9")
        target = self._push_target()
        self.line(f"addu {target}, {base}, {index}")
        self._push_commit()

    def _load_indirect(self, ctype: Optional[Type]) -> None:
        """Replace the address on top of the stack with the loaded value."""
        addr = self._pop("$t8")
        target = self._push_target()
        op = "lb" if ctype == CHAR else "lw"
        self.line(f"{op} {target}, 0({addr})")
        self._push_commit()

    # -- calls ------------------------------------------------------------

    def _gen_call(self, expr: ast.Call) -> bool:
        callee = expr.callee
        if isinstance(callee, Builtin):
            return self._gen_builtin_call(expr, callee)
        assert isinstance(callee, FunctionSymbol)
        self._spill_all()
        for arg in expr.args:
            self._gen_expr(arg)
        # Move argument values into $a registers, last first.
        for index in reversed(range(len(expr.args))):
            reg = self._pop("$t9")
            self.line(f"move {_A_REGS[index]}, {reg}")
        self.line(f"jal {callee.name}")
        if callee.ftype.ret != VOID:
            self._push_from("$v0")
            return True
        return False

    def _gen_builtin_call(self, expr: ast.Call, builtin: Builtin) -> bool:
        if expr.args:
            self._gen_expr(expr.args[0])
            reg = self._pop("$t9")
            self.line(f"move $a0, {reg}")
        self.line(f"li $v0, {builtin.service}")
        self.line("syscall")
        if builtin.ret != VOID:
            self._push_from("$v0")
            return True
        return False


def generate(sema: SemanticAnalyzer) -> str:
    """Generate assembly for an analyzed translation unit."""
    return CodeGenerator(sema).generate()
