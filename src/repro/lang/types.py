"""MiniC type system: int, char, void, pointers, arrays, functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Type:
    """Base class for MiniC types."""

    size: int = 0

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_arithmetic(self) -> bool:
        return self in (INT, CHAR)

    @property
    def is_scalar(self) -> bool:
        """Fits in one register: arithmetic or pointer."""
        return self.is_arithmetic or self.is_pointer

    def decayed(self) -> "Type":
        """Array-to-pointer decay; other types unchanged."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self


@dataclass(frozen=True)
class PrimType(Type):
    name: str
    size: int = 4

    def __str__(self) -> str:
        return self.name


INT = PrimType("int", 4)
CHAR = PrimType("char", 1)
VOID = PrimType("void", 0)


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type
    size: int = 4

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.length

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: Tuple[Type, ...]

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({args})"


def compatible_assignment(target: Type, value: Type) -> bool:
    """Loose C-flavoured assignment compatibility."""
    target = target.decayed()
    value = value.decayed()
    if target.is_arithmetic and value.is_arithmetic:
        return True
    if target.is_pointer and value.is_pointer:
        return True
    # Allow integer<->pointer conversion (needed for heap allocators and
    # sentinel values, as in pre-ANSI C).
    if target.is_pointer and value.is_arithmetic:
        return True
    if target.is_arithmetic and value.is_pointer:
        return True
    return False
