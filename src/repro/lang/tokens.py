"""Token definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    {
        "int",
        "char",
        "void",
        "if",
        "else",
        "while",
        "do",
        "switch",
        "case",
        "default",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = (
    "<<=",
    ">>=",
    "++",
    "--",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
)

SINGLE_CHAR_OPERATORS = "+-*/%<>=!&|^~;,(){}[]?:"


class TokenKind:
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    CHAR = "char"
    STRING = "string"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int
    value: object = None

    def is_op(self, text: str) -> bool:
        return self.kind == TokenKind.OP and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"
