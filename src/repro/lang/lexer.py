"""Tokenizer for MiniC source."""

from __future__ import annotations

from typing import List

from repro.lang.errors import LexError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


class Lexer:
    """Converts MiniC source text into a token list."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self.source[self.pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self.error("unterminated block comment")
                self._advance(2)
            else:
                return

    def _read_escaped_char(self, terminator: str) -> str:
        ch = self._peek()
        if ch == "":
            raise self.error("unterminated literal")
        if ch == "\\":
            escape = self._peek(1)
            if escape not in _ESCAPES:
                raise self.error(f"unknown escape \\{escape}")
            self._advance(2)
            return _ESCAPES[escape]
        if ch == terminator:
            raise self.error("empty literal")
        self._advance()
        return ch

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            line, column = self.line, self.column
            ch = self.source[self.pos]
            if ch.isalpha() or ch == "_":
                start = self.pos
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                text = self.source[start : self.pos]
                kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
                tokens.append(Token(kind, text, line, column))
            elif ch.isdigit():
                start = self.pos
                if ch == "0" and self._peek(1) in ("x", "X"):
                    self._advance(2)
                    while self._peek() in (
                        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9",
                        "a", "b", "c", "d", "e", "f",
                        "A", "B", "C", "D", "E", "F",
                    ):
                        self._advance()
                    value = int(self.source[start : self.pos], 16)
                else:
                    while self._peek().isdigit():
                        self._advance()
                    value = int(self.source[start : self.pos])
                tokens.append(Token(TokenKind.NUMBER, self.source[start : self.pos], line, column, value))
            elif ch == "'":
                self._advance()
                char = self._read_escaped_char("'")
                if self._peek() != "'":
                    raise self.error("unterminated char literal")
                self._advance()
                tokens.append(Token(TokenKind.CHAR, f"'{char}'", line, column, ord(char)))
            elif ch == '"':
                self._advance()
                chars: List[str] = []
                while self._peek() != '"':
                    chars.append(self._read_escaped_char('"'))
                self._advance()
                text = "".join(chars)
                tokens.append(Token(TokenKind.STRING, text, line, column, text))
            else:
                for op in MULTI_CHAR_OPERATORS:
                    if self.source.startswith(op, self.pos):
                        self._advance(len(op))
                        tokens.append(Token(TokenKind.OP, op, line, column))
                        break
                else:
                    if ch in SINGLE_CHAR_OPERATORS:
                        self._advance()
                        tokens.append(Token(TokenKind.OP, ch, line, column))
                    else:
                        raise self.error(f"unexpected character {ch!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniC source (convenience wrapper)."""
    return Lexer(source).tokenize()
