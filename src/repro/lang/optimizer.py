"""AST-level optimizer for MiniC.

Section 6 of the paper asks whether an optimizing compiler could have
eliminated the observed repetition statically, and argues that much of it
survives optimization.  This pass lets the claim be tested: it performs
the classic machine-independent optimizations —

* constant folding (32-bit wrap-around semantics, matching the target),
* algebraic simplification (``x+0``, ``x*1``, ``x*0``, ``x<<0``, ...),
* strength reduction (``x * 2^k`` -> ``x << k``),
* dead-branch elimination (``if (0)``, ``while (0)``),
* trivial peephole cleanup of the emitted assembly (self-moves,
  branches to the next line)

— and the ablation bench (``benchmarks/test_ablation_optimizer.py``)
compares repetition with and without it.  The transformations only fire
when provably safe: operand expressions must be side-effect-free before
they can be dropped.

Run after semantic analysis (nodes carry types) and before codegen.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.bits import to_s32, to_u32
from repro.lang import astnodes as ast
from repro.lang.types import INT


def _fold_binary(op: str, left: int, right: int) -> Optional[int]:
    """Evaluate a binary op over 32-bit ints; None when not foldable."""
    lu, ru = to_u32(left), to_u32(right)
    ls, rs = to_s32(lu), to_s32(ru)
    if op == "+":
        return to_s32(lu + ru)
    if op == "-":
        return to_s32(lu - ru)
    if op == "*":
        return to_s32(ls * rs)
    if op == "/":
        if rs == 0:
            return None  # preserve runtime behaviour
        quotient = abs(ls) // abs(rs)
        return -quotient if (ls < 0) != (rs < 0) else quotient
    if op == "%":
        if rs == 0:
            return None
        quotient = abs(ls) // abs(rs)
        if (ls < 0) != (rs < 0):
            quotient = -quotient
        return ls - quotient * rs
    if op == "&":
        return to_s32(lu & ru)
    if op == "|":
        return to_s32(lu | ru)
    if op == "^":
        return to_s32(lu ^ ru)
    if op == "<<":
        return to_s32(lu << (ru & 31))
    if op == ">>":
        return ls >> (ru & 31)
    if op == "==":
        return int(ls == rs)
    if op == "!=":
        return int(ls != rs)
    if op == "<":
        return int(ls < rs)
    if op == "<=":
        return int(ls <= rs)
    if op == ">":
        return int(ls > rs)
    if op == ">=":
        return int(ls >= rs)
    if op == "&&":
        return int(bool(ls) and bool(rs))
    if op == "||":
        return int(bool(ls) or bool(rs))
    return None


def _literal(line: int, value: int) -> ast.IntLiteral:
    node = ast.IntLiteral(line, to_s32(value))
    node.ctype = INT
    return node


def _is_literal(expr: Optional[ast.Expr], value: Optional[int] = None) -> bool:
    if not isinstance(expr, ast.IntLiteral):
        return False
    return value is None or expr.value == value


def _power_of_two(value: int) -> Optional[int]:
    if value > 0 and (value & (value - 1)) == 0:
        return value.bit_length() - 1
    return None


def is_pure(expr: Optional[ast.Expr]) -> bool:
    """True if evaluating ``expr`` has no side effects (no calls, no
    assignments, no loads that could fault differently — loads are pure
    here since MiniC has no volatile)."""
    if expr is None:
        return True
    if isinstance(expr, (ast.IntLiteral, ast.StringLiteral, ast.Ident)):
        return True
    if isinstance(expr, ast.Unary):
        return is_pure(expr.operand)
    if isinstance(expr, ast.Binary):
        return is_pure(expr.left) and is_pure(expr.right)
    if isinstance(expr, ast.Index):
        return is_pure(expr.base) and is_pure(expr.index)
    if isinstance(expr, (ast.Deref, ast.AddrOf)):
        return is_pure(expr.operand)
    if isinstance(expr, ast.Conditional):
        return (
            is_pure(expr.cond) and is_pure(expr.then_value) and is_pure(expr.else_value)
        )
    # Calls, assignments, and ++/-- have effects.
    return False


class Optimizer:
    """Rewrites a semantically-analyzed translation unit in place."""

    def __init__(self) -> None:
        self.folded = 0
        self.simplified = 0
        self.branches_eliminated = 0

    # -- expressions ----------------------------------------------------

    def optimize_expr(self, expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        if isinstance(expr, ast.Unary):
            expr.operand = self.optimize_expr(expr.operand)
            if _is_literal(expr.operand):
                value = expr.operand.value  # type: ignore[union-attr]
                folded = {"-": -value, "~": ~value, "!": int(not value)}[expr.op]
                self.folded += 1
                return _literal(expr.line, folded)
            return expr
        if isinstance(expr, ast.Binary):
            return self._optimize_binary(expr)
        if isinstance(expr, ast.Assign):
            expr.target = self.optimize_expr(expr.target)
            expr.value = self.optimize_expr(expr.value)
            return expr
        if isinstance(expr, ast.Call):
            expr.args = [self.optimize_expr(a) for a in expr.args]  # type: ignore[misc]
            return expr
        if isinstance(expr, ast.Index):
            expr.base = self.optimize_expr(expr.base)
            expr.index = self.optimize_expr(expr.index)
            return expr
        if isinstance(expr, ast.Deref):
            expr.operand = self.optimize_expr(expr.operand)
            return expr
        if isinstance(expr, ast.AddrOf):
            expr.operand = self.optimize_expr(expr.operand)
            return expr
        if isinstance(expr, ast.IncDec):
            expr.target = self.optimize_expr(expr.target)
            return expr
        if isinstance(expr, ast.Conditional):
            expr.cond = self.optimize_expr(expr.cond)
            expr.then_value = self.optimize_expr(expr.then_value)
            expr.else_value = self.optimize_expr(expr.else_value)
            if _is_literal(expr.cond):
                self.branches_eliminated += 1
                return expr.then_value if expr.cond.value else expr.else_value  # type: ignore[union-attr]
            return expr
        return expr

    def _optimize_binary(self, expr: ast.Binary) -> ast.Expr:
        expr.left = self.optimize_expr(expr.left)
        expr.right = self.optimize_expr(expr.right)
        left, right = expr.left, expr.right
        op = expr.op

        # Pure constant folding (only for arithmetic operands — pointer
        # arithmetic must keep its scaling semantics in codegen).
        left_arith = left.ctype is not None and left.ctype.decayed().is_arithmetic
        right_arith = right.ctype is not None and right.ctype.decayed().is_arithmetic
        if _is_literal(left) and _is_literal(right) and left_arith and right_arith:
            folded = _fold_binary(op, left.value, right.value)  # type: ignore[union-attr]
            if folded is not None:
                self.folded += 1
                return _literal(expr.line, folded)

        if left_arith and right_arith:
            # x + 0, x - 0, x | 0, x ^ 0, x << 0, x >> 0  ->  x
            if op in ("+", "-", "|", "^", "<<", ">>") and _is_literal(right, 0):
                self.simplified += 1
                return left
            # 0 + x  ->  x
            if op == "+" and _is_literal(left, 0):
                self.simplified += 1
                return right
            # x * 1, x / 1  ->  x
            if op in ("*", "/") and _is_literal(right, 1):
                self.simplified += 1
                return left
            # 1 * x  ->  x
            if op == "*" and _is_literal(left, 1):
                self.simplified += 1
                return right
            # x * 0 -> 0 and 0 * x -> 0, when x is pure.
            if op == "*" and (_is_literal(right, 0) and is_pure(left)):
                self.simplified += 1
                return _literal(expr.line, 0)
            if op == "*" and (_is_literal(left, 0) and is_pure(right)):
                self.simplified += 1
                return _literal(expr.line, 0)
            # x & 0 -> 0 (pure x); x & -1 -> x
            if op == "&" and _is_literal(right, 0) and is_pure(left):
                self.simplified += 1
                return _literal(expr.line, 0)
            # Strength reduction: x * 2^k -> x << k.
            if op == "*" and isinstance(right, ast.IntLiteral):
                shift = _power_of_two(right.value)
                if shift is not None and shift > 1:
                    self.simplified += 1
                    replacement = ast.Binary(expr.line, "<<", left, _literal(expr.line, shift))
                    replacement.ctype = expr.ctype
                    return replacement
            if op == "*" and isinstance(left, ast.IntLiteral):
                shift = _power_of_two(left.value)
                if shift is not None and shift > 1:
                    self.simplified += 1
                    replacement = ast.Binary(expr.line, "<<", right, _literal(expr.line, shift))
                    replacement.ctype = expr.ctype
                    return replacement
        # Short-circuit with constant left side.
        if op == "&&" and _is_literal(left, 0):
            self.simplified += 1
            return _literal(expr.line, 0)
        if op == "||" and isinstance(left, ast.IntLiteral) and left.value != 0:
            self.simplified += 1
            return _literal(expr.line, 1)
        return expr

    # -- statements -----------------------------------------------------

    def optimize_stmt(self, stmt: ast.Stmt) -> Optional[ast.Stmt]:
        """Returns the replacement statement, or None to delete it."""
        if isinstance(stmt, ast.Block):
            statements: List[ast.Stmt] = []
            for inner in stmt.statements:
                replacement = self.optimize_stmt(inner)
                if replacement is not None:
                    statements.append(replacement)
            stmt.statements = statements
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.optimize_expr(stmt.expr)  # type: ignore[assignment]
            if is_pure(stmt.expr):
                # A pure expression statement has no effect at all.
                self.simplified += 1
                return None
            return stmt
        if isinstance(stmt, ast.If):
            stmt.cond = self.optimize_expr(stmt.cond)  # type: ignore[assignment]
            stmt.then_body = self.optimize_stmt(stmt.then_body) or ast.Block(stmt.line, [])
            if stmt.else_body is not None:
                stmt.else_body = self.optimize_stmt(stmt.else_body)
            if _is_literal(stmt.cond):
                self.branches_eliminated += 1
                if stmt.cond.value:  # type: ignore[union-attr]
                    return stmt.then_body
                return stmt.else_body
            return stmt
        if isinstance(stmt, ast.While):
            stmt.cond = self.optimize_expr(stmt.cond)  # type: ignore[assignment]
            stmt.body = self.optimize_stmt(stmt.body) or ast.Block(stmt.line, [])
            if _is_literal(stmt.cond, 0):
                self.branches_eliminated += 1
                return None
            return stmt
        if isinstance(stmt, ast.DoWhile):
            stmt.body = self.optimize_stmt(stmt.body) or ast.Block(stmt.line, [])
            stmt.cond = self.optimize_expr(stmt.cond)  # type: ignore[assignment]
            # A do-while body always runs once; a false constant condition
            # reduces it to the body alone.
            if _is_literal(stmt.cond, 0):
                self.branches_eliminated += 1
                return stmt.body
            return stmt
        if isinstance(stmt, ast.For):
            stmt.init = self.optimize_expr(stmt.init)
            stmt.cond = self.optimize_expr(stmt.cond)
            stmt.step = self.optimize_expr(stmt.step)
            stmt.body = self.optimize_stmt(stmt.body) or ast.Block(stmt.line, [])
            if stmt.cond is not None and _is_literal(stmt.cond, 0):
                self.branches_eliminated += 1
                if stmt.init is not None and not is_pure(stmt.init):
                    return ast.ExprStmt(stmt.line, stmt.init)
                return None
            return stmt
        if isinstance(stmt, ast.Switch):
            stmt.selector = self.optimize_expr(stmt.selector)  # type: ignore[assignment]
            for case in stmt.cases:
                optimized = []
                for inner in case.body:
                    replacement = self.optimize_stmt(inner)
                    if replacement is not None:
                        optimized.append(replacement)
                case.body = optimized
            return stmt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self.optimize_expr(stmt.value)
            return stmt
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                stmt.init = self.optimize_expr(stmt.init)
            return stmt
        return stmt

    # -- top level -------------------------------------------------------

    def optimize_unit(self, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        for func in unit.functions:
            self.optimize_stmt(func.body)
        return unit


# ---------------------------------------------------------------------------
# Assembly peephole
# ---------------------------------------------------------------------------


def peephole_assembly(text: str) -> str:
    """Trivial safe cleanups of emitted assembly:

    * drop self-moves (``move $r, $r`` / ``addu $r, $r, $zero``);
    * drop unconditional branches to the immediately following label.
    """
    lines = text.splitlines()
    out: List[str] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("move "):
            operands = stripped[5:].replace(" ", "").split(",")
            if len(operands) == 2 and operands[0] == operands[1]:
                continue
        if stripped.startswith("b "):
            target = stripped[2:].strip()
            # Peek past blank lines for the label.
            for following in lines[index + 1 :]:
                follow = following.strip()
                if not follow:
                    continue
                if follow == f"{target}:":
                    break  # branch to fall-through: drop it
                break
            else:
                out.append(line)
                continue
            if lines[index + 1].strip() == f"{target}:":
                continue
        out.append(line)
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def optimize(unit: ast.TranslationUnit) -> Optimizer:
    """Optimize ``unit`` in place; returns the pass with its counters."""
    optimizer = Optimizer()
    optimizer.optimize_unit(unit)
    return optimizer
