"""Small-function inlining.

Section 6 of the paper discusses inlining as the compiler's answer to
prologue/epilogue overhead and repetition, and Table 9 asks whether the
top contributors are small enough to inline.  This pass makes the
question testable: it inlines calls to *expression functions* — functions
whose body is a single ``return <pure expression>;`` — substituting
argument expressions for parameters.

Safety conditions (all enforced):

* the callee body is one ``return`` of a side-effect-free expression
  (no calls, assignments, or ``++``/``--`` — so no recursion either);
* every argument at the call site is itself side-effect-free, because
  substitution may duplicate or drop an argument expression.

The pass is deliberately separate from the -O1 optimizer so the
inlining ablation (``benchmarks/test_ablation_inlining.py``) can vary it
independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import astnodes as ast
from repro.lang.optimizer import is_pure
from repro.lang.sema import LocalSymbol


def _copy_expr(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    """Structural copy of an expression tree.

    Nodes are fresh; symbol bindings, callee references, and type
    annotations are shared (they are immutable for our purposes).
    """
    if expr is None:
        return None
    if isinstance(expr, ast.IntLiteral):
        clone: ast.Expr = ast.IntLiteral(expr.line, expr.value)
    elif isinstance(expr, ast.StringLiteral):
        clone = ast.StringLiteral(expr.line, expr.value)
    elif isinstance(expr, ast.Ident):
        ident = ast.Ident(expr.line, expr.name)
        ident.symbol = expr.symbol
        clone = ident
    elif isinstance(expr, ast.Unary):
        clone = ast.Unary(expr.line, expr.op, _copy_expr(expr.operand))
    elif isinstance(expr, ast.Binary):
        clone = ast.Binary(expr.line, expr.op, _copy_expr(expr.left), _copy_expr(expr.right))
    elif isinstance(expr, ast.Index):
        clone = ast.Index(expr.line, _copy_expr(expr.base), _copy_expr(expr.index))
    elif isinstance(expr, ast.Deref):
        clone = ast.Deref(expr.line, _copy_expr(expr.operand))
    elif isinstance(expr, ast.AddrOf):
        clone = ast.AddrOf(expr.line, _copy_expr(expr.operand))
    elif isinstance(expr, ast.Conditional):
        clone = ast.Conditional(
            expr.line,
            _copy_expr(expr.cond),
            _copy_expr(expr.then_value),
            _copy_expr(expr.else_value),
        )
    else:  # pragma: no cover - callers pre-filter to pure expressions
        raise TypeError(f"cannot copy {type(expr).__name__}")
    clone.ctype = expr.ctype
    return clone


def _substitute(expr: ast.Expr, mapping: Dict[int, ast.Expr]) -> ast.Expr:
    """Copy ``expr``, replacing parameter references via ``mapping``
    (keyed by ``id(symbol)``; each use gets a fresh copy of the
    argument)."""
    if isinstance(expr, ast.Ident) and id(expr.symbol) in mapping:
        return _copy_expr(mapping[id(expr.symbol)])  # type: ignore[return-value]
    clone = _copy_expr(expr)

    def rewrite(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Ident) and id(node.symbol) in mapping:
            return _copy_expr(mapping[id(node.symbol)])  # type: ignore[return-value]
        if isinstance(node, ast.Unary):
            node.operand = rewrite(node.operand)  # type: ignore[arg-type]
        elif isinstance(node, ast.Binary):
            node.left = rewrite(node.left)  # type: ignore[arg-type]
            node.right = rewrite(node.right)  # type: ignore[arg-type]
        elif isinstance(node, ast.Index):
            node.base = rewrite(node.base)  # type: ignore[arg-type]
            node.index = rewrite(node.index)  # type: ignore[arg-type]
        elif isinstance(node, (ast.Deref, ast.AddrOf)):
            node.operand = rewrite(node.operand)  # type: ignore[arg-type]
        elif isinstance(node, ast.Conditional):
            node.cond = rewrite(node.cond)  # type: ignore[arg-type]
            node.then_value = rewrite(node.then_value)  # type: ignore[arg-type]
            node.else_value = rewrite(node.else_value)  # type: ignore[arg-type]
        return node

    return rewrite(clone)  # type: ignore[arg-type]


class Inliner:
    """Inlines calls to single-return-expression functions."""

    def __init__(self, sema) -> None:
        self.sema = sema
        self.unit = sema.unit
        self.inlined_calls = 0
        self._candidates = self._find_candidates()

    # -- candidate discovery -----------------------------------------------

    def _find_candidates(self) -> Dict[str, ast.FunctionDef]:
        candidates: Dict[str, ast.FunctionDef] = {}
        for func in self.unit.functions:
            if func.name == "main":
                continue
            statements = func.body.statements
            if len(statements) != 1 or not isinstance(statements[0], ast.Return):
                continue
            value = statements[0].value
            if value is None or not is_pure(value):
                continue
            candidates[func.name] = func
        return candidates

    @property
    def candidate_names(self) -> List[str]:
        return sorted(self._candidates)

    # -- transformation -------------------------------------------------------

    def _try_inline(self, call: ast.Call) -> Optional[ast.Expr]:
        func = self._candidates.get(call.name)
        if func is None:
            return None
        if any(not is_pure(arg) for arg in call.args):
            return None
        params = self.sema.function_info[func.name].params
        mapping = {
            id(param): arg for param, arg in zip(params, call.args)
        }
        body_expr = func.body.statements[0].value  # type: ignore[union-attr]
        inlined = _substitute(body_expr, mapping)  # type: ignore[arg-type]
        # The call produced the callee's return type; keep it.
        inlined.ctype = call.ctype
        self.inlined_calls += 1
        return inlined

    def rewrite_expr(self, expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None:
            return None
        if isinstance(expr, ast.Unary):
            expr.operand = self.rewrite_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            expr.left = self.rewrite_expr(expr.left)
            expr.right = self.rewrite_expr(expr.right)
        elif isinstance(expr, ast.Assign):
            expr.target = self.rewrite_expr(expr.target)
            expr.value = self.rewrite_expr(expr.value)
        elif isinstance(expr, ast.Call):
            expr.args = [self.rewrite_expr(a) for a in expr.args]  # type: ignore[misc]
            replacement = self._try_inline(expr)
            if replacement is not None:
                return replacement
        elif isinstance(expr, ast.Index):
            expr.base = self.rewrite_expr(expr.base)
            expr.index = self.rewrite_expr(expr.index)
        elif isinstance(expr, (ast.Deref, ast.AddrOf)):
            expr.operand = self.rewrite_expr(expr.operand)
        elif isinstance(expr, ast.IncDec):
            expr.target = self.rewrite_expr(expr.target)
        elif isinstance(expr, ast.Conditional):
            expr.cond = self.rewrite_expr(expr.cond)
            expr.then_value = self.rewrite_expr(expr.then_value)
            expr.else_value = self.rewrite_expr(expr.else_value)
        return expr

    def rewrite_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.rewrite_stmt(inner)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.rewrite_expr(stmt.expr)  # type: ignore[assignment]
        elif isinstance(stmt, ast.If):
            stmt.cond = self.rewrite_expr(stmt.cond)  # type: ignore[assignment]
            self.rewrite_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.rewrite_stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            stmt.cond = self.rewrite_expr(stmt.cond)  # type: ignore[assignment]
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            self.rewrite_stmt(stmt.body)
            stmt.cond = self.rewrite_expr(stmt.cond)  # type: ignore[assignment]
        elif isinstance(stmt, ast.For):
            stmt.init = self.rewrite_expr(stmt.init)
            stmt.cond = self.rewrite_expr(stmt.cond)
            stmt.step = self.rewrite_expr(stmt.step)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.Switch):
            stmt.selector = self.rewrite_expr(stmt.selector)  # type: ignore[assignment]
            for case in stmt.cases:
                for inner in case.body:
                    self.rewrite_stmt(inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self.rewrite_expr(stmt.value)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                stmt.init = self.rewrite_expr(stmt.init)

    def run(self) -> int:
        """Inline across the whole unit; returns the call count inlined.

        Callee bodies are rewritten first so chains of expression
        functions collapse fully (f calls g calls h).
        """
        changed = True
        passes = 0
        while changed and passes < 4:
            before = self.inlined_calls
            for func in self.unit.functions:
                self.rewrite_stmt(func.body)
            # Refresh candidates: a callee may have become one after its
            # own calls were inlined away.
            self._candidates = self._find_candidates()
            changed = self.inlined_calls != before
            passes += 1
        return self.inlined_calls


def inline_small_functions(sema) -> Inliner:
    """Run the inliner over an analyzed unit (in place)."""
    inliner = Inliner(sema)
    inliner.run()
    return inliner
