"""MiniC: a small C-like language with a real compiler.

MiniC is the substrate that plays the role of "gcc compiling C" in the
paper: the eight synthetic workloads are written in it, and the compiler
produces genuine MIPS-o32-style code — register argument passing,
callee-saved prologue/epilogue, gp-relative global addressing, ``lui``/
``ori`` synthesis of large constants — whose overheads are exactly the
instruction classes the paper's local analysis measures.

Public API: :func:`compile_source` (source -> runnable
:class:`~repro.asm.program.Program`) and :func:`compile_to_assembly`.
"""

from repro.lang.compiler import compile_source, compile_to_assembly
from repro.lang.errors import CodegenError, LexError, MiniCError, ParseError, SemaError

__all__ = [
    "CodegenError",
    "LexError",
    "MiniCError",
    "ParseError",
    "SemaError",
    "compile_source",
    "compile_to_assembly",
]
