"""MiniC compiler error types."""

from __future__ import annotations


class MiniCError(Exception):
    """A compile-time error, with source location."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f"{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")


class LexError(MiniCError):
    """A tokenization error."""


class ParseError(MiniCError):
    """A syntax error."""


class SemaError(MiniCError):
    """A semantic (type / scope) error."""


class CodegenError(MiniCError):
    """An error during code generation (e.g. expression too deep)."""
