"""MiniC compiler driver: source -> assembly -> program image."""

from __future__ import annotations

from repro.asm import Program, assemble
from repro.lang.codegen import generate
from repro.lang.optimizer import optimize as run_optimizer, peephole_assembly
from repro.lang.parser import parse
from repro.lang.sema import analyze


def compile_to_assembly(
    source: str, optimize: bool = False, inline: bool = False
) -> str:
    """Compile MiniC source to assembly text.

    With ``optimize=True`` the AST optimizer (constant folding, algebraic
    simplification, strength reduction, dead-branch elimination) and an
    assembly peephole run — the "-O1" used by the compiler-optimization
    ablation.  ``inline=True`` additionally inlines single-return-
    expression functions (the Section 6 inlining experiment); it can be
    used with or without the optimizer.
    """
    unit = parse(source)
    sema = analyze(unit)
    if inline:
        from repro.lang.inliner import inline_small_functions

        inline_small_functions(sema)
    if optimize:
        run_optimizer(unit)
    text = generate(sema)
    if optimize:
        text = peephole_assembly(text)
    return text


def compile_source(
    source: str,
    filename: str = "<minic>",
    optimize: bool = False,
    inline: bool = False,
) -> Program:
    """Compile MiniC source all the way to a runnable program image."""
    return assemble(
        compile_to_assembly(source, optimize=optimize, inline=inline), filename
    )
